"""Fig. 11 — per-benchmark writes-to-failure for every protection technique."""

from typing import Any

from conftest import TableRecorder, run_once

from repro.experiments.fig11_lifetime_benchmarks import run
from repro.sim.lifetime_sim import LifetimeStudyConfig

BENCHMARKS = ("lbm", "mcf", "xalancbmk")

CONFIG = LifetimeStudyConfig(
    rows=40,
    mean_endurance_writes=48,
    trace_writebacks=250,
    max_line_writes=30_000,
    seed=11,
)


def test_fig11_lifetime_per_benchmark(benchmark: Any, record_table: TableRecorder) -> None:
    table = run_once(
        benchmark, lambda: run(benchmarks=BENCHMARKS, num_cosets=256, config=CONFIG)
    )
    record_table("fig11", table)

    for name in BENCHMARKS:
        lifetimes = {
            row["technique"]: row["writes_to_failure"] for row in table.filter(benchmark=name)
        }
        # Paper ordering: Unencoded ~ Flipcy <= SECDED/ECP3 <= DBI/FNW < VCC ~ RCC.
        assert lifetimes["SECDED"] >= lifetimes["Unencoded"]
        assert lifetimes["ECP3"] >= lifetimes["Unencoded"]
        assert lifetimes["Flipcy"] <= lifetimes["Unencoded"] * 1.3
        assert lifetimes["VCC"] > lifetimes["Unencoded"]
        assert lifetimes["VCC"] >= lifetimes["DBI/FNW"]
        # Headline claims: VCC gains at least ~50 % over unencoded and ~36 %
        # over the simple protection schemes (relaxed slightly for the
        # scaled-down memory).
        assert lifetimes["VCC"] >= lifetimes["Unencoded"] * 1.35
        assert lifetimes["VCC"] >= min(lifetimes["SECDED"], lifetimes["ECP3"]) * 1.2
        # VCC approaches RCC.
        assert lifetimes["VCC"] >= lifetimes["RCC"] * 0.7
