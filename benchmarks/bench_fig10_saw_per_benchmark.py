"""Fig. 10 — per-benchmark SAW cells: unencoded vs. VCC(64, 256, 16)."""

from typing import Any

from conftest import TableRecorder, run_once

from repro.experiments.fig10_saw_benchmarks import run

BENCHMARKS = ("lbm", "mcf", "bwaves", "xalancbmk", "xz")


def test_fig10_saw_per_benchmark(benchmark: Any, record_table: TableRecorder) -> None:
    table = run_once(
        benchmark,
        lambda: run(benchmarks=BENCHMARKS, num_cosets=256, writebacks_per_benchmark=100, rows=96),
    )
    record_table("fig10", table)

    for name in BENCHMARKS:
        rows = table.filter(benchmark=name)
        unencoded = next(r for r in rows if r["technique"] == "Unencoded")["saw_cells"]
        vcc_row = next(r for r in rows if r["technique"] != "Unencoded")
        # Paper shape: VCC reduces the SAW count by at least 95 % on every
        # benchmark; allow a slightly looser bound at the scaled-down size.
        assert unencoded > 0
        assert vcc_row["saw_cells"] < unencoded
        assert vcc_row["reduction_percent"] > 90.0
