"""Fig. 3 — the worked VCC(64, 64, 4) encoding example."""

from typing import Any

from conftest import TableRecorder, run_once

from repro.experiments.fig03_worked_example import run


def test_fig03_worked_example(benchmark: Any, record_table: TableRecorder) -> None:
    table = run_once(benchmark, run)
    record_table("fig03", table)

    values = {row["quantity"]: row["value"] for row in table}
    # The exact selection shown in Fig. 3(e).
    assert values["selected codeword Xopt"] == "0b00070010610cd0"
    assert values["auxiliary bits (kernel index + flags)"] == "000110"
    assert values["cost (ones incl. aux)"] == 17
    assert values["decode(Xopt) == D"] is True
