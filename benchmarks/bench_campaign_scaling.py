"""Campaign-engine benchmark: worker scaling, determinism, cached resume.

Runs a fig9-sized sweep (benchmarks × five techniques through the real
energy simulator) three ways and checks the engine's contracts:

* **determinism** — the rows at ``jobs=N`` are bit-identical to the
  serial rows, and stay bit-identical when served from the store;
* **caching** — a second run against the same store executes zero tasks;
* **scaling** — batched dispatch plus warm workers must make the pool
  *pay for itself*: ``speedup > 1`` is enforced whenever the machine
  has at least ``PARALLEL_JOBS`` cores, with a near-linear floor on
  top; on smaller hosts the measurement is reported for tracking.
  The executor overhead fraction (queue-wait + dispatch + transfer as
  a share of task wall time, from the run telemetry) is reported and
  recorded alongside the speedup so regressions show up as a number,
  not a vibe.

Run directly for a table::

    PYTHONPATH=src python benchmarks/bench_campaign_scaling.py

or under pytest to enforce the contracts::

    PYTHONPATH=src python -m pytest benchmarks/bench_campaign_scaling.py -q
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from typing import List, Optional, Tuple

from repro.campaign import ResultStore, run_campaign
from repro.campaign.engine import CampaignTelemetry, last_campaign_telemetry
from repro.campaign.spec import Task
from repro.sim.energy_sim import EnergyStudyConfig, benchmark_energy_tasks

#: Sweep size: 5 benchmarks x 5 techniques = 25 tasks, a couple of
#: seconds of serial work — enough per-task weight for pool overheads to
#: amortise, small enough to run on every invocation.
BENCHMARKS = ("lbm", "mcf", "bwaves", "xalancbmk", "xz")
WRITEBACKS = 100
ROWS = 96
NUM_COSETS = 256
PARALLEL_JOBS = 4

#: Speedup floors by available core count; the multi-core floor is
#: intentionally below linear to absorb pool startup and scheduler
#: noise, but always above 1.0 — a pool that loses to serial is the
#: regression this benchmark exists to catch.
def _speedup_floor(cores: int) -> float:
    if cores >= PARALLEL_JOBS:
        return 2.0
    if cores >= 2:
        return 1.1
    return 0.0  # single-core host: report only


def _sweep_tasks() -> List[Task]:
    return benchmark_energy_tasks(
        benchmarks=BENCHMARKS,
        num_cosets=NUM_COSETS,
        writebacks_per_benchmark=WRITEBACKS,
        config=EnergyStudyConfig(rows=ROWS),
    )


def measure() -> Tuple[float, float, List[dict], List[dict], Optional[CampaignTelemetry]]:
    """Time the sweep at jobs=1 and jobs=PARALLEL_JOBS (no store).

    Returns the serial and parallel wall times, both row lists, and the
    parallel run's :class:`CampaignTelemetry` (per-phase executor
    breakdown at batch granularity).
    """
    tasks = _sweep_tasks()
    start = time.perf_counter()  # repro: allow[DET003,OBS001] reason=benchmark stopwatch; the elapsed time is the measured quantity and never enters a result table
    serial = run_campaign(tasks, jobs=1)
    serial_s = time.perf_counter() - start  # repro: allow[DET003,OBS001] reason=benchmark stopwatch; the elapsed time is the measured quantity and never enters a result table
    start = time.perf_counter()  # repro: allow[DET003,OBS001] reason=benchmark stopwatch; the elapsed time is the measured quantity and never enters a result table
    parallel = run_campaign(tasks, jobs=PARALLEL_JOBS)
    parallel_s = time.perf_counter() - start  # repro: allow[DET003,OBS001] reason=benchmark stopwatch; the elapsed time is the measured quantity and never enters a result table
    return serial_s, parallel_s, serial.rows(), parallel.rows(), last_campaign_telemetry()


def test_campaign_scaling_determinism_and_cache() -> None:
    serial_s, parallel_s, serial_rows, parallel_rows, telemetry = measure()

    # Contract 1: bit-identical rows at any worker count.
    assert serial_rows == parallel_rows, "jobs=4 rows differ from the serial path"

    # Contract 2: a repeated run against a store executes zero tasks and
    # serves the identical rows.
    tasks = _sweep_tasks()
    store_dir = tempfile.mkdtemp(prefix="campaign-bench-")
    try:
        store = ResultStore(store_dir)
        first = run_campaign(tasks, store=store, jobs=PARALLEL_JOBS)
        assert first.executed == len(tasks)
        second = run_campaign(tasks, store=store, jobs=PARALLEL_JOBS)
        assert second.executed == 0 and second.cached == len(tasks)
        assert second.rows() == serial_rows, "cached rows differ from the serial path"
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)

    # Contract 3: the pool pays for itself (speedup > 1) and approaches
    # linear where the hardware allows it.
    cores = os.cpu_count() or 1
    floor = _speedup_floor(cores)
    speedup = serial_s / parallel_s if parallel_s else 0.0
    print(
        f"\ncampaign scaling: serial {serial_s:.2f}s, jobs={PARALLEL_JOBS} "
        f"{parallel_s:.2f}s, speedup {speedup:.2f}x on {cores} core(s)"
    )
    if telemetry is not None:
        print(
            f"executor overhead: {telemetry.overhead_fraction * 100.0:.1f}% of "
            f"task wall time outside compute, {telemetry.batches} batches"
        )
    if floor:
        assert speedup > 1.0, (
            f"jobs={PARALLEL_JOBS} is a slowdown ({speedup:.2f}x) on {cores} cores"
        )
        assert speedup >= floor, (
            f"jobs={PARALLEL_JOBS} speedup is {speedup:.2f}x on {cores} cores; "
            f"floor is {floor}x"
        )


def main() -> None:
    tasks = _sweep_tasks()
    print(
        f"campaign scaling benchmark: {len(tasks)} tasks "
        f"({len(BENCHMARKS)} benchmarks x 5 techniques, {WRITEBACKS} writebacks)"
    )
    serial_s, parallel_s, serial_rows, parallel_rows, telemetry = measure()
    identical = "bit-identical" if serial_rows == parallel_rows else "DIFFERENT (bug!)"
    cores = os.cpu_count() or 1
    print(f"{'jobs':>6} {'seconds':>9} {'tasks/s':>9}")
    print(f"{1:>6} {serial_s:>9.2f} {len(tasks) / serial_s:>9.2f}")
    print(f"{PARALLEL_JOBS:>6} {parallel_s:>9.2f} {len(tasks) / parallel_s:>9.2f}")
    print(f"speedup: {serial_s / parallel_s:.2f}x on {cores} core(s); rows {identical}")
    overhead_fraction = None
    batches = None
    if telemetry is not None:
        overhead_fraction = telemetry.overhead_fraction
        batches = telemetry.batches
        print(
            f"executor overhead: {overhead_fraction * 100.0:.1f}% of task wall "
            f"time outside compute ({batches} batches)"
        )

    import sys

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from bench_util import write_bench_json

    write_bench_json(
        "campaign_scaling",
        config={"tasks": len(tasks), "parallel_jobs": PARALLEL_JOBS},
        results={
            "serial_tasks_per_s": len(tasks) / serial_s,
            "parallel_tasks_per_s": len(tasks) / parallel_s,
            "speedup": serial_s / parallel_s,
            "rows_bit_identical": serial_rows == parallel_rows,
            "executor_overhead_fraction": overhead_fraction,
            "batches": batches,
        },
    )


if __name__ == "__main__":
    main()
