"""Cross-write batched candidate evaluation: waves vs. the scalar path.

The generic (non-identity) replay path of
:meth:`repro.memctrl.controller.MemoryController.replay_trace` partitions
each chunk into waves of writes targeting distinct rows and encodes every
wave through one :meth:`repro.coding.base.Encoder.encode_lines` call.
This benchmark checks the wave engine's contracts:

* **parity** — every per-write accounting value of the replay is
  bit-identical to the scalar ``write_line`` oracle for *all* registry
  encoders × SLC/MLC, with stuck cells, wear, and encryption in play, and
  additionally under Start-Gap wear leveling (waves must flush at gap
  migrations) and across the fault-knowledge modes;
* **throughput** — on the paper's headline coset configurations (VCC-256
  and RCC-256 under the Opt.-SAW objective), ``replay_trace`` sustains at
  least ``3x`` the scalar write_line lines/sec.  Scalar and batched
  segments alternate and the speedup is the best scalar/batched pair, so
  epoch-scale host noise cannot masquerade as a regression.  The floor is
  enforced only on hosts with a spare core (``os.cpu_count() >= 2``,
  mirroring ``bench_trace_replay.py``); single-core hosts report the
  measurement for tracking.

Each run writes ``benchmarks/results/BENCH_encode_batch.json`` with the
measured throughputs so the perf trajectory is tracked across PRs.

Run directly for a table::

    PYTHONPATH=src python benchmarks/bench_encode_batch.py

or under pytest to enforce the contracts::

    PYTHONPATH=src python -m pytest benchmarks/bench_encode_batch.py -q
"""

from __future__ import annotations

import os
import sys
import time
from typing import Dict, Tuple

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_util import write_bench_json

from repro.coding.registry import available_encoders, make_encoder
from repro.memctrl.controller import MemoryController
from repro.pcm.cell import CellTechnology
from repro.pcm.endurance import EnduranceModel
from repro.pcm.faultmap import FaultMap
from repro.pcm.wearlevel import StartGapWearLeveler
from repro.pcm.array import PCMArray
from repro.sim.harness import TechniqueSpec, build_controller
from repro.traces.synthetic import generate_trace
from repro.utils.rng import derive_seed

#: Throughput geometry: a large array keeps replay waves near the cap so
#: the batched candidate kernels run at full width.
ROWS = 1024
TRACE_WRITEBACKS = 1500
TRACE_NAME = "bwaves"
SEED = derive_seed(11, f"lifetime-{TRACE_NAME}")
SEGMENT_WRITES = 500
SEGMENTS = 7

#: Parity geometry: small and fault-heavy so stuck cells, wear, and aux
#: bits are all exercised within a few dozen writes.
PARITY_ROWS = 16
PARITY_TRACE = {"num_writebacks": 12, "memory_lines": PARITY_ROWS, "line_bits": 512, "word_bits": 64}
PARITY_REPETITIONS = 2

#: Wave-replay throughput floor relative to the scalar write_line path.
#: Single-threaded work, but shared single-core hosts are too noisy to
#: gate on (same policy as bench_trace_replay.py).
SPEEDUP_FLOOR = 3.0

THROUGHPUT_SPECS = (
    ("vcc-256", TechniqueSpec(encoder="vcc", cost="saw-then-energy", num_cosets=256)),
    ("rcc-256", TechniqueSpec(encoder="rcc", cost="saw-then-energy", num_cosets=256)),
)


# ----------------------------------------------------------------- parity
def _parity_controller(name: str, technology: CellTechnology, seed: int = 9):
    return build_controller(
        TechniqueSpec(encoder=name, cost="saw-then-energy", num_cosets=16),
        rows=PARITY_ROWS,
        technology=technology,
        fault_map=FaultMap(
            rows=PARITY_ROWS,
            cells_per_row=512 // technology.bits_per_cell,
            technology=technology,
            fault_rate=1e-2,
            seed=seed,
        ),
        endurance_model=EnduranceModel(mean_writes=30, coefficient_of_variation=0.2),
        seed=seed,
        encrypt=True,
    )


def _parity_trace(seed: int = 9):
    return generate_trace("mcf", seed=seed, **PARITY_TRACE)


def _drive_scalar(controller, trace, repetitions: int):
    results = []
    for _ in range(repetitions):
        for record in trace:
            results.append(controller.write_line(record.address, list(record.words)))
    return results


def _assert_replay_parity(scalar_results, replay) -> None:
    assert replay.writes == len(scalar_results)
    for index, line in enumerate(scalar_results):
        assert line.address == replay.addresses[index]
        assert line.row_index == replay.row_indices[index]
        assert line.data_energy_pj == replay.data_energy_pj[index]
        assert line.aux_energy_pj == replay.aux_energy_pj[index]
        assert line.cells_changed == replay.cells_changed[index]
        assert line.bits_changed == replay.bits_changed[index]
        assert line.saw_cells == replay.saw_cells[index]
        assert list(line.saw_bits_per_word) == list(replay.saw_bits_per_word[index])
        assert line.newly_stuck_cells == replay.newly_stuck_cells[index]


def check_parity() -> int:
    """Replay waves vs. the write_line oracle over the full contract matrix.

    Returns the number of configurations checked.
    """
    trace = _parity_trace()
    checked = 0

    # Every registry encoder on both cell technologies, with stuck cells,
    # wear, encryption, and per-word auxiliary bits in play.
    for technology in (CellTechnology.MLC, CellTechnology.SLC):
        for name in available_encoders():
            scalar = _drive_scalar(
                _parity_controller(name, technology), trace, PARITY_REPETITIONS
            )
            replay = _parity_controller(name, technology).replay_trace(
                trace, repetitions=PARITY_REPETITIONS
            )
            _assert_replay_parity(scalar, replay)
            checked += 1

    # Start-Gap wear leveling: waves must flush at every gap migration so
    # the mapping rotates at exactly the scalar path's write counts.
    for name in ("rcc", "vcc-stored"):
        def build_leveled(encoder_name=name):
            technology = CellTechnology.MLC
            leveler = StartGapWearLeveler(rows=PARITY_ROWS, gap_write_interval=5)
            array = PCMArray(
                rows=leveler.physical_rows_required,
                row_bits=512,
                technology=technology,
                endurance_model=EnduranceModel(mean_writes=40, coefficient_of_variation=0.2),
                seed=7,
            )
            encoder = make_encoder(
                encoder_name, word_bits=64, num_cosets=16, technology=technology
            )
            return MemoryController(array=array, encoder=encoder, wear_leveler=leveler)

        first = build_leveled()
        scalar = _drive_scalar(first, trace, 3)
        second = build_leveled()
        replay = second.replay_trace(trace, repetitions=3)
        _assert_replay_parity(scalar, replay)
        assert first.wear_leveler.gap_moves == second.wear_leveler.gap_moves
        assert first.wear_leveler.mapping_snapshot() == second.wear_leveler.mapping_snapshot()
        checked += 1

    # Fault-knowledge modes: the stuck masks the wave gathers must match
    # what each scalar write would have seen.
    for fault_knowledge in ("oracle", "discovered", "none"):
        def build_knowledge(mode=fault_knowledge):
            technology = CellTechnology.MLC
            array = PCMArray(
                rows=PARITY_ROWS,
                row_bits=512,
                technology=technology,
                fault_map=FaultMap(
                    rows=PARITY_ROWS, cells_per_row=256, technology=technology,
                    fault_rate=1e-2, seed=5,
                ),
                seed=5,
            )
            encoder = make_encoder("rcc", word_bits=64, num_cosets=16, technology=technology)
            return MemoryController(array=array, encoder=encoder, fault_knowledge=mode)

        scalar = _drive_scalar(build_knowledge(), trace, 3)
        replay = build_knowledge().replay_trace(trace, repetitions=3)
        _assert_replay_parity(scalar, replay)
        checked += 1

    return checked


# ------------------------------------------------------------- throughput
def _throughput_controller(spec: TechniqueSpec):
    return build_controller(
        spec,
        rows=ROWS,
        fault_map=FaultMap(
            rows=ROWS, cells_per_row=256, technology=CellTechnology.MLC,
            fault_rate=1e-2, seed=SEED,
        ),
        seed=SEED,
        encrypt=True,
    )


def _throughput_trace():
    return generate_trace(
        TRACE_NAME,
        num_writebacks=TRACE_WRITEBACKS,
        memory_lines=ROWS,
        line_bits=512,
        word_bits=64,
        seed=derive_seed(SEED, "trace"),
    )


def measure(spec: TechniqueSpec) -> Tuple[float, float, float]:
    """Lines/sec of the scalar loop and of replay_trace, plus the speedup.

    Scalar and replay segments alternate on two long-lived controllers and
    the speedup is the best scalar/replay pair, so slow host epochs hit
    both sides of a pair rather than one side of the ratio.
    """
    trace = _throughput_trace()
    records = list(trace)
    scalar_controller = _throughput_controller(spec)
    replay_controller = _throughput_controller(spec)
    for record in records[:100]:
        scalar_controller.write_line(record.address, list(record.words))
    replay_controller.replay_trace(trace, repetitions=1, max_writes=100)

    best_ratio = 0.0
    best_scalar = best_replay = float("inf")
    position = 0
    repetitions = -(-SEGMENT_WRITES // len(records))
    for _ in range(SEGMENTS):
        start = time.perf_counter()  # repro: allow[DET003,OBS001] reason=benchmark stopwatch; the elapsed time is the measured quantity and never enters a result table
        for _ in range(SEGMENT_WRITES):
            record = records[position % len(records)]
            scalar_controller.write_line(record.address, list(record.words))
            position += 1
        scalar_s = time.perf_counter() - start  # repro: allow[DET003,OBS001] reason=benchmark stopwatch; the elapsed time is the measured quantity and never enters a result table
        start = time.perf_counter()  # repro: allow[DET003,OBS001] reason=benchmark stopwatch; the elapsed time is the measured quantity and never enters a result table
        replay = replay_controller.replay_trace(
            trace, repetitions=repetitions, max_writes=SEGMENT_WRITES
        )
        replay_s = time.perf_counter() - start  # repro: allow[DET003,OBS001] reason=benchmark stopwatch; the elapsed time is the measured quantity and never enters a result table
        assert replay.writes == SEGMENT_WRITES
        best_scalar = min(best_scalar, scalar_s)
        best_replay = min(best_replay, replay_s)
        best_ratio = max(best_ratio, scalar_s / replay_s)
    return SEGMENT_WRITES / best_scalar, SEGMENT_WRITES / best_replay, best_ratio


def run_benchmark(enforce_floor: bool) -> Dict[str, Dict[str, float]]:
    """Measure every throughput spec, print a table, emit the JSON record."""
    cores = os.cpu_count() or 1
    results: Dict[str, Dict[str, float]] = {}
    print(
        f"encode-batch benchmark: {SEGMENTS}x{SEGMENT_WRITES} writes, {ROWS} rows, "
        f"{TRACE_WRITEBACKS}-writeback {TRACE_NAME} trace, fault rate 1e-2, encrypted"
    )
    print(f"{'technique':12s} {'scalar w/s':>11} {'replay w/s':>11} {'speedup':>8}")
    for label, spec in THROUGHPUT_SPECS:
        scalar_wps, replay_wps, speedup = measure(spec)
        results[label] = {
            "scalar_writes_per_s": scalar_wps,
            "replay_writes_per_s": replay_wps,
            "speedup": speedup,
        }
        print(f"{label:12s} {scalar_wps:>11.0f} {replay_wps:>11.0f} {speedup:>7.2f}x")
    write_bench_json(
        "encode_batch",
        config={
            "rows": ROWS,
            "trace": TRACE_NAME,
            "trace_writebacks": TRACE_WRITEBACKS,
            "segment_writes": SEGMENT_WRITES,
            "segments": SEGMENTS,
            "cost": "saw-then-energy",
            "fault_rate": 1e-2,
            "speedup_floor": SPEEDUP_FLOOR,
        },
        results=results,
    )
    if enforce_floor and cores >= 2:
        for label, numbers in results.items():
            assert numbers["speedup"] >= SPEEDUP_FLOOR, (
                f"{label} wave-replay speedup is {numbers['speedup']:.2f}x; "
                f"floor is {SPEEDUP_FLOOR}x"
            )
    return results


def test_encode_batch_parity_and_speedup() -> None:
    # Contract 1: bit-identical per-write accounting over the full matrix
    # (9 encoders x SLC/MLC, wear leveling, fault-knowledge modes).
    checked = check_parity()
    assert checked == 2 * len(available_encoders()) + 5

    # Contract 2: the coset-coded replay hot paths clear the floor.
    run_benchmark(enforce_floor=True)


def main() -> None:
    run_benchmark(enforce_floor=os.cpu_count() is not None and os.cpu_count() >= 2)
    print(
        "parity: replay waves vs write_line oracle "
        "(all encoders x SLC/MLC, wear leveling, fault knowledge) ...",
        end=" ",
    )
    checked = check_parity()
    print(f"OK ({checked} configurations)")


if __name__ == "__main__":
    main()
