"""Fault-model zoo contracts: legacy parity, determinism, disabled cost.

Three gates, all enforced inline by ``main()`` (and by the pytest entry
points) so a silently skipped check cannot pass:

* **Legacy parity** — a replay built with ``fault_model=None`` and one
  built with the explicit ``"static-stuck-at"`` name must account every
  write bit-identically: the zoo's default model *is* the historical
  generator, merely relocated, and every published figure depends on
  that.
* **Determinism** — the same replay under each registered builtin model
  twice must match itself bit for bit; the dynamic models (transient
  sensing, wear drift) draw only from seeded RNG labels.
* **Disabled overhead** — a ``fault_model=None`` replay is timed against
  the pre-zoo workload shape; the model hook must cost nothing when no
  model is armed.  Reported informationally (shared runners drift); the
  hard gates are the two parity checks above.

Run directly for a table::

    PYTHONPATH=src python benchmarks/bench_fault_models.py

or under pytest to enforce the parity gates::

    PYTHONPATH=src python -m pytest benchmarks/bench_fault_models.py -q
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Tuple

import numpy as np

from repro.faults import available_fault_models
from repro.pcm.faultmap import FaultMap
from repro.sim.harness import TechniqueSpec, build_controller, cached_trace
from repro.utils.rng import derive_seed

ROWS = 48
WRITEBACKS = 240
SEED = derive_seed(7, "bench-fault-models")
#: Timed replay repetitions for the (informational) disabled-cost check.
TIMING_RUNS = 3


def _replay(fault_model: Optional[str], corrector: Optional[str] = None):
    """One fixed lbm replay under the named fault model."""
    trace = cached_trace("lbm", WRITEBACKS, ROWS, 512, 64, derive_seed(SEED, "trace"))
    # The map's stuck-at snapshot comes from the model under test, so the
    # snapshot-reshaping models (row-correlated) actually reshape it and
    # the dynamic models (transient, wear-drift) start from a clean array.
    fault_map = FaultMap(
        rows=ROWS, cells_per_row=256, seed=SEED, model=fault_model or "static-stuck-at"
    )
    controller = build_controller(
        TechniqueSpec(
            encoder="rcc",
            cost="energy-then-saw",
            num_cosets=16,
            corrector=corrector,
            fault_model=fault_model,
        ),
        rows=ROWS,
        fault_map=fault_map,
        seed=SEED,
    )
    return controller.replay_trace(trace)


def _signature(replay) -> Dict[str, float]:
    """The per-write accounting collapsed to exact sums (int-valued)."""
    return {
        "writes": int(replay.writes),
        "data_energy_pj": float(np.sum(replay.data_energy_pj)),
        "aux_energy_pj": float(np.sum(replay.aux_energy_pj)),
        "bits_changed": int(np.sum(replay.bits_changed)),
        "saw_cells": int(np.sum(replay.saw_cells)),
    }


def test_none_matches_static_stuck_at() -> None:
    """``fault_model=None`` and ``"static-stuck-at"`` are the same machine."""
    assert _signature(_replay(None)) == _signature(_replay("static-stuck-at"))


def test_every_builtin_model_is_deterministic() -> None:
    for model_class in available_fault_models():
        name = model_class.name
        corrector = "ecp3" if name == "transient" else None
        first = _signature(_replay(name, corrector))
        second = _signature(_replay(name, corrector))
        assert first == second, f"{name} replay not reproducible"
        assert first["writes"] == WRITEBACKS


def _time_replay(fault_model: Optional[str]) -> float:
    best = float("inf")
    for _ in range(TIMING_RUNS):
        start = time.perf_counter()  # repro: allow[DET003,OBS001] reason=benchmark stopwatch; the elapsed time is the measured quantity and never enters a result table
        _replay(fault_model)
        best = min(best, time.perf_counter() - start)  # repro: allow[DET003,OBS001] reason=benchmark stopwatch; the elapsed time is the measured quantity and never enters a result table
    return best


def main() -> None:
    from bench_util import write_bench_json

    test_none_matches_static_stuck_at()
    print("parity: fault_model=None vs 'static-stuck-at' accounting OK")

    signatures: Dict[str, Dict[str, float]] = {}
    for model_class in available_fault_models():
        name = model_class.name
        corrector = "ecp3" if name == "transient" else None
        first = _signature(_replay(name, corrector))
        assert first == _signature(_replay(name, corrector))
        signatures[name] = first
        print(
            f"  {name:<16} energy={first['data_energy_pj'] + first['aux_energy_pj']:>12.1f}pJ"
            f" saw-cells={first['saw_cells']:>6d} (reproducible)"
        )
    print(f"determinism: {len(signatures)} builtin models replay bit-identically")

    none_s = _time_replay(None)
    static_s = _time_replay("static-stuck-at")
    overhead: Tuple[float, float] = (none_s, static_s)
    print(
        f"disabled cost (informational): no-model {none_s * 1e3:.1f}ms,"
        f" static-stuck-at {static_s * 1e3:.1f}ms"
    )

    write_bench_json(
        "fault_models",
        config={"rows": ROWS, "writebacks": WRITEBACKS, "seed": SEED},
        results={
            "signatures": signatures,
            "no_model_s": overhead[0],
            "static_stuck_at_s": overhead[1],
        },
    )


if __name__ == "__main__":
    main()
