"""Fig. 12 — mean writes-to-failure vs. coset count for every technique."""

from typing import Any

from conftest import TableRecorder, run_once

from repro.experiments.fig12_lifetime_cosets import run
from repro.sim.lifetime_sim import LifetimeStudyConfig

CONFIG = LifetimeStudyConfig(
    rows=40,
    mean_endurance_writes=48,
    trace_writebacks=250,
    max_line_writes=30_000,
    seed=12,
)


def test_fig12_lifetime_vs_cosets(benchmark: Any, record_table: TableRecorder) -> None:
    table = run_once(
        benchmark, lambda: run(coset_counts=(32, 256), benchmarks=("lbm",), config=CONFIG)
    )
    record_table("fig12", table)

    def lifetime(cosets, technique):
        return table.filter(cosets=cosets, technique=technique)[0]["mean_writes_to_failure"]

    for cosets in (32, 256):
        # The coset techniques beat the unencoded memory and the simple
        # protection baselines at every coset count.
        assert lifetime(cosets, "VCC") > lifetime(cosets, "Unencoded")
        assert lifetime(cosets, "RCC") > lifetime(cosets, "Unencoded")
        assert lifetime(cosets, "VCC") >= lifetime(cosets, "DBI/FNW")
        assert lifetime(cosets, "Flipcy") <= lifetime(cosets, "Unencoded") * 1.3

    # More cosets extend VCC's lifetime (or at least never shorten it), and
    # at 256 cosets the improvement over unencoded is substantial.
    assert lifetime(256, "VCC") >= lifetime(32, "VCC") * 0.95
    assert lifetime(256, "VCC") >= lifetime(256, "Unencoded") * 1.35
