"""Shared helpers for the benchmark harness.

Every benchmark regenerates one figure/table of the paper, prints the
resulting series, stores it under ``benchmarks/results/`` for inspection,
and asserts the qualitative "shape" the paper reports (who wins, by
roughly what factor).  The pytest-benchmark timing measures the cost of
regenerating the experiment itself.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable

import pytest

from repro.sim.results import ResultTable

RESULTS_DIR = Path(__file__).parent / "results"

#: The record_table fixture's value: saves a table under a name, returns it.
TableRecorder = Callable[[str, ResultTable], ResultTable]


@pytest.fixture
def record_table() -> TableRecorder:
    """Save a result table to benchmarks/results/ and echo it to stdout."""

    def _record(name: str, table: ResultTable) -> ResultTable:
        RESULTS_DIR.mkdir(exist_ok=True)
        text = table.format()
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        table.to_json(RESULTS_DIR / f"{name}.json")
        print()
        print(text)
        return table

    return _record


def run_once(benchmark: Any, func: Callable[[], ResultTable]) -> ResultTable:
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)
