"""Fig. 13 — normalised IPC of DBI/Flipcy, VCC, and RCC."""

from typing import Any

from conftest import TableRecorder, run_once

from repro.experiments.fig13_ipc import run


def test_fig13_ipc(benchmark: Any, record_table: TableRecorder) -> None:
    table = run_once(benchmark, lambda: run(num_cosets=256))
    record_table("fig13", table)

    by_technique = {}
    for row in table:
        by_technique.setdefault(row["technique"], []).append(row["normalized_ipc"])

    mean = {t: sum(v) / len(v) for t, v in by_technique.items()}
    # Paper shape: DBI/Flipcy negligible, VCC < 2 % average slowdown,
    # RCC < 3 %, and every benchmark stays above 0.92 normalised IPC.
    assert mean["DBI/Flipcy"] > 0.995
    assert mean["VCC"] > 0.98
    assert mean["RCC"] > 0.97
    assert mean["RCC"] <= mean["VCC"] <= mean["DBI/Flipcy"]
    for values in by_technique.values():
        assert min(values) > 0.92
