"""Micro-benchmark: line-encoding throughput, scalar vs. batched path.

Measures lines/second for every registry encoder through the two
implementations of the line API:

* **scalar** — :meth:`Encoder.encode_line_scalar`, the word-at-a-time
  reference loop (the seed repository's only path);
* **batch** — :meth:`Encoder.encode_line`, the vectorised hot path the
  memory controller drives.

Run directly for a table::

    PYTHONPATH=src python benchmarks/bench_encode_throughput.py

or under pytest to enforce the speedup floor the coset techniques must
keep (``vcc`` and ``rcc`` at least 3x)::

    PYTHONPATH=src python -m pytest benchmarks/bench_encode_throughput.py -q
"""

from __future__ import annotations

import time
from typing import Dict, Tuple

import numpy as np

from repro.coding.base import LineContext
from repro.coding.cost import energy_then_saw
from repro.coding.registry import encoder_plugins, make_encoder
from repro.utils.bitops import random_word
from repro.utils.rng import make_rng

WORDS_PER_LINE = 8
WORD_BITS = 64
NUM_COSETS = 256
#: Speedup floor enforced for the paper's coset techniques (the hot path
#: of Figs. 7-13); the other baselines are reported for tracking only.
SPEEDUP_FLOORS = {"vcc": 3.0, "rcc": 3.0}


def _setup(name: str, seed: int = 3):
    encoder = make_encoder(
        name, num_cosets=NUM_COSETS, cost_function=energy_then_saw(), seed=seed
    )
    rng = make_rng(seed, f"throughput-{name}")
    cells = encoder.cells_per_word
    context = LineContext(
        old_cells=rng.integers(0, 4, size=(WORDS_PER_LINE, cells)).astype(np.uint8),
        stuck_mask=rng.random((WORDS_PER_LINE, cells)) < 0.01,
        bits_per_cell=encoder.bits_per_cell,
    )
    lines = [
        [random_word(rng, WORD_BITS) for _ in range(WORDS_PER_LINE)] for _ in range(16)
    ]
    return encoder, context, lines


def _one_trial(encode, context, lines, min_seconds: float) -> float:
    encoded = 0
    start = time.perf_counter()  # repro: allow[DET003,OBS001] reason=benchmark stopwatch; the elapsed time is the measured quantity and never enters a result table
    while True:
        for words in lines:
            encode(words, context)
        encoded += len(lines)
        elapsed = time.perf_counter() - start  # repro: allow[DET003,OBS001] reason=benchmark stopwatch; the elapsed time is the measured quantity and never enters a result table
        if elapsed >= min_seconds:
            return encoded / elapsed


def measure(name: str, min_seconds: float = 0.1, trials: int = 3) -> Tuple[float, float]:
    """Return (scalar lines/s, batch lines/s) for one registry encoder.

    Scalar and batch trials are interleaved and the best of each is kept,
    so CPU frequency drift and scheduler noise hit both paths alike.
    """
    encoder, context, lines = _setup(name)
    # Warm up allocators/caches before timing anything.
    for words in lines[:4]:
        encoder.encode_line_scalar(words, context)
        encoder.encode_line(words, context)
    scalar = 0.0
    batch = 0.0
    for _ in range(trials):
        scalar = max(scalar, _one_trial(encoder.encode_line_scalar, context, lines, min_seconds))
        batch = max(batch, _one_trial(encoder.encode_line, context, lines, min_seconds))
    return scalar, batch


def run_all() -> Dict[str, Tuple[float, float]]:
    """Measure every canonical registry encoder; returns name -> (scalar, batch)."""
    return {plugin.name: measure(plugin.name) for plugin in encoder_plugins()}


def test_batched_path_speedup() -> None:
    """The batched path must stay >= 3x the scalar path for vcc and rcc."""
    for name, floor in SPEEDUP_FLOORS.items():
        best = 0.0
        for _attempt in range(3):  # re-measure to shrug off scheduler noise
            scalar, batch = measure(name)
            best = max(best, batch / scalar)
            if best >= floor:
                break
        assert best >= floor, (
            f"{name}: batched path is only {best:.2f}x the scalar path "
            f"({batch:.0f} vs {scalar:.0f} lines/s); floor is {floor}x"
        )


def main() -> None:
    import os
    import sys

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from bench_util import write_bench_json

    print(f"line-encoding throughput ({NUM_COSETS} cosets, energy-then-saw, "
          f"{WORDS_PER_LINE}x{WORD_BITS}-bit lines)\n")
    print(f"{'encoder':<12} {'scalar lines/s':>15} {'batch lines/s':>15} {'speedup':>9}")
    results = {}
    for name, (scalar, batch) in run_all().items():
        print(f"{name:<12} {scalar:>15.0f} {batch:>15.0f} {batch / scalar:>8.2f}x")
        results[name] = {
            "scalar_lines_per_s": scalar,
            "batch_lines_per_s": batch,
            "speedup": batch / scalar,
        }
    write_bench_json(
        "encode_throughput",
        config={
            "num_cosets": NUM_COSETS,
            "words_per_line": WORDS_PER_LINE,
            "word_bits": WORD_BITS,
            "cost": "energy-then-saw",
            "speedup_floors": SPEEDUP_FLOORS,
        },
        results=results,
    )


if __name__ == "__main__":
    main()
