"""Fig. 8 — SAW cell improvement vs. coset cardinality."""

from typing import Any

from conftest import TableRecorder, run_once

from repro.experiments.fig08_saw_cosets import run


def test_fig08_saw_vs_cosets(benchmark: Any, record_table: TableRecorder) -> None:
    table = run_once(
        benchmark, lambda: run(coset_counts=(32, 64, 128, 256), rows=96, num_writes=150, seed=7)
    )
    record_table("fig08", table)

    reductions = {
        row["cosets"]: row["reduction_percent"] for row in table.filter(technique="VCC")
    }
    saw_counts = {row["cosets"]: row["saw_cells"] for row in table.filter(technique="VCC")}
    unencoded = {row["cosets"]: row["saw_cells"] for row in table.filter(technique="Unencoded")}

    # VCC always reduces the SAW count, the reduction grows with the number
    # of virtual cosets, and at 256 cosets it exceeds 95 % (paper: 95.6 %).
    for cosets in (32, 64, 128, 256):
        assert saw_counts[cosets] < unencoded[cosets]
    assert reductions[32] <= reductions[64] + 2.0
    assert reductions[64] <= reductions[128] + 2.0
    assert reductions[256] > 90.0
    assert reductions[128] > 90.0
