"""Fig. 2 — mean observed fault rate vs. number of random coset codes."""

from typing import Any

from conftest import TableRecorder, run_once

from repro.experiments.fig02_fault_masking import run


def test_fig02_fault_masking(benchmark: Any, record_table: TableRecorder) -> None:
    table = run_once(
        benchmark,
        lambda: run(coset_counts=(1, 2, 4, 8, 16, 32, 64, 128), rows=96, num_writes=150, seed=7),
    )
    record_table("fig02", table)

    rates = table.column("observed_fault_rate")
    # Paper shape: the mean observed fault rate decreases as the number of
    # coset candidates grows.
    assert rates[0] > rates[-1]
    assert all(a >= b for a, b in zip(rates, rates[1:]))
    # With no encoding the observed rate is within an order of magnitude of
    # the raw 1e-2 fault incidence (only mismatching cells are observed).
    assert 1e-3 < rates[0] <= 1e-2
