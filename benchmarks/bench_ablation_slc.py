"""Ablation — VCC on single-level cells (SLC PCM).

The paper's contribution list covers write-energy reduction for both SLC
and MLC memories; the headline evaluation uses MLC.  This ablation runs the
same encrypted random-write study on an SLC array (1 bit per cell,
asymmetric SET/RESET energies): VCC and RCC should both cut the dynamic
write energy substantially relative to the unencoded write, with RCC again
acting as the quality ceiling that VCC approaches.
"""

from typing import Any

from conftest import TableRecorder, run_once

from repro.pcm.cell import CellTechnology
from repro.sim.harness import TechniqueSpec, build_controller, drive_random_lines
from repro.sim.results import ResultTable
from repro.utils.rng import derive_seed

ROWS = 96
WRITES = 200
SEED = 31


def _total_energy(spec: TechniqueSpec) -> float:
    controller = build_controller(
        spec,
        rows=ROWS,
        technology=CellTechnology.SLC,
        seed=derive_seed(SEED, spec.display_name()),
        encrypt=True,
    )
    drive_random_lines(controller, WRITES, seed=SEED)
    return controller.stats.total_energy_pj


def run(num_cosets: int = 256) -> ResultTable:
    table = ResultTable(
        title="Ablation — write energy on SLC PCM (encrypted random data)",
        columns=["technique", "total_energy_pj", "saving_percent"],
        notes=f"{ROWS} rows, {WRITES} line writes, {num_cosets} cosets",
    )
    techniques = [
        TechniqueSpec(encoder="unencoded", cost="energy", label="Unencoded"),
        TechniqueSpec(encoder="dbi/fnw", cost="energy", label="DBI/FNW"),
        TechniqueSpec(encoder="vcc", cost="energy", num_cosets=num_cosets, label="VCC"),
        TechniqueSpec(encoder="rcc", cost="energy", num_cosets=num_cosets, label="RCC"),
    ]
    baseline = None
    for spec in techniques:
        energy = _total_energy(spec)
        if baseline is None:
            baseline = energy
        table.append(
            technique=spec.display_name(),
            total_energy_pj=energy,
            saving_percent=0.0 if baseline == 0 else 100.0 * (baseline - energy) / baseline,
        )
    return table


def test_ablation_slc_energy(benchmark: Any, record_table: TableRecorder) -> None:
    table = run_once(benchmark, run)
    record_table("ablation_slc", table)

    savings = {row["technique"]: row["saving_percent"] for row in table}
    # Coset coding remains effective on SLC: double-digit savings for VCC
    # and RCC, with RCC the ceiling and FNW clearly behind both on
    # encrypted (unbiased) data.
    assert savings["VCC"] > 15.0
    assert savings["RCC"] >= savings["VCC"] - 2.0
    assert savings["VCC"] > savings["DBI/FNW"]
