"""Ablation — how the encoder learns about stuck cells.

The paper assumes an ideal fault-tracking repository ("we assume some such
mechanism is in place") so the encoder always knows which cells of a row
are stuck.  This ablation compares three levels of knowledge for the same
VCC configuration against the same fault snapshot:

* ``oracle`` — the paper's assumption (ground-truth stuck mask);
* ``discovered`` — a runtime fault repository populated by write-verify
  mismatches (faults are masked only after they have been seen once);
* ``none`` — no fault information at all.

The expectation: oracle ≤ discovered < none in residual stuck-at-wrong
cells, with the discovered mode approaching the oracle as rows are
revisited.
"""

from typing import Any

from conftest import TableRecorder, run_once

from repro.pcm.cell import CellTechnology
from repro.pcm.faultmap import FaultMap
from repro.sim.harness import TechniqueSpec, build_controller, drive_trace
from repro.sim.results import ResultTable
from repro.traces.synthetic import generate_trace

ROWS = 64
REPEAT = 3


def _saw_cells(fault_knowledge: str) -> int:
    fault_map = FaultMap(rows=ROWS, cells_per_row=256, fault_rate=1e-2, seed=23)
    controller = build_controller(
        TechniqueSpec(encoder="vcc-stored", cost="saw-then-energy", num_cosets=256),
        rows=ROWS,
        technology=CellTechnology.MLC,
        fault_map=fault_map,
        seed=23,
    )
    # Swap in the requested fault-knowledge mode (build_controller defaults
    # to the oracle the paper assumes).
    from repro.memctrl.controller import MemoryController
    from repro.memctrl.config import ControllerConfig

    controller = MemoryController(
        array=controller.array,
        encoder=controller.encoder,
        config=ControllerConfig(),
        fault_knowledge=fault_knowledge,
    )
    trace = generate_trace("fotonik3d", 120, memory_lines=ROWS, seed=23)
    drive_trace(controller, trace, repetitions=REPEAT)
    return controller.stats.saw_cells


def run() -> ResultTable:
    table = ResultTable(
        title="Ablation — fault-knowledge modes (VCC-stored, 256 cosets, 1e-2 snapshot)",
        columns=["fault_knowledge", "saw_cells"],
        notes=f"trace replayed {REPEAT}x so the discovered mode can learn the fault map",
    )
    for mode in ("oracle", "discovered", "none"):
        table.append(fault_knowledge=mode, saw_cells=_saw_cells(mode))
    return table


def test_ablation_fault_knowledge(benchmark: Any, record_table: TableRecorder) -> None:
    table = run_once(benchmark, run)
    record_table("ablation_fault_knowledge", table)

    saw = {row["fault_knowledge"]: row["saw_cells"] for row in table}
    # Ground truth is the best case, no knowledge the worst.
    assert saw["oracle"] <= saw["discovered"] <= saw["none"]
    assert saw["oracle"] < saw["none"] * 0.3
    # Runtime discovery recovers most of the oracle's benefit once rows have
    # been revisited.
    assert saw["discovered"] < saw["none"] * 0.7
