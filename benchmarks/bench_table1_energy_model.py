"""Table I — MLC symbol-transition energy classification."""

from typing import Any

from conftest import TableRecorder, run_once

from repro.experiments.table1_energy_model import run


def test_table1_energy_model(benchmark: Any, record_table: TableRecorder) -> None:
    table = run_once(benchmark, run)
    record_table("table1", table)

    for row in table:
        old = row["old_state"][2:4]
        # Diagonal entries need no programming.
        assert row[f"N({old})"] == "-"
        for new in ("00", "01", "11", "10"):
            if new == old:
                continue
            # High-energy transitions are exactly those whose new symbol has
            # a right digit of one.
            expected = "high" if new[1] == "1" else "low"
            assert row[f"N({new})"] == expected
