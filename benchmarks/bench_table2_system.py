"""Table II — architecture parameters of the performance study."""

import math

from typing import Any

from conftest import TableRecorder, run_once

from repro.experiments.table2_system import run


def test_table2_system(benchmark: Any, record_table: TableRecorder) -> None:
    table = run_once(benchmark, run)
    record_table("table2", table)

    parameters = {row["parameter"]: row["value"] for row in table}
    assert parameters["cores (out-of-order)"] == 4
    assert parameters["issue width"] == 4
    assert math.isclose(parameters["frequency (GHz)"], 1.0)
    assert parameters["row size (bits)"] == 512
    assert parameters["word size (bits)"] == 64
    assert parameters["main memory (GiB, MLC PCM)"] == 2
    assert parameters["channels"] == 2
    assert parameters["banks per rank"] == 8
    assert math.isclose(parameters["baseline access delay (ns)"], 84.0)
