"""Ablation — hybrid VCC (identity kernel added) on biased vs encrypted data.

The paper's conclusion sketches a hybrid scheme for systems that store both
encrypted and plaintext data: "VCC can also be effectively applied ... by
adding the identity and inversion kernels", which folds the biased
Flip-N-Write candidates into the virtual coset set.  This ablation measures
bit changes per word for three encoders — FNW, plain VCC, hybrid VCC — on
two workloads:

* *biased*: small in-place updates to data already stored (plaintext-like);
* *encrypted*: uniformly random data over random old contents.

Expected shape: FNW wins the biased case but collapses on encrypted data;
plain VCC is the opposite; hybrid VCC tracks the better of the two on both.
"""

from typing import Any

from conftest import TableRecorder, run_once

from repro.coding.base import WordContext
from repro.coding.cost import BitChangeCost
from repro.coding.fnw import FNWEncoder
from repro.core.config import VCCConfig
from repro.core.kernels import StoredKernelProvider
from repro.core.vcc import VCCEncoder
from repro.sim.results import ResultTable
from repro.utils.bitops import random_word
from repro.utils.rng import make_rng

WORDS = 300


def _encoders():
    cost = BitChangeCost()
    config = VCCConfig.for_cosets(256, stored_kernels=True)
    plain = VCCEncoder(config, cost_function=cost, seed=7)
    hybrid = VCCEncoder(
        config,
        cost_function=cost,
        kernel_provider=StoredKernelProvider(
            config.kernel_bits, config.num_kernels, seed=7, include_biased=True
        ),
    )
    fnw = FNWEncoder(partitions=4, cost_function=cost)
    return {"FNW": fnw, "VCC": plain, "Hybrid VCC": hybrid}


def _mean_bit_changes(encoder, workload: str) -> float:
    rng = make_rng(55, f"hybrid-{workload}-{encoder.name}-{encoder.aux_bits}")
    total = 0.0
    for _ in range(WORDS):
        old = random_word(rng, 64)
        if workload == "biased":
            data = old ^ random_word(rng, 8)  # small update to the stored value
        else:
            data = random_word(rng, 64)
        context = WordContext.from_word(old, 64, 2)
        encoded = encoder.encode(data, context)
        total += bin(encoded.codeword ^ old).count("1") + bin(encoded.aux).count("1")
    return total / WORDS


def run() -> ResultTable:
    table = ResultTable(
        title="Ablation — hybrid VCC vs plain VCC vs FNW (bit changes per word)",
        columns=["workload", "technique", "bit_changes_per_word"],
        notes="biased = small updates to stored plaintext; encrypted = uniform random",
    )
    encoders = _encoders()
    for workload in ("biased", "encrypted"):
        for name, encoder in encoders.items():
            table.append(
                workload=workload,
                technique=name,
                bit_changes_per_word=_mean_bit_changes(encoder, workload),
            )
    return table


def test_ablation_hybrid_vcc(benchmark: Any, record_table: TableRecorder) -> None:
    table = run_once(benchmark, run)
    record_table("ablation_hybrid_vcc", table)

    def value(workload, technique):
        return table.filter(workload=workload, technique=technique)[0]["bit_changes_per_word"]

    # Encrypted data: both VCC variants beat FNW (the motivation of the
    # paper), and adding the identity kernel costs almost nothing.
    assert value("encrypted", "VCC") < value("encrypted", "FNW")
    assert value("encrypted", "Hybrid VCC") < value("encrypted", "FNW")
    assert value("encrypted", "Hybrid VCC") <= value("encrypted", "VCC") * 1.1

    # Biased data: FNW is excellent; hybrid VCC follows it closely while
    # plain VCC (random kernels only) is noticeably worse.
    assert value("biased", "Hybrid VCC") <= value("biased", "VCC")
    assert value("biased", "Hybrid VCC") <= value("biased", "FNW") + 2.0
