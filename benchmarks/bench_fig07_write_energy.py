"""Fig. 7 — write energy of RCC / VCC / VCC-stored / unencoded vs. coset count."""

from typing import Any

from conftest import TableRecorder, run_once

from repro.experiments.fig07_write_energy import run


def test_fig07_write_energy(benchmark: Any, record_table: TableRecorder) -> None:
    table = run_once(
        benchmark, lambda: run(coset_counts=(32, 64, 128, 256), rows=96, num_writes=200, seed=2022)
    )
    record_table("fig07", table)

    def saving(cosets, technique):
        return table.filter(cosets=cosets, technique=technique)[0]["saving_percent"]

    for cosets in (32, 64, 128, 256):
        # Every coset technique saves a substantial fraction of the
        # unencoded write energy (paper: ~45 % at 256 cosets).
        for technique in ("RCC", "VCC-Generated", "VCC-Stored"):
            assert saving(cosets, technique) > 20.0
        # RCC is the quality ceiling; VCC approaches it within a few percent
        # and stored kernels sit between generated kernels and RCC.
        assert saving(cosets, "RCC") >= saving(cosets, "VCC-Stored") - 1.0
        assert saving(cosets, "VCC-Stored") >= saving(cosets, "VCC-Generated") - 1.0
        assert saving(cosets, "RCC") - saving(cosets, "VCC-Generated") < 10.0

    # More cosets help every technique.
    for technique in ("RCC", "VCC-Generated", "VCC-Stored"):
        assert saving(256, technique) > saving(32, technique) - 1.0

    # The RCC-vs-VCC gap narrows (or at least does not grow) as the coset
    # count increases, matching the paper's observation.
    gap_32 = saving(32, "RCC") - saving(32, "VCC-Generated")
    gap_256 = saving(256, "RCC") - saving(256, "VCC-Generated")
    assert gap_256 <= gap_32 + 2.0
