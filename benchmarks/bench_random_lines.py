"""Random-line benchmark: batched driver vs. the per-write scalar path.

Runs a Fig. 7-sized random-line cell (the unencoded baseline that anchors
the random-data studies) through the scalar ``write_line`` loop and
through :meth:`repro.memctrl.controller.MemoryController.write_random_lines`,
and checks the driver's contracts:

* **parity** — every per-write accounting value of the batched drive is
  bit-identical to the scalar path (which draws the identical addresses
  and words from the shared seeded stream), for the identity fast path
  (``unencoded``) and the generic encoder path (``rcc``);
* **throughput** — the batched driver sustains at least ``3x`` the scalar
  random-line throughput on the unencoded identity path.  The floor is
  enforced only on hosts with a spare core (``os.cpu_count() >= 2``,
  mirroring ``bench_trace_replay.py``); single-core hosts report the
  measurement for tracking.

Run directly for a table::

    PYTHONPATH=src python benchmarks/bench_random_lines.py

or under pytest to enforce the contracts::

    PYTHONPATH=src python -m pytest benchmarks/bench_random_lines.py -q
"""

from __future__ import annotations

import os
import time
from typing import Tuple

from repro.pcm.endurance import EnduranceModel
from repro.sim.harness import TechniqueSpec, build_controller, scalar_random_line_results
from repro.utils.rng import make_rng

#: Fig. 7-sized geometry (EnergyStudyConfig defaults) with an endurance
#: high enough that the memory survives the whole measurement.
ROWS = 128
SEED = 2022
MEASURE_WRITES = 12_000
PARITY_WRITES = 400

#: Batched-driver throughput floor relative to the scalar path.
#: Single-threaded work, but shared single-core hosts are too noisy to
#: gate on.
SPEEDUP_FLOOR = 3.0


def _controller(spec: TechniqueSpec):
    return build_controller(
        spec,
        rows=ROWS,
        endurance_model=EnduranceModel(mean_writes=1e9, coefficient_of_variation=0.2),
        seed=SEED,
        encrypt=True,
    )


def _drive_scalar(controller, total: int, seed: int = SEED):
    """The oracle: the harness's single-source scalar write_line loop."""
    return scalar_random_line_results(controller, total, seed=seed)


def _drive_batched(controller, total: int, seed: int = SEED):
    return controller.write_random_lines(total, make_rng(seed, "random-lines"))


def _assert_parity(spec: TechniqueSpec, total: int) -> None:
    scalar = _drive_scalar(_controller(spec), total)
    replay = _drive_batched(_controller(spec), total)
    assert replay.writes == len(scalar)
    for index, line in enumerate(scalar):
        assert line.address == replay.addresses[index]
        assert line.row_index == replay.row_indices[index]
        assert line.data_energy_pj == replay.data_energy_pj[index]
        assert line.aux_energy_pj == replay.aux_energy_pj[index]
        assert line.cells_changed == replay.cells_changed[index]
        assert line.bits_changed == replay.bits_changed[index]
        assert line.saw_cells == replay.saw_cells[index]
        assert list(line.saw_bits_per_word) == list(replay.saw_bits_per_word[index])
        assert line.newly_stuck_cells == replay.newly_stuck_cells[index]


def measure(spec: TechniqueSpec, total: int) -> Tuple[float, float]:
    """Writes/second of the scalar loop and of the batched driver."""
    controller = _controller(spec)
    start = time.perf_counter()  # repro: allow[DET003,OBS001] reason=benchmark stopwatch; the elapsed time is the measured quantity and never enters a result table
    _drive_scalar(controller, total)
    scalar_s = time.perf_counter() - start  # repro: allow[DET003,OBS001] reason=benchmark stopwatch; the elapsed time is the measured quantity and never enters a result table

    controller = _controller(spec)
    start = time.perf_counter()  # repro: allow[DET003,OBS001] reason=benchmark stopwatch; the elapsed time is the measured quantity and never enters a result table
    replay = _drive_batched(controller, total)
    batched_s = time.perf_counter() - start  # repro: allow[DET003,OBS001] reason=benchmark stopwatch; the elapsed time is the measured quantity and never enters a result table
    assert replay.writes == total
    return total / scalar_s, total / batched_s


def test_random_lines_parity_and_speedup() -> None:
    # Contract 1: bit-identical per-write accounting on both driver paths.
    _assert_parity(
        TechniqueSpec(encoder="unencoded", cost="saw-then-energy"), PARITY_WRITES
    )
    _assert_parity(
        TechniqueSpec(encoder="rcc", cost="saw-then-energy", num_cosets=16), PARITY_WRITES
    )

    # Contract 2: the unencoded identity path clears the throughput floor.
    scalar_wps, batched_wps = measure(
        TechniqueSpec(encoder="unencoded", cost="saw-then-energy"), MEASURE_WRITES
    )
    speedup = batched_wps / scalar_wps
    cores = os.cpu_count() or 1
    print(
        f"\nrandom lines: scalar {scalar_wps:.0f} w/s, batched {batched_wps:.0f} w/s, "
        f"speedup {speedup:.2f}x on {cores} core(s)"
    )
    if cores >= 2:
        assert speedup >= SPEEDUP_FLOOR, (
            f"batched random-line speedup is {speedup:.2f}x; floor is {SPEEDUP_FLOOR}x"
        )


def main() -> None:
    import sys

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from bench_util import write_bench_json

    print(
        f"random-line benchmark: {MEASURE_WRITES} writes, {ROWS} rows, encrypted"
    )
    specs = [
        ("unencoded (identity fast path)", TechniqueSpec(encoder="unencoded", cost="saw-then-energy"), MEASURE_WRITES),
        ("rcc-256 (generic path)", TechniqueSpec(encoder="rcc", cost="saw-then-energy", num_cosets=256), 2_000),
    ]
    print(f"{'technique':32s} {'scalar w/s':>11} {'batched w/s':>12} {'speedup':>8}")
    results = {}
    for label, spec, total in specs:
        scalar_wps, batched_wps = measure(spec, total)
        print(
            f"{label:32s} {scalar_wps:>11.0f} {batched_wps:>12.0f} "
            f"{batched_wps / scalar_wps:>7.2f}x"
        )
        results[spec.encoder] = {
            "scalar_writes_per_s": scalar_wps,
            "batched_writes_per_s": batched_wps,
            "speedup": batched_wps / scalar_wps,
        }
    write_bench_json(
        "random_lines",
        config={
            "rows": ROWS,
            "measure_writes": MEASURE_WRITES,
            "speedup_floor": SPEEDUP_FLOOR,
        },
        results=results,
    )
    print("parity: checking per-write bit-identity on both paths ...", end=" ")
    _assert_parity(TechniqueSpec(encoder="unencoded", cost="saw-then-energy"), PARITY_WRITES)
    _assert_parity(TechniqueSpec(encoder="rcc", cost="saw-then-energy", num_cosets=16), PARITY_WRITES)
    print("OK")


if __name__ == "__main__":
    main()
