"""Disabled-mode telemetry overhead: the <2% floor on the replay engine.

The :mod:`repro.obs` layer stays importable and registered on every hot
path; what must be (nearly) free is its *disabled* mode — counters
bumped at wave granularity and ``obs.span`` returning its shared no-op.
This benchmark measures that cost directly: it replays the same
generic-path workload as ``bench_trace_replay.py`` twice, once with the
real module-level ``_OBS_*`` handles (telemetry disabled, the shipping
configuration) and once with true no-op stand-ins swapped into the
instrumented modules, and gates the relative slowdown under
``OVERHEAD_FLOOR`` (2%).

Run directly for a table::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py

or under pytest to enforce the floor::

    PYTHONPATH=src python -m pytest benchmarks/bench_obs_overhead.py -q
"""

from __future__ import annotations

import os
import time
from typing import Callable, List, Tuple

from repro import obs
from repro.pcm.endurance import EnduranceModel
from repro.sim.harness import TechniqueSpec, build_controller
from repro.traces.synthetic import generate_trace
from repro.utils.rng import derive_seed

ROWS = 48
TRACE_WRITEBACKS = 400
SEED = derive_seed(11, "lifetime-lbm")
#: Generic-path writes per timed run — the path carrying the wave
#: counters, the span call, and the candidate-counting cost kernels.
MEASURE_WRITES = 4_000
#: Back-to-back (real, null) timing pairs; the median per-pair ratio is
#: the reported overhead, which cancels host-speed drift between pairs.
PAIRS = 9

#: Maximum tolerated slowdown of the disabled telemetry layer relative
#: to true no-op handles.
OVERHEAD_FLOOR = 0.02

class _NullSpan:
    """Bare context manager mimicking the disabled-span interface."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def set(self, **attrs: object) -> "_NullSpan":
        del attrs
        return self


_NULL_CONTEXT = _NullSpan()


def _null_span(name: str, **attrs: object) -> _NullSpan:
    """Stand-in for ``obs.span`` with the cheapest possible disabled path."""
    del name, attrs
    return _NULL_CONTEXT


def _instrumented_modules() -> List[object]:
    import repro.coding.base as coding_base
    import repro.coding.cost as coding_cost
    import repro.coding.rcc as coding_rcc
    import repro.crypto.counter_mode as counter_mode
    import repro.memctrl.controller as controller

    return [coding_base, coding_cost, coding_rcc, counter_mode, controller]


def swap_null_handles() -> Callable[[], None]:
    """Replace every ``_OBS_*`` module handle with a no-op stand-in.

    Returns the undo function.  The swap relies on the instrumentation
    convention that hot-path modules bind their handles as module globals
    named ``_OBS_*`` (and reference them through the module, never via
    locals), which is exactly what makes this measurement possible.
    """
    saved: List[Tuple[object, str, object]] = []
    for module in _instrumented_modules():
        for attr in dir(module):
            if not attr.startswith("_OBS_"):
                continue
            value = getattr(module, attr)
            saved.append((module, attr, value))
            if isinstance(value, obs.Histogram):
                replacement: object = obs.NULL_HISTOGRAM
            elif isinstance(value, obs.Gauge):
                replacement = obs.NULL_GAUGE
            elif isinstance(value, obs.Counter):
                replacement = obs.NULL_COUNTER
            else:  # the span factory
                replacement = _null_span
            setattr(module, attr, replacement)

    def restore() -> None:
        for module, attr, value in saved:
            setattr(module, attr, value)

    return restore


def _replay_once() -> None:
    trace = generate_trace(
        "lbm",
        num_writebacks=TRACE_WRITEBACKS,
        memory_lines=ROWS,
        line_bits=512,
        word_bits=64,
        seed=derive_seed(SEED, "trace"),
    )
    controller = build_controller(
        TechniqueSpec(encoder="rcc", cost="saw-then-energy", num_cosets=16),
        rows=ROWS,
        endurance_model=EnduranceModel(mean_writes=1e9, coefficient_of_variation=0.2),
        seed=SEED,
        encrypt=True,
    )
    replay = controller.replay_trace(
        trace, repetitions=-(-MEASURE_WRITES // len(trace)), max_writes=MEASURE_WRITES
    )
    assert replay.writes == MEASURE_WRITES


def _time_once() -> float:
    start = time.perf_counter()  # repro: allow[DET003,OBS001] reason=benchmark stopwatch; the elapsed time is the measured quantity and never enters a result table
    _replay_once()
    return time.perf_counter() - start  # repro: allow[DET003,OBS001] reason=benchmark stopwatch; the elapsed time is the measured quantity and never enters a result table


def measure() -> Tuple[float, float, float]:
    """Paired timing: (median real seconds, median null seconds, overhead).

    Host speed on shared runners drifts by tens of percent over the
    course of a measurement — far more than the effect being measured —
    so absolute best-of-N times are useless here.  Instead each of the
    ``PAIRS`` repetitions times the real disabled handles and the null
    stand-ins back to back (alternating which goes first to cancel
    cache/ordering bias) and the overhead is the **median of the
    per-pair ratios**: within one pair the two runs are adjacent in
    time, so drift between pairs divides out.
    """
    assert not obs.tracing_enabled(), "overhead must be measured with tracing off"
    reals: List[float] = []
    nulls: List[float] = []
    ratios: List[float] = []
    _replay_once()  # warm caches once outside the timed region
    for pair in range(PAIRS):
        restore = swap_null_handles()
        try:
            if pair % 2 == 0:
                restore()
                real_s = _time_once()
                restore = swap_null_handles()
                null_s = _time_once()
            else:
                null_s = _time_once()
                restore()
                real_s = _time_once()
                restore = swap_null_handles()
        finally:
            restore()
        reals.append(real_s)
        nulls.append(null_s)
        ratios.append(real_s / null_s)
    return _median(reals), _median(nulls), _median(ratios) - 1.0


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def test_disabled_overhead_floor() -> None:
    real_s, null_s, overhead = measure()
    cores = os.cpu_count() or 1
    print(
        f"\nobs disabled-mode overhead: median real {real_s * 1e3:.1f}ms, "
        f"median null {null_s * 1e3:.1f}ms, paired overhead "
        f"{overhead * 100.0:+.2f}% on {cores} core(s)"
    )
    if cores >= 2:
        assert overhead < OVERHEAD_FLOOR, (
            f"disabled telemetry costs {overhead * 100.0:.2f}% on the replay "
            f"engine; floor is {OVERHEAD_FLOOR * 100.0:.0f}%"
        )


def main() -> None:
    import sys

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from bench_util import write_bench_json

    print(
        f"obs overhead benchmark: {MEASURE_WRITES} generic-path writes, "
        f"{ROWS} rows, rcc-16, telemetry disabled vs null handles"
    )
    real_s, null_s, overhead = measure()
    print(f"{'mode':24s} {'median s':>10} {'writes/s':>10}")
    print(f"{'real handles (disabled)':24s} {real_s:>10.3f} {MEASURE_WRITES / real_s:>10.0f}")
    print(f"{'null handles':24s} {null_s:>10.3f} {MEASURE_WRITES / null_s:>10.0f}")
    print(
        f"disabled-mode overhead (median paired ratio): "
        f"{overhead * 100.0:+.2f}% (floor {OVERHEAD_FLOOR * 100.0:.0f}%)"
    )
    write_bench_json(
        "obs_overhead",
        config={
            "rows": ROWS,
            "measure_writes": MEASURE_WRITES,
            "pairs": PAIRS,
            "overhead_floor": OVERHEAD_FLOOR,
        },
        results={
            "real_median_s": real_s,
            "null_median_s": null_s,
            "overhead_fraction": overhead,
        },
    )


if __name__ == "__main__":
    main()
