"""Fig. 1 — analytical reduction in changed bits: RCC vs. BCC."""

from typing import Any

from conftest import TableRecorder, run_once

from repro.experiments.fig01_coding_analysis import run


def test_fig01_rcc_vs_bcc(benchmark: Any, record_table: TableRecorder) -> None:
    table = run_once(benchmark, lambda: run(n=64, coset_counts=(2, 4, 16, 256)))
    record_table("fig01", table)

    rows = {row["cosets"]: row for row in table}
    # Paper shape: BCC wins at N in {2, 4}; RCC overtakes at 16 and wins
    # by a considerable margin at 256.
    assert rows[2]["bcc_reduction_percent"] > rows[2]["rcc_reduction_percent"]
    assert rows[4]["bcc_reduction_percent"] > rows[4]["rcc_reduction_percent"]
    assert rows[16]["rcc_reduction_percent"] > rows[16]["bcc_reduction_percent"]
    assert rows[256]["rcc_reduction_percent"] > rows[256]["bcc_reduction_percent"] + 3.0
    # Absolute scale: both in the 0-35 % band shown in the figure.
    for row in rows.values():
        assert 0.0 < row["bcc_reduction_percent"] < 35.0
        assert 0.0 < row["rcc_reduction_percent"] < 35.0
