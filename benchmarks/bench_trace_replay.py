"""Trace-replay benchmark: batched engine vs. the per-write scalar path.

Runs a Fig. 11-sized lifetime cell (the unencoded baseline that anchors
every lifetime figure) through the scalar ``write_line`` loop and through
:meth:`repro.memctrl.controller.MemoryController.replay_trace`, and checks
the engine's contracts:

* **parity** — every per-write accounting value of the replay is
  bit-identical to the scalar path, for the identity fast path
  (``unencoded``) and the generic encoder path (``rcc``);
* **throughput** — the replay engine sustains at least ``3x`` the scalar
  lifetime-cell throughput.  The floor is enforced only on hosts with a
  spare core (``os.cpu_count() >= 2``, mirroring
  ``bench_campaign_scaling.py``); single-core hosts report the
  measurement for tracking.

Run directly for a table::

    PYTHONPATH=src python benchmarks/bench_trace_replay.py

or under pytest to enforce the contracts::

    PYTHONPATH=src python -m pytest benchmarks/bench_trace_replay.py -q
"""

from __future__ import annotations

import os
import time
from typing import Tuple

from repro.pcm.endurance import EnduranceModel
from repro.sim.harness import TechniqueSpec, build_controller
from repro.traces.synthetic import generate_trace
from repro.utils.rng import derive_seed

#: Lifetime-cell geometry (matches LifetimeStudyConfig defaults) with an
#: endurance high enough that the memory survives the whole measurement.
ROWS = 48
TRACE_WRITEBACKS = 400
SEED = derive_seed(11, "lifetime-lbm")
MEASURE_WRITES = 12_000
PARITY_WRITES = 400

#: Replay throughput floor relative to the scalar path.  Single-threaded
#: work, but shared single-core hosts are too noisy to gate on.
SPEEDUP_FLOOR = 3.0


def _controller(spec: TechniqueSpec, mean_endurance: float = 1e9):
    return build_controller(
        spec,
        rows=ROWS,
        endurance_model=EnduranceModel(
            mean_writes=mean_endurance, coefficient_of_variation=0.2
        ),
        seed=SEED,
        encrypt=True,
    )


def _trace():
    return generate_trace(
        "lbm",
        num_writebacks=TRACE_WRITEBACKS,
        memory_lines=ROWS,
        line_bits=512,
        word_bits=64,
        seed=derive_seed(SEED, "trace"),
    )


def _drive_scalar(controller, trace, total: int):
    results = []
    while len(results) < total:
        for record in trace:
            results.append(controller.write_line(record.address, list(record.words)))
            if len(results) >= total:
                break
    return results


def _assert_parity(spec: TechniqueSpec, total: int) -> None:
    trace = _trace()
    scalar = _drive_scalar(_controller(spec, mean_endurance=60), trace, total)
    replay = _controller(spec, mean_endurance=60).replay_trace(
        trace, repetitions=-(-total // len(trace)), max_writes=total
    )
    assert replay.writes == len(scalar)
    for index, line in enumerate(scalar):
        assert line.address == replay.addresses[index]
        assert line.row_index == replay.row_indices[index]
        assert line.data_energy_pj == replay.data_energy_pj[index]
        assert line.aux_energy_pj == replay.aux_energy_pj[index]
        assert line.cells_changed == replay.cells_changed[index]
        assert line.bits_changed == replay.bits_changed[index]
        assert line.saw_cells == replay.saw_cells[index]
        assert list(line.saw_bits_per_word) == list(replay.saw_bits_per_word[index])
        assert line.newly_stuck_cells == replay.newly_stuck_cells[index]


def measure(spec: TechniqueSpec, total: int) -> Tuple[float, float]:
    """Writes/second of the scalar loop and of replay_trace (with a stop
    predicate wired, as the lifetime study drives it)."""
    trace = _trace()
    controller = _controller(spec)
    start = time.perf_counter()  # repro: allow[DET003,OBS001] reason=benchmark stopwatch; the elapsed time is the measured quantity and never enters a result table
    _drive_scalar(controller, trace, total)
    scalar_s = time.perf_counter() - start  # repro: allow[DET003,OBS001] reason=benchmark stopwatch; the elapsed time is the measured quantity and never enters a result table

    controller = _controller(spec)
    start = time.perf_counter()  # repro: allow[DET003,OBS001] reason=benchmark stopwatch; the elapsed time is the measured quantity and never enters a result table
    replay = controller.replay_trace(
        trace,
        repetitions=-(-total // len(trace)),
        max_writes=total,
        stop=lambda index, row, saw, bits: False,
    )
    replay_s = time.perf_counter() - start  # repro: allow[DET003,OBS001] reason=benchmark stopwatch; the elapsed time is the measured quantity and never enters a result table
    assert replay.writes == total
    return total / scalar_s, total / replay_s


def test_trace_replay_parity_and_speedup() -> None:
    # Contract 1: bit-identical per-write accounting on both engine paths.
    _assert_parity(
        TechniqueSpec(encoder="unencoded", cost="saw-then-energy"), PARITY_WRITES
    )
    _assert_parity(
        TechniqueSpec(encoder="rcc", cost="saw-then-energy", num_cosets=16), PARITY_WRITES
    )

    # Contract 2: the lifetime-cell hot path clears the throughput floor.
    scalar_wps, replay_wps = measure(
        TechniqueSpec(encoder="unencoded", cost="saw-then-energy"), MEASURE_WRITES
    )
    speedup = replay_wps / scalar_wps
    cores = os.cpu_count() or 1
    print(
        f"\ntrace replay: scalar {scalar_wps:.0f} w/s, replay {replay_wps:.0f} w/s, "
        f"speedup {speedup:.2f}x on {cores} core(s)"
    )
    if cores >= 2:
        assert speedup >= SPEEDUP_FLOOR, (
            f"replay speedup is {speedup:.2f}x; floor is {SPEEDUP_FLOOR}x"
        )


def main() -> None:
    import sys

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from bench_util import write_bench_json

    print(
        f"trace replay benchmark: {MEASURE_WRITES} writes, {ROWS} rows, "
        f"{TRACE_WRITEBACKS}-writeback lbm trace, encrypted"
    )
    specs = [
        ("unencoded (identity fast path)", TechniqueSpec(encoder="unencoded", cost="saw-then-energy"), MEASURE_WRITES),
        ("rcc-256 (generic path)", TechniqueSpec(encoder="rcc", cost="saw-then-energy", num_cosets=256), 2_000),
    ]
    print(f"{'technique':32s} {'scalar w/s':>11} {'replay w/s':>11} {'speedup':>8}")
    results = {}
    for label, spec, total in specs:
        scalar_wps, replay_wps = measure(spec, total)
        print(
            f"{label:32s} {scalar_wps:>11.0f} {replay_wps:>11.0f} "
            f"{replay_wps / scalar_wps:>7.2f}x"
        )
        results[spec.encoder] = {
            "scalar_writes_per_s": scalar_wps,
            "replay_writes_per_s": replay_wps,
            "speedup": replay_wps / scalar_wps,
        }
    write_bench_json(
        "trace_replay",
        config={
            "rows": ROWS,
            "trace_writebacks": TRACE_WRITEBACKS,
            "measure_writes": MEASURE_WRITES,
            "speedup_floor": SPEEDUP_FLOOR,
        },
        results=results,
    )
    print("parity: checking per-write bit-identity on both paths ...", end=" ")
    _assert_parity(TechniqueSpec(encoder="unencoded", cost="saw-then-energy"), PARITY_WRITES)
    _assert_parity(TechniqueSpec(encoder="rcc", cost="saw-then-energy", num_cosets=16), PARITY_WRITES)
    print("OK")


if __name__ == "__main__":
    main()
