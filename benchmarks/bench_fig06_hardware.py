"""Fig. 6 — encoder area / energy / delay vs. coset count."""

from typing import Any

from conftest import TableRecorder, run_once

from repro.experiments.fig06_hardware import run


def test_fig06_hardware(benchmark: Any, record_table: TableRecorder) -> None:
    table = run_once(benchmark, lambda: run(coset_counts=(32, 64, 128, 256)))
    record_table("fig06", table)

    def series(design, column):
        return [row[column] for row in table.filter(design=design)]

    # (a) Area: RCC starts much higher and grows much faster than VCC.
    rcc_area = series("RCC", "area_um2")
    vcc_area = series("VCC-64", "area_um2")
    assert all(r > v for r, v in zip(rcc_area, vcc_area))
    assert (rcc_area[-1] - rcc_area[0]) > 5 * (vcc_area[-1] - vcc_area[0])

    # (b) Energy: RCC is roughly an order of magnitude above VCC and the gap
    # grows with the coset count; VCC-32 costs more than VCC-64.
    rcc_energy = series("RCC", "energy_pj")
    vcc_energy = series("VCC-64", "energy_pj")
    vcc32_energy = series("VCC-32", "energy_pj")
    assert all(r > 5 * v for r, v in zip(rcc_energy, vcc_energy))
    assert (rcc_energy[-1] - vcc_energy[-1]) > (rcc_energy[0] - vcc_energy[0])
    assert all(v32 > v64 for v32, v64 in zip(vcc32_energy, vcc_energy))

    # (c) Delay: VCC holds its latency to ~1.8-2 ns at 256 cosets while RCC
    # exceeds it; both remain tiny against the 84 ns array access.
    rcc_delay = series("RCC", "delay_ps")
    vcc_delay = series("VCC-64", "delay_ps")
    assert all(r > v for r, v in zip(rcc_delay, vcc_delay))
    assert vcc_delay[-1] < 2200.0
    assert 2000.0 < rcc_delay[-1] < 3000.0

    # Stored vs generated kernels are nearly identical (the paper's point
    # that either implementation choice is practical).
    stored_delay = series("VCC-64-Stored", "delay_ps")
    assert stored_delay == vcc_delay
