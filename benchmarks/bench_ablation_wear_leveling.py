"""Ablation — Start-Gap wear leveling under a write-hot workload.

The paper's lifetime studies follow prior work in assuming the usual PCM
wear-leveling machinery exists underneath the encoding layer.  This
ablation quantifies what that machinery contributes in our model: a
hot-spot workload is written until rows start failing, with and without
Start-Gap remapping, at identical endurance budgets.  Because the first row to die is always
one of the hot rows, Start-Gap delays that first failure by rotating the
hot logical rows across physical rows, at a small write-amplification cost.
(With a fail-on-first-error criterion and no error correction, leveling
trades graceful degradation for a later first failure, which is exactly
what this ablation measures.)
"""

from typing import Any

from conftest import TableRecorder, run_once

from repro.coding.registry import make_encoder
from repro.coding.cost import saw_then_energy
from repro.memctrl.config import ControllerConfig
from repro.memctrl.controller import MemoryController
from repro.pcm.array import PCMArray
from repro.pcm.cell import CellTechnology
from repro.pcm.endurance import EnduranceModel
from repro.pcm.wearlevel import StartGapWearLeveler
from repro.sim.results import ResultTable
from repro.traces.synthetic import generate_trace

LOGICAL_ROWS = 24
MEAN_ENDURANCE = 48
FAILED_ROWS_LIMIT = 1
MAX_WRITES = 40_000


def _writes_to_failure(use_wear_leveling: bool, gap_write_interval: int = 4) -> dict:
    leveler = (
        StartGapWearLeveler(rows=LOGICAL_ROWS, gap_write_interval=gap_write_interval)
        if use_wear_leveling
        else None
    )
    encoder = make_encoder("unencoded", cost_function=saw_then_energy())
    array = PCMArray(
        rows=LOGICAL_ROWS + 1,
        row_bits=512,
        technology=CellTechnology.MLC,
        endurance_model=EnduranceModel(mean_writes=MEAN_ENDURANCE, coefficient_of_variation=0.2),
        seed=17,
    )
    controller = MemoryController(
        array=array,
        encoder=encoder,
        config=ControllerConfig(),
        wear_leveler=leveler,
    )
    trace = generate_trace("mcf", 200, memory_lines=LOGICAL_ROWS, seed=17)
    failed_rows = set()
    writes = 0
    while writes < MAX_WRITES:
        for record in trace:
            result = controller.write_line(record.address, list(record.words))
            writes += 1
            if result.row_index not in failed_rows and any(result.saw_bits_per_word):
                failed_rows.add(result.row_index)
                if len(failed_rows) >= FAILED_ROWS_LIMIT:
                    return {
                        "writes_to_failure": writes,
                        "gap_moves": leveler.gap_moves if leveler else 0,
                    }
            if writes >= MAX_WRITES:
                break
    return {"writes_to_failure": writes, "gap_moves": leveler.gap_moves if leveler else 0}


def run() -> ResultTable:
    table = ResultTable(
        title="Ablation — Start-Gap wear leveling: writes until the first row failure",
        columns=["configuration", "writes_to_failure", "gap_moves"],
        notes=f"{LOGICAL_ROWS} logical rows, mean endurance {MEAN_ENDURANCE} writes",
    )
    without = _writes_to_failure(use_wear_leveling=False)
    with_leveling = _writes_to_failure(use_wear_leveling=True)
    table.append(configuration="no wear leveling", **without)
    table.append(configuration="start-gap (interval 4)", **with_leveling)
    return table


def test_ablation_wear_leveling(benchmark: Any, record_table: TableRecorder) -> None:
    table = run_once(benchmark, run)
    record_table("ablation_wear_leveling", table)

    rows = {row["configuration"]: row for row in table}
    baseline = rows["no wear leveling"]["writes_to_failure"]
    levelled = rows["start-gap (interval 4)"]["writes_to_failure"]
    # Start-Gap spreads the hot rows' wear and delays the first failure.
    assert levelled > baseline
    # The leveler actually moved the gap during the run.
    assert rows["start-gap (interval 4)"]["gap_moves"] > 0
