"""Fig. 9 — per-benchmark write energy under both cost-function orderings."""

from typing import Any

from conftest import TableRecorder, run_once

from repro.experiments.fig09_energy_benchmarks import run

BENCHMARKS = ("lbm", "mcf", "bwaves", "xalancbmk", "xz")


def test_fig09_energy_per_benchmark(benchmark: Any, record_table: TableRecorder) -> None:
    table = run_once(
        benchmark,
        lambda: run(benchmarks=BENCHMARKS, num_cosets=256, writebacks_per_benchmark=120, rows=96),
    )
    record_table("fig09", table)

    savings = {}
    for name in BENCHMARKS:
        savings[name] = {
            row["technique"]: row["saving_percent"] for row in table.filter(benchmark=name)
        }

    for name, rows in savings.items():
        # The paper reports ~22-28 % average dynamic-energy savings for VCC;
        # require a clear double-digit saving on every benchmark.
        assert rows["VCC Opt. Energy"] > 15.0
        assert rows["VCC Opt. SAW"] > 15.0
        # Switching the lexicographic order barely changes the saving.
        assert abs(rows["VCC Opt. Energy"] - rows["VCC Opt. SAW"]) < 10.0
        # RCC stays comparable (it is the quality ceiling).
        assert rows["RCC Opt. Energy"] > 15.0

    mean_vcc = sum(rows["VCC Opt. Energy"] for rows in savings.values()) / len(savings)
    assert 15.0 < mean_vcc < 60.0
