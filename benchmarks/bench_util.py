"""Shared helpers for the performance benchmarks.

Every ``bench_*.py`` that measures throughput writes a machine-readable
``BENCH_<name>.json`` next to the human-readable output so the perf
trajectory can be tracked across PRs (and uploaded as a CI artifact):

* ``name`` / ``created_unix`` identify the measurement;
* ``config`` records the knobs the numbers depend on (geometry, writes,
  encoder settings, host core count);
* ``results`` holds the measured throughputs and speedups.

The files land in ``benchmarks/results/`` like the figure outputs.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict

__all__ = ["write_bench_json", "RESULTS_DIR"]

#: Output directory shared with the figure benchmarks.
RESULTS_DIR = Path(__file__).resolve().parent / "results"


def write_bench_json(
    name: str, config: Dict[str, Any], results: Dict[str, Any]
) -> Path:
    """Write ``BENCH_<name>.json`` and return its path.

    The payload is small and flat on purpose: one file per benchmark run,
    overwritten in place, so diffing two checkouts (or two CI artifacts)
    shows the perf movement directly.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    payload = {
        "name": name,
        "created_unix": int(time.time()),
        "cpu_count": os.cpu_count() or 1,
        "config": config,
        "results": results,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
