"""Shared helpers for the performance benchmarks.

Every ``bench_*.py`` that measures throughput writes a machine-readable
``BENCH_<name>.json`` next to the human-readable output so the perf
trajectory can be tracked across PRs (and uploaded as a CI artifact):

* ``name`` / ``created_unix`` identify the measurement;
* ``host`` stamps the machine the numbers came from (core count,
  platform, python/numpy versions) so trajectories are comparable
  across runners;
* ``config`` records the knobs the numbers depend on (geometry, writes,
  encoder settings);
* ``results`` holds the measured throughputs and speedups;
* ``metrics`` is the process's :mod:`repro.obs` registry snapshot at
  write time — wave counts, candidate evaluations, cache hits — so a
  perf regression arrives with an explanation attached.

The files land in ``benchmarks/results/`` like the figure outputs.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from typing import Any, Dict

import numpy as np

from repro import obs

__all__ = ["host_metadata", "write_bench_json", "RESULTS_DIR"]

#: Output directory shared with the figure benchmarks.
RESULTS_DIR = Path(__file__).resolve().parent / "results"


def host_metadata() -> Dict[str, Any]:
    """The host facts a benchmark number depends on."""
    return {
        "cpu_count": os.cpu_count() or 1,
        "platform": platform.platform(),
        "python_version": platform.python_version(),
        "numpy_version": np.__version__,
    }


def write_bench_json(
    name: str, config: Dict[str, Any], results: Dict[str, Any]
) -> Path:
    """Write ``BENCH_<name>.json`` and return its path.

    The payload is small and flat on purpose: one file per benchmark run,
    overwritten in place, so diffing two checkouts (or two CI artifacts)
    shows the perf movement directly.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    payload = {
        "name": name,
        "created_unix": int(time.time()),  # repro: allow[DET003,OBS001] reason=records when the benchmark ran; never feeds back into any measurement or result
        "cpu_count": os.cpu_count() or 1,
        "host": host_metadata(),
        "config": config,
        "results": results,
        "metrics": obs.metrics_snapshot(),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
