"""Ablation — kernel width / partition count of VCC.

Section V of the paper explores the VCC design space and reports that the
choice of kernel width made little difference (m = 16 vs m = 32) once the
total coset count is fixed.  This ablation sweeps the partition count p
(hence kernel width m = 64 / p) of a stored-kernel VCC encoder at a fixed
N = 256 virtual cosets and measures the dynamic-energy saving on encrypted
data: the saving should be broadly stable across the design space, which is
what gives the architect freedom to pick the cheapest hardware point.
"""

from typing import Any, Sequence

from conftest import TableRecorder, run_once

from repro.coding.cost import EnergyCost
from repro.coding.base import WordContext
from repro.core.config import EncodeRegion, VCCConfig
from repro.core.vcc import VCCEncoder
from repro.pcm.cell import CellTechnology
from repro.pcm.energy import MLCEnergyModel
from repro.sim.results import ResultTable
from repro.utils.bitops import random_word
from repro.utils.rng import make_rng


def _energy_saving(partitions: int, num_cosets: int = 256, words: int = 400) -> float:
    """Average per-word energy saving of VCC vs unencoded on random data."""
    model = MLCEnergyModel()
    config = VCCConfig(
        word_bits=64,
        kernel_bits=64 // partitions,
        num_kernels=max(1, num_cosets // (1 << partitions)),
        technology=CellTechnology.MLC,
        encode_region=EncodeRegion.FULL_WORD,
        stored_kernels=True,
    )
    encoder = VCCEncoder(config, cost_function=EnergyCost(CellTechnology.MLC, mlc_model=model), seed=3)
    rng = make_rng(99, f"ablation-m-{partitions}")
    baseline = 0.0
    encoded_energy = 0.0
    for _ in range(words):
        data = random_word(rng, 64)
        old = random_word(rng, 64)
        context = WordContext.from_word(old, 64, 2)
        encoded = encoder.encode(data, context)
        baseline += model.word_energy(old, data)
        encoded_energy += model.word_energy(old, encoded.codeword)
        encoded_energy += model.aux_energy(0, encoded.aux)
    return 100.0 * (baseline - encoded_energy) / baseline


def run(partition_counts: Sequence[int] = (2, 4, 8)) -> ResultTable:
    table = ResultTable(
        title="Ablation — VCC kernel width (N = 256 virtual cosets, random data)",
        columns=["partitions", "kernel_bits", "num_kernels", "energy_saving_percent"],
        notes="stored kernels over the full 64-bit word",
    )
    for partitions in partition_counts:
        table.append(
            partitions=partitions,
            kernel_bits=64 // partitions,
            num_kernels=max(1, 256 // (1 << partitions)),
            energy_saving_percent=_energy_saving(partitions),
        )
    return table


def test_ablation_kernel_width(benchmark: Any, record_table: TableRecorder) -> None:
    table = run_once(benchmark, run)
    record_table("ablation_kernel_width", table)

    savings = {row["partitions"]: row["energy_saving_percent"] for row in table}
    # Every design point saves a substantial amount of energy.
    assert all(s > 15.0 for s in savings.values())
    # The paper's observation: little difference between m = 16 (p = 4) and
    # m = 32 (p = 2) at a fixed virtual-coset count.
    assert abs(savings[2] - savings[4]) < 10.0
    # Collapsing to a single kernel (p = 8) costs noticeably more, which is
    # why the paper does not shrink the kernels further.
    assert savings[4] >= savings[8] - 1.0
