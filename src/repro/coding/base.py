"""Encoder and write-context interfaces shared by every technique.

All techniques in this repository — the baselines in :mod:`repro.coding`
and Virtual Coset Coding in :mod:`repro.core` — expose the same tiny
interface so the simulators can iterate over them uniformly:

* :class:`WordContext` describes what the memory controller knows about
  the target location at write time (the current cell values read back by
  the read-modify-write step and, when a fault-tracking mechanism is
  assumed, which of those cells are stuck);
* :class:`Encoder.encode` maps an n-bit data word plus its context to an
  :class:`EncodedWord` (codeword + auxiliary bits + achieved cost);
* :class:`Encoder.decode` recovers the original data from the codeword and
  auxiliary bits alone (faults aside, ``decode(encode(d)) == d``).

The memory controller's natural unit is the cache *line* (8 words of 64
bits), so the interface also exposes a line-granularity batch path:

* :class:`LineContext` stacks the per-word write-time knowledge of a whole
  line into ``(words, cells)`` matrices plus an auxiliary-bit vector;
* :class:`Encoder.encode_line` maps the line's words to an
  :class:`EncodedLine`; the base implementation is a scalar loop over
  :meth:`Encoder.encode`, so third-party encoders keep working unchanged,
  while every builtin technique overrides it with a vectorised
  implementation that evaluates all candidate×word cell costs in a single
  :meth:`repro.coding.cost.CostFunction.line_cell_costs` call;
* :class:`Encoder.decode_line` is the inverse batch operation.

Above the line level sits the multi-line batch path used by the memory
controller's wave-based replay engine:

* :meth:`Encoder.encode_lines` encodes a whole chunk of queued writes (one
  :class:`LineContext` per line) in one call; the base implementation is a
  scalar loop over :meth:`Encoder.encode_line` so third-party encoders keep
  working, while every builtin override evaluates the candidate×word costs
  of all lines through a single
  :meth:`repro.coding.cost.CostFunction.batch_line_cell_costs` kernel;
* :func:`stack_line_contexts` concatenates per-line contexts into one
  context covering every word of the batch, which is how per-word
  independent encoders reduce the multi-line problem to one big
  vectorised line.

Costs are evaluated through the :class:`repro.coding.cost.CostFunction`
interface at *cell* granularity, which lets the same encoder minimise
written '1's, bit changes, MLC write energy, stuck-at-wrong cells, or
lexicographic combinations of those.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

import repro.obs as obs
from repro.errors import ConfigurationError, EncodingError
from repro.pcm.array import cells_to_word, word_to_cells
from repro.pcm.cell import CellTechnology

# Lines encoded through the reference per-line loop instead of a builtin
# vectorised override — the replay engine's "fallback path taken" signal.
_OBS_FALLBACK_LINES = obs.counter(
    "encode.fallback_lines",
    "lines encoded by the reference encode_line loop (no batched override)",
)

__all__ = [
    "WordContext",
    "LineContext",
    "EncodedWord",
    "EncodedLine",
    "Encoder",
    "WordsMatrix",
    "stack_line_contexts",
    "words_to_cell_matrix",
    "words_matrix_to_cells",
    "cells_matrix_to_words",
]

#: Accepted shapes for a multi-line batch of data words: a
#: ``(lines, words_per_line)`` integer ndarray or per-line sequences.
WordsMatrix = Union[np.ndarray, Sequence[Sequence[int]]]


def words_to_cell_matrix(words: Sequence[int], word_bits: int, bits_per_cell: int) -> np.ndarray:
    """Convert candidate words to a ``(len(words), cells)`` cell-value matrix.

    Used by encoders to evaluate many candidate codewords against a cost
    function in one vectorised call.  Cell 0 holds the most significant
    bits of each word, matching :func:`repro.pcm.array.word_to_cells`.
    """
    cells = word_bits // bits_per_cell
    mask = (1 << bits_per_cell) - 1
    if word_bits <= 64:
        values = np.fromiter((int(w) for w in words), dtype=np.uint64, count=len(words))
        shifts = np.array(
            [bits_per_cell * (cells - 1 - index) for index in range(cells)], dtype=np.uint64
        )
        matrix = (values[:, None] >> shifts[None, :]) & np.uint64(mask)
        return matrix.astype(np.uint8)
    matrix = np.empty((len(words), cells), dtype=np.uint8)
    for row, word in enumerate(words):
        for index in range(cells):
            shift = bits_per_cell * (cells - 1 - index)
            matrix[row, index] = (word >> shift) & mask
    return matrix


def words_matrix_to_cells(words: np.ndarray, word_bits: int, bits_per_cell: int) -> np.ndarray:
    """Convert an n-D array of word values to cell values along a new last axis.

    The batched sibling of :func:`words_to_cell_matrix`: an input of shape
    ``(...,)`` becomes ``(..., cells)`` with cell 0 holding the most
    significant bits, matching :func:`repro.pcm.array.word_to_cells`.
    """
    cells = word_bits // bits_per_cell
    mask = (1 << bits_per_cell) - 1
    if word_bits <= 64:
        values = np.asarray(words, dtype=np.uint64)
        shifts = np.array(
            [bits_per_cell * (cells - 1 - index) for index in range(cells)], dtype=np.uint64
        )
        matrix = (values[..., None] >> shifts) & np.uint64(mask)
        return matrix.astype(np.uint8)
    values = np.asarray(words, dtype=object)
    out = np.empty(values.shape + (cells,), dtype=np.uint8)
    for position in np.ndindex(values.shape):
        out[position] = word_to_cells(int(values[position]), word_bits, bits_per_cell)
    return out


def cells_matrix_to_words(cells: np.ndarray, bits_per_cell: int) -> List[int]:
    """Convert a ``(words, cells)`` cell matrix back to a list of word ints.

    Inverse of :func:`words_matrix_to_cells` for the 2-D case; used by the
    memory controller's read path to recover all codewords of a row at once.
    """
    matrix = np.asarray(cells, dtype=np.uint64)
    if matrix.ndim != 2:
        raise ConfigurationError("cells_matrix_to_words expects a (words, cells) matrix")
    num_cells = matrix.shape[1]
    word_bits = num_cells * bits_per_cell
    if word_bits <= 64:
        shifts = np.array(
            [bits_per_cell * (num_cells - 1 - index) for index in range(num_cells)],
            dtype=np.uint64,
        )
        packed = (matrix << shifts).sum(axis=1, dtype=np.uint64)
        return [int(value) for value in packed]
    return [cells_to_word(row, bits_per_cell) for row in matrix]


@dataclass(frozen=True)
class WordContext:
    """Write-time knowledge about the target word location.

    Attributes
    ----------
    old_cells:
        Current cell values at the target location (read-modify-write).
        Length is ``word_bits // bits_per_cell``.
    stuck_mask:
        Optional boolean mask aligned with ``old_cells``; True marks cells
        that are stuck (their value cannot be changed).  A stuck cell's
        value is its entry in ``old_cells``.
    bits_per_cell:
        1 for SLC, 2 for MLC.
    old_aux:
        Previously stored auxiliary bits for this word (used to charge the
        energy of updating them).
    """

    old_cells: np.ndarray
    stuck_mask: Optional[np.ndarray] = None
    bits_per_cell: int = 2
    old_aux: int = 0

    def __post_init__(self) -> None:
        old = np.asarray(self.old_cells, dtype=np.uint8)
        object.__setattr__(self, "old_cells", old)
        if self.stuck_mask is not None:
            mask = np.asarray(self.stuck_mask, dtype=bool)
            if mask.shape != old.shape:
                raise ConfigurationError("stuck_mask must match old_cells shape")
            object.__setattr__(self, "stuck_mask", mask)
        if self.bits_per_cell not in (1, 2):
            raise ConfigurationError("bits_per_cell must be 1 (SLC) or 2 (MLC)")

    @property
    def word_bits(self) -> int:
        """Width of the word covered by this context, in bits."""
        return len(self.old_cells) * self.bits_per_cell

    @property
    def technology(self) -> CellTechnology:
        """Cell technology implied by ``bits_per_cell``."""
        return CellTechnology.SLC if self.bits_per_cell == 1 else CellTechnology.MLC

    @property
    def old_word(self) -> int:
        """The current contents of the location as a word integer."""
        word = 0
        for value in self.old_cells:
            word = (word << self.bits_per_cell) | int(value)
        return word

    @classmethod
    def blank(cls, word_bits: int = 64, bits_per_cell: int = 2) -> "WordContext":
        """Context for a location whose cells are all zero and fault-free."""
        cells = word_bits // bits_per_cell
        return cls(old_cells=np.zeros(cells, dtype=np.uint8), bits_per_cell=bits_per_cell)

    @classmethod
    def from_word(
        cls,
        old_word: int,
        word_bits: int = 64,
        bits_per_cell: int = 2,
        stuck_mask: Optional[np.ndarray] = None,
        old_aux: int = 0,
    ) -> "WordContext":
        """Build a context from the old word value."""
        cells = word_to_cells(old_word, word_bits, bits_per_cell)
        return cls(
            old_cells=cells,
            stuck_mask=stuck_mask,
            bits_per_cell=bits_per_cell,
            old_aux=old_aux,
        )


@dataclass(frozen=True)
class LineContext:
    """Write-time knowledge about a whole cache line, stacked per word.

    Attributes
    ----------
    old_cells:
        ``(words, cells_per_word)`` matrix of the current cell values at
        the target row (read-modify-write), one row per word.
    stuck_mask:
        Optional boolean matrix aligned with ``old_cells``; True marks
        cells that are stuck at their ``old_cells`` value.
    bits_per_cell:
        1 for SLC, 2 for MLC.
    old_auxes:
        ``(words,)`` vector of the previously stored auxiliary bits, used
        to charge the energy of updating them.  Defaults to all zeros.
    """

    old_cells: np.ndarray
    stuck_mask: Optional[np.ndarray] = None
    bits_per_cell: int = 2
    old_auxes: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        old = np.asarray(self.old_cells, dtype=np.uint8)
        if old.ndim != 2:
            raise ConfigurationError("old_cells must be a (words, cells) matrix")
        object.__setattr__(self, "old_cells", old)
        if self.stuck_mask is not None:
            mask = np.asarray(self.stuck_mask, dtype=bool)
            if mask.shape != old.shape:
                raise ConfigurationError("stuck_mask must match old_cells shape")
            object.__setattr__(self, "stuck_mask", mask)
        if self.bits_per_cell not in (1, 2):
            raise ConfigurationError("bits_per_cell must be 1 (SLC) or 2 (MLC)")
        if self.old_auxes is None:
            auxes = np.zeros(old.shape[0], dtype=np.int64)
        else:
            try:
                auxes = np.asarray(self.old_auxes, dtype=np.int64)
            except OverflowError:
                # Techniques with >= 64 auxiliary bits per word (e.g. FNW
                # over wide words) carry Python ints instead.
                auxes = np.array([int(a) for a in self.old_auxes], dtype=object)
            if auxes.shape != (old.shape[0],):
                raise ConfigurationError("old_auxes must hold one value per word")
            negative = (
                bool((auxes < 0).any())
                if auxes.dtype != object
                else any(int(a) < 0 for a in auxes)
            )
            if negative:
                raise ConfigurationError("auxiliary values must be non-negative")
        object.__setattr__(self, "old_auxes", auxes)

    @property
    def words_per_line(self) -> int:
        """Number of words covered by this context."""
        return self.old_cells.shape[0]

    @property
    def word_bits(self) -> int:
        """Width of each word covered by this context, in bits."""
        return self.old_cells.shape[1] * self.bits_per_cell

    @property
    def technology(self) -> CellTechnology:
        """Cell technology implied by ``bits_per_cell``."""
        return CellTechnology.SLC if self.bits_per_cell == 1 else CellTechnology.MLC

    def word_context(self, word_index: int) -> WordContext:
        """The scalar :class:`WordContext` of one word of the line."""
        if not 0 <= word_index < self.words_per_line:
            raise ConfigurationError(
                f"word index {word_index} out of range [0, {self.words_per_line})"
            )
        stuck = None if self.stuck_mask is None else self.stuck_mask[word_index]
        return WordContext(
            old_cells=self.old_cells[word_index],
            stuck_mask=stuck,
            bits_per_cell=self.bits_per_cell,
            old_aux=int(self.old_auxes[word_index]),
        )

    def split_partitions(self, partitions: int) -> "LineContext":
        """View each word as ``partitions`` contiguous sub-blocks.

        Returns a context of ``words * partitions`` shorter "words", which
        is how partition-based encoders (FNW, BCC, VCC) evaluate all
        sub-block candidates of a line in one batched cost call.  Auxiliary
        values do not map onto sub-blocks and are reset to zero.
        """
        words, cells = self.old_cells.shape
        if partitions <= 0 or cells % partitions != 0:
            raise ConfigurationError(
                f"cannot split {cells} cells into {partitions} partitions"
            )
        sub_cells = cells // partitions
        stuck = (
            None
            if self.stuck_mask is None
            else self.stuck_mask.reshape(words * partitions, sub_cells)
        )
        return LineContext(
            old_cells=self.old_cells.reshape(words * partitions, sub_cells),
            stuck_mask=stuck,
            bits_per_cell=self.bits_per_cell,
        )

    @classmethod
    def blank(
        cls, words_per_line: int = 8, word_bits: int = 64, bits_per_cell: int = 2
    ) -> "LineContext":
        """Context for a line whose cells are all zero and fault-free."""
        cells = word_bits // bits_per_cell
        return cls(
            old_cells=np.zeros((words_per_line, cells), dtype=np.uint8),
            bits_per_cell=bits_per_cell,
        )

    @classmethod
    def from_row(
        cls,
        row_cells: np.ndarray,
        words_per_line: int,
        bits_per_cell: int = 2,
        stuck_mask: Optional[np.ndarray] = None,
        old_auxes: Optional[np.ndarray] = None,
    ) -> "LineContext":
        """Build a context from a flat row of cells as stored in a PCM array."""
        row = np.asarray(row_cells, dtype=np.uint8)
        if row.ndim != 1 or row.size % words_per_line != 0:
            raise ConfigurationError(
                "row_cells must be a flat row divisible into words_per_line words"
            )
        stuck = (
            None
            if stuck_mask is None
            else np.asarray(stuck_mask, dtype=bool).reshape(words_per_line, -1)
        )
        return cls(
            old_cells=row.reshape(words_per_line, -1),
            stuck_mask=stuck,
            bits_per_cell=bits_per_cell,
            old_auxes=old_auxes,
        )

    @classmethod
    def from_rows(
        cls,
        rows_cells: np.ndarray,
        words_per_line: int,
        bits_per_cell: int = 2,
        stuck_masks: Optional[np.ndarray] = None,
        old_auxes: Optional[np.ndarray] = None,
        line_index: int = 0,
    ) -> "LineContext":
        """Build the context of one line from batched wave gathers.

        ``rows_cells`` (and the optional ``stuck_masks`` / ``old_auxes``)
        hold one entry per line of a wave — the result of a single
        :meth:`repro.pcm.array.PCMArray.read_rows` gather — and
        ``line_index`` selects the line this context describes.  Like
        :meth:`repro.pcm.array.PCMArray.write_row_fast`, this is the
        validation-free core for batch drivers: the gathered arrays already
        satisfy every ``__post_init__`` invariant (uint8 cell rows, aligned
        boolean masks, non-negative auxiliary values), so re-checking each
        line of every wave would only burn the time the batching saves.
        """
        row = rows_cells[line_index]
        context = object.__new__(cls)
        object.__setattr__(context, "old_cells", row.reshape(words_per_line, -1))
        object.__setattr__(
            context,
            "stuck_mask",
            None
            if stuck_masks is None
            else stuck_masks[line_index].reshape(words_per_line, -1),
        )
        object.__setattr__(context, "bits_per_cell", bits_per_cell)
        object.__setattr__(
            context,
            "old_auxes",
            np.zeros(words_per_line, dtype=np.int64)
            if old_auxes is None
            else old_auxes[line_index],
        )
        return context

    @classmethod
    def from_contexts(cls, contexts: Sequence[WordContext]) -> "LineContext":
        """Stack per-word contexts (all sharing a geometry) into a line context."""
        if not contexts:
            raise ConfigurationError("at least one word context is required")
        bits_per_cell = contexts[0].bits_per_cell
        if any(c.bits_per_cell != bits_per_cell for c in contexts):
            raise ConfigurationError("word contexts must share bits_per_cell")
        if any(c.old_cells.shape != contexts[0].old_cells.shape for c in contexts):
            raise ConfigurationError("word contexts must share the word geometry")
        stuck = None
        if any(c.stuck_mask is not None for c in contexts):
            stuck = np.stack(
                [
                    c.stuck_mask
                    if c.stuck_mask is not None
                    else np.zeros_like(c.old_cells, dtype=bool)
                    for c in contexts
                ]
            )
        return cls(
            old_cells=np.stack([c.old_cells for c in contexts]),
            stuck_mask=stuck,
            bits_per_cell=bits_per_cell,
            old_auxes=np.array([c.old_aux for c in contexts], dtype=np.int64),
        )


def stack_line_contexts(contexts: Sequence[LineContext]) -> LineContext:
    """Concatenate per-line contexts into one context over all their words.

    The stacked context views a batch of ``lines`` cache lines as a single
    ``lines * words_per_line``-word line, which is how per-word independent
    encoders (every builtin) evaluate the candidates of many queued writes
    in one vectorised kernel call: word ``w`` of line ``l`` becomes word
    ``l * words_per_line + w`` of the stacked context, and the per-word
    results are bit-identical to encoding each line separately.
    """
    if not contexts:
        raise ConfigurationError("at least one line context is required")
    if len(contexts) == 1:
        return contexts[0]
    first = contexts[0]
    if any(c.bits_per_cell != first.bits_per_cell for c in contexts):
        raise ConfigurationError("line contexts must share bits_per_cell")
    if any(c.old_cells.shape != first.old_cells.shape for c in contexts):
        raise ConfigurationError("line contexts must share the line geometry")
    stuck = None
    if any(c.stuck_mask is not None for c in contexts):
        stuck = np.concatenate(
            [
                c.stuck_mask
                if c.stuck_mask is not None
                else np.zeros_like(c.old_cells, dtype=bool)
                for c in contexts
            ]
        )
    return LineContext(
        old_cells=np.concatenate([c.old_cells for c in contexts]),
        stuck_mask=stuck,
        bits_per_cell=first.bits_per_cell,
        old_auxes=np.concatenate([np.asarray(c.old_auxes) for c in contexts]),
    )


@dataclass(frozen=True)
class EncodedWord:
    """Result of encoding one data word.

    Attributes
    ----------
    codeword:
        The n-bit value to store in the data cells.
    aux:
        Value of the auxiliary bits (coset / inversion selector).
    aux_bits:
        Number of auxiliary bits used by the technique.
    cost:
        Cost of the selected candidate under the cost function used at
        encode time (includes the auxiliary-bit cost).
    technique:
        Name of the encoder that produced this word.
    """

    codeword: int
    aux: int
    aux_bits: int
    cost: float
    technique: str

    def __post_init__(self) -> None:
        _validate_aux(self.aux, self.aux_bits)


def _validate_aux(aux: int, aux_bits: int) -> None:
    """Reject auxiliary values that do not fit in ``aux_bits`` bits.

    In particular ``aux_bits == 0`` admits only ``aux == 0``: a technique
    that stores no auxiliary bits cannot smuggle information through them.
    """
    if aux_bits < 0:
        raise ConfigurationError("aux_bits must be non-negative")
    if aux < 0 or aux >= (1 << aux_bits):
        raise ConfigurationError(
            f"aux value {aux} does not fit in {aux_bits} bits"
        )


@dataclass(frozen=True)
class EncodedLine:
    """Result of encoding one cache line (a batch of words).

    Attributes
    ----------
    codewords:
        Per-word values to store in the data cells, in line order.
    auxes:
        Per-word auxiliary values (coset / inversion selectors).
    aux_bits:
        Number of auxiliary bits per word used by the technique.
    costs:
        Per-word cost of the selected candidates under the cost function
        used at encode time (each includes its auxiliary-bit cost).
    technique:
        Name of the encoder that produced this line.
    """

    codewords: Tuple[int, ...]
    auxes: Tuple[int, ...]
    aux_bits: int
    costs: Tuple[float, ...]
    technique: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "codewords", tuple(map(int, self.codewords)))
        object.__setattr__(self, "auxes", tuple(map(int, self.auxes)))
        object.__setattr__(self, "costs", tuple(map(float, self.costs)))
        if not (len(self.codewords) == len(self.auxes) == len(self.costs)):
            raise ConfigurationError(
                "codewords, auxes, and costs must have one entry per word"
            )
        if not self.codewords:
            raise ConfigurationError("an encoded line must hold at least one word")
        if self.aux_bits < 0:
            raise ConfigurationError("aux_bits must be non-negative")
        limit = 1 << self.aux_bits
        for aux in self.auxes:
            if aux < 0 or aux >= limit:
                raise ConfigurationError(
                    f"aux value {aux} does not fit in {self.aux_bits} bits"
                )

    @property
    def words_per_line(self) -> int:
        """Number of words in the line."""
        return len(self.codewords)

    @property
    def cost(self) -> float:
        """Total cost of the line (sum of the per-word costs)."""
        return float(sum(self.costs))

    def word(self, word_index: int) -> EncodedWord:
        """The :class:`EncodedWord` view of one word of the line."""
        return EncodedWord(
            codeword=self.codewords[word_index],
            aux=self.auxes[word_index],
            aux_bits=self.aux_bits,
            cost=self.costs[word_index],
            technique=self.technique,
        )

    @classmethod
    def from_words(cls, words: Sequence[EncodedWord]) -> "EncodedLine":
        """Gather per-word encode results into a line result."""
        if not words:
            raise ConfigurationError("an encoded line must hold at least one word")
        return cls(
            codewords=tuple(w.codeword for w in words),
            auxes=tuple(w.aux for w in words),
            aux_bits=words[0].aux_bits,
            costs=tuple(w.cost for w in words),
            technique=words[0].technique,
        )


class Encoder(abc.ABC):
    """Common interface of every write-encoding technique.

    Concrete encoders are constructed with a word width, a cell technology,
    and a :class:`repro.coding.cost.CostFunction`; ``encode`` then selects
    the candidate codeword minimising that cost for each write.
    """

    #: Human-readable technique name (overridden by subclasses).
    name: str = "encoder"

    #: True when the encoder always stores the data word unchanged with no
    #: auxiliary bits, regardless of context (the unencoded baseline).
    #: Batch drivers use this to skip the per-write encode call entirely —
    #: the stored values and every accounting number are unaffected.
    is_identity: bool = False

    def __init__(self, word_bits: int, technology: CellTechnology, cost_function) -> None:
        if word_bits <= 0:
            raise ConfigurationError("word_bits must be positive")
        if word_bits % technology.bits_per_cell != 0:
            raise ConfigurationError("word_bits must hold an integer number of cells")
        self.word_bits = word_bits
        self.technology = technology
        self.bits_per_cell = technology.bits_per_cell
        self.cells_per_word = word_bits // self.bits_per_cell
        self.cost_function = cost_function

    # ------------------------------------------------------------ interface
    @property
    @abc.abstractmethod
    def aux_bits(self) -> int:
        """Number of auxiliary bits stored alongside each codeword."""

    @abc.abstractmethod
    def encode(self, data: int, context: WordContext) -> EncodedWord:
        """Encode ``data`` for the location described by ``context``."""

    @abc.abstractmethod
    def decode(self, codeword: int, aux: int) -> int:
        """Recover the original data from ``codeword`` and its aux bits."""

    # ---------------------------------------------------------- line batch
    def encode_line(self, words: Sequence[int], context: LineContext) -> EncodedLine:
        """Encode a whole cache line for the row described by ``context``.

        The base implementation is the reference scalar loop over
        :meth:`encode` (see :meth:`encode_line_scalar`), so any third-party
        encoder that only implements the word-level interface works
        unchanged.  Builtin techniques override this with vectorised
        implementations that evaluate every candidate×word cell cost in a
        single :meth:`repro.coding.cost.CostFunction.line_cell_costs` call.
        """
        return self.encode_line_scalar(words, context)

    def encode_line_scalar(self, words: Sequence[int], context: LineContext) -> EncodedLine:
        """Reference word-at-a-time implementation of :meth:`encode_line`.

        Kept callable on every encoder (including those with a vectorised
        ``encode_line``) so parity tests and benchmarks can compare the two
        paths directly.
        """
        self._check_line_context(context, len(words))
        return EncodedLine.from_words(
            [
                self.encode(int(word), context.word_context(index))
                for index, word in enumerate(words)
            ]
        )

    def decode_line(self, codewords: Sequence[int], auxes: Sequence[int]) -> List[int]:
        """Recover the line's data words from codewords and auxiliary bits."""
        codewords = list(codewords)
        auxes = list(auxes)
        if len(codewords) != len(auxes):
            raise EncodingError("decode_line needs one aux value per codeword")
        return [self.decode(int(c), int(a)) for c, a in zip(codewords, auxes)]

    # ----------------------------------------------------- multi-line batch
    def encode_lines(
        self, words_matrix: WordsMatrix, contexts: Sequence[LineContext]
    ) -> List[EncodedLine]:
        """Encode a chunk of queued line writes, one context per line.

        ``words_matrix`` is a ``(lines, words_per_line)`` matrix of data
        words (an integer ndarray or a sequence of per-line sequences) and
        ``contexts[l]`` describes the target row of line ``l``.  The base
        implementation is the reference loop over :meth:`encode_line`, so
        any third-party encoder works on the multi-line path unchanged;
        every builtin technique overrides it so one
        :meth:`repro.coding.cost.CostFunction.batch_line_cell_costs` call
        evaluates the candidate×word costs of the whole chunk.  Results are
        bit-identical to encoding each line separately — the memory
        controller's replay waves rely on that contract.
        """
        rows = self._line_batch_rows(words_matrix, contexts)
        _OBS_FALLBACK_LINES.inc(len(contexts))
        return [
            self.encode_line(words, context)
            for words, context in zip(rows, contexts)
        ]

    # ------------------------------------------------------------- helpers
    def _check_data(self, data: int) -> None:
        if data < 0 or data >= (1 << self.word_bits):
            raise EncodingError(
                f"data word {data:#x} does not fit in {self.word_bits} bits"
            )

    def _check_context(self, context: WordContext) -> None:
        if context.word_bits != self.word_bits or context.bits_per_cell != self.bits_per_cell:
            raise EncodingError(
                "context geometry does not match the encoder "
                f"(context: {context.word_bits} bits / {context.bits_per_cell} bpc, "
                f"encoder: {self.word_bits} bits / {self.bits_per_cell} bpc)"
            )

    def _check_line_context(self, context: LineContext, num_words: int) -> None:
        if context.word_bits != self.word_bits or context.bits_per_cell != self.bits_per_cell:
            raise EncodingError(
                "line context geometry does not match the encoder "
                f"(context: {context.word_bits} bits / {context.bits_per_cell} bpc, "
                f"encoder: {self.word_bits} bits / {self.bits_per_cell} bpc)"
            )
        if context.words_per_line != num_words:
            raise EncodingError(
                f"line context covers {context.words_per_line} words, "
                f"but {num_words} words were supplied"
            )

    def _line_batch_rows(
        self, words_matrix: WordsMatrix, contexts: Sequence[LineContext]
    ) -> List[List[int]]:
        """Normalise a multi-line word matrix to per-line Python-int lists."""
        if isinstance(words_matrix, np.ndarray) and words_matrix.ndim != 2:
            raise EncodingError(
                "encode_lines expects a (lines, words_per_line) word matrix"
            )
        rows = [[int(word) for word in row] for row in words_matrix]
        if not rows:
            raise EncodingError("encode_lines needs at least one line")
        if len(rows) != len(contexts):
            raise EncodingError(
                f"encode_lines got {len(rows)} lines but {len(contexts)} contexts"
            )
        return rows

    def _check_lines_batch(self, values: np.ndarray, contexts: Sequence[LineContext]) -> None:
        """Validate a uint64 ``(lines, words)`` batch against its contexts."""
        if values.ndim != 2 or values.size == 0:
            raise EncodingError(
                "encode_lines expects a non-empty (lines, words_per_line) word matrix"
            )
        if len(contexts) != values.shape[0]:
            raise EncodingError(
                f"encode_lines got {values.shape[0]} lines but {len(contexts)} contexts"
            )
        if self.word_bits < 64 and bool((values >> np.uint64(self.word_bits)).any()):
            bad = values[(values >> np.uint64(self.word_bits)) != 0].flat[0]
            raise EncodingError(
                f"data word {int(bad):#x} does not fit in {self.word_bits} bits"
            )
        for context in contexts:
            self._check_line_context(context, values.shape[1])

    def _select_best(self, candidates, auxes, context: WordContext) -> EncodedWord:
        """Pick the lowest-cost candidate from parallel candidate/aux lists."""
        if len(candidates) != len(auxes) or not candidates:
            raise EncodingError("candidate and aux lists must be non-empty and equal length")
        matrix = words_to_cell_matrix(candidates, self.word_bits, self.bits_per_cell)
        cell_costs = self.cost_function.cell_costs_matrix(matrix, context)
        totals = cell_costs.sum(axis=1)
        totals = totals + np.array(
            [
                self.cost_function.aux_cost(aux, context.old_aux, self.aux_bits)
                for aux in auxes
            ]
        )
        best = int(np.argmin(totals))
        return EncodedWord(
            codeword=int(candidates[best]),
            aux=int(auxes[best]),
            aux_bits=self.aux_bits,
            cost=float(totals[best]),
            technique=self.name,
        )

    def _select_best_line(
        self, candidates, auxes, context: LineContext, cells: Optional[np.ndarray] = None
    ) -> EncodedLine:
        """Vectorised per-word argmin over a ``(candidates, words)`` batch.

        Parameters
        ----------
        candidates:
            ``(num_candidates, words)`` array of candidate codeword values
            (every word is offered the same number of candidates).
        auxes:
            Either a ``(num_candidates,)`` vector shared by all words or a
            ``(num_candidates, words)`` matrix of auxiliary values.
        context:
            The line context; ``old_auxes`` is charged per word.
        cells:
            Optional precomputed ``(num_candidates, words, cells)`` cell
            matrix of the candidates, for encoders that can derive it more
            cheaply than the generic word-to-cell conversion.
        """
        cand = np.asarray(candidates, dtype=np.uint64)
        if cand.ndim != 2 or cand.size == 0:
            raise EncodingError("candidates must form a non-empty (candidates, words) matrix")
        aux = np.asarray(auxes, dtype=np.int64)
        if aux.ndim == 1:
            aux = np.broadcast_to(aux[:, None], cand.shape)
        if aux.shape != cand.shape:
            raise EncodingError("aux values must align with the candidate matrix")
        if cells is None:
            cells = words_matrix_to_cells(cand, self.word_bits, self.bits_per_cell)
        data_costs = self.cost_function.line_cell_costs(cells, context).sum(axis=2)
        aux_costs = self.cost_function.aux_costs_matrix(aux, context.old_auxes, self.aux_bits)
        totals = data_costs + aux_costs
        best = np.argmin(totals, axis=0)
        word_index = np.arange(cand.shape[1])
        return EncodedLine(
            codewords=tuple(int(c) for c in cand[best, word_index]),
            auxes=tuple(int(a) for a in aux[best, word_index]),
            aux_bits=self.aux_bits,
            costs=tuple(float(t) for t in totals[best, word_index]),
            technique=self.name,
        )

    def _select_best_lines(
        self,
        candidates: np.ndarray,
        auxes: np.ndarray,
        contexts: Sequence[LineContext],
        cells: Optional[np.ndarray] = None,
        data_costs: Optional[np.ndarray] = None,
    ) -> List[EncodedLine]:
        """Vectorised per-word argmin over a ``(lines, candidates, words)`` batch.

        The multi-line sibling of :meth:`_select_best_line`: one
        :meth:`repro.coding.cost.CostFunction.batch_line_cell_costs` call
        scores every candidate of every word of every line, and the
        selected codewords, auxiliary values, and costs are bit-identical
        to running :meth:`_select_best_line` per line.

        Parameters
        ----------
        candidates:
            ``(lines, num_candidates, words)`` candidate codeword values.
        auxes:
            ``(num_candidates,)`` auxiliary values shared by all words.
        contexts:
            One line context per line; ``old_auxes`` is charged per word.
        cells:
            Optional precomputed ``(lines, num_candidates, words, cells)``
            candidate cell values.
        data_costs:
            Optional precomputed ``(lines, num_candidates, words)`` data
            costs (e.g. RCC's transition-table gather), skipping the cell
            evaluation entirely.
        """
        cand = np.asarray(candidates, dtype=np.uint64)
        if cand.ndim != 3 or cand.size == 0:
            raise EncodingError(
                "candidates must form a non-empty (lines, candidates, words) batch"
            )
        lines, num_candidates, words = cand.shape
        aux = np.asarray(auxes, dtype=np.int64)
        if aux.shape != (num_candidates,):
            raise EncodingError("aux values must align with the candidate axis")
        if data_costs is None:
            if cells is None:
                cells = words_matrix_to_cells(cand, self.word_bits, self.bits_per_cell)
            data_costs = self.cost_function.batch_line_cell_costs(cells, contexts).sum(axis=3)
        old_auxes = np.concatenate([np.asarray(c.old_auxes) for c in contexts])
        aux_costs = self.cost_function.aux_costs_matrix(
            np.broadcast_to(aux[:, None], (num_candidates, lines * words)),
            old_auxes,
            self.aux_bits,
        )
        totals = data_costs + aux_costs.reshape(num_candidates, lines, words).transpose(1, 0, 2)
        best = np.argmin(totals, axis=1)
        line_index = np.arange(lines)[:, None]
        word_index = np.arange(words)[None, :]
        codeword_rows = cand[line_index, best, word_index].tolist()
        aux_rows = aux[best].tolist()
        cost_rows = totals[line_index, best, word_index].tolist()
        return [
            EncodedLine(
                codewords=codeword_rows[line],
                auxes=aux_rows[line],
                aux_bits=self.aux_bits,
                costs=cost_rows[line],
                technique=self.name,
            )
            for line in range(lines)
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.__class__.__name__}(word_bits={self.word_bits}, "
            f"technology={self.technology.value}, aux_bits={self.aux_bits})"
        )
