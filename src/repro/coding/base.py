"""Encoder and write-context interfaces shared by every technique.

All techniques in this repository — the baselines in :mod:`repro.coding`
and Virtual Coset Coding in :mod:`repro.core` — expose the same tiny
interface so the simulators can iterate over them uniformly:

* :class:`WordContext` describes what the memory controller knows about
  the target location at write time (the current cell values read back by
  the read-modify-write step and, when a fault-tracking mechanism is
  assumed, which of those cells are stuck);
* :class:`Encoder.encode` maps an n-bit data word plus its context to an
  :class:`EncodedWord` (codeword + auxiliary bits + achieved cost);
* :class:`Encoder.decode` recovers the original data from the codeword and
  auxiliary bits alone (faults aside, ``decode(encode(d)) == d``).

Costs are evaluated through the :class:`repro.coding.cost.CostFunction`
interface at *cell* granularity, which lets the same encoder minimise
written '1's, bit changes, MLC write energy, stuck-at-wrong cells, or
lexicographic combinations of those.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, EncodingError
from repro.pcm.array import word_to_cells
from repro.pcm.cell import CellTechnology

__all__ = ["WordContext", "EncodedWord", "Encoder", "words_to_cell_matrix"]


def words_to_cell_matrix(words: Sequence[int], word_bits: int, bits_per_cell: int) -> np.ndarray:
    """Convert candidate words to a ``(len(words), cells)`` cell-value matrix.

    Used by encoders to evaluate many candidate codewords against a cost
    function in one vectorised call.  Cell 0 holds the most significant
    bits of each word, matching :func:`repro.pcm.array.word_to_cells`.
    """
    cells = word_bits // bits_per_cell
    mask = (1 << bits_per_cell) - 1
    if word_bits <= 64:
        values = np.fromiter((int(w) for w in words), dtype=np.uint64, count=len(words))
        shifts = np.array(
            [bits_per_cell * (cells - 1 - index) for index in range(cells)], dtype=np.uint64
        )
        matrix = (values[:, None] >> shifts[None, :]) & np.uint64(mask)
        return matrix.astype(np.uint8)
    matrix = np.empty((len(words), cells), dtype=np.uint8)
    for row, word in enumerate(words):
        for index in range(cells):
            shift = bits_per_cell * (cells - 1 - index)
            matrix[row, index] = (word >> shift) & mask
    return matrix


@dataclass(frozen=True)
class WordContext:
    """Write-time knowledge about the target word location.

    Attributes
    ----------
    old_cells:
        Current cell values at the target location (read-modify-write).
        Length is ``word_bits // bits_per_cell``.
    stuck_mask:
        Optional boolean mask aligned with ``old_cells``; True marks cells
        that are stuck (their value cannot be changed).  A stuck cell's
        value is its entry in ``old_cells``.
    bits_per_cell:
        1 for SLC, 2 for MLC.
    old_aux:
        Previously stored auxiliary bits for this word (used to charge the
        energy of updating them).
    """

    old_cells: np.ndarray
    stuck_mask: Optional[np.ndarray] = None
    bits_per_cell: int = 2
    old_aux: int = 0

    def __post_init__(self) -> None:
        old = np.asarray(self.old_cells, dtype=np.uint8)
        object.__setattr__(self, "old_cells", old)
        if self.stuck_mask is not None:
            mask = np.asarray(self.stuck_mask, dtype=bool)
            if mask.shape != old.shape:
                raise ConfigurationError("stuck_mask must match old_cells shape")
            object.__setattr__(self, "stuck_mask", mask)
        if self.bits_per_cell not in (1, 2):
            raise ConfigurationError("bits_per_cell must be 1 (SLC) or 2 (MLC)")

    @property
    def word_bits(self) -> int:
        """Width of the word covered by this context, in bits."""
        return len(self.old_cells) * self.bits_per_cell

    @property
    def technology(self) -> CellTechnology:
        """Cell technology implied by ``bits_per_cell``."""
        return CellTechnology.SLC if self.bits_per_cell == 1 else CellTechnology.MLC

    @property
    def old_word(self) -> int:
        """The current contents of the location as a word integer."""
        word = 0
        for value in self.old_cells:
            word = (word << self.bits_per_cell) | int(value)
        return word

    @classmethod
    def blank(cls, word_bits: int = 64, bits_per_cell: int = 2) -> "WordContext":
        """Context for a location whose cells are all zero and fault-free."""
        cells = word_bits // bits_per_cell
        return cls(old_cells=np.zeros(cells, dtype=np.uint8), bits_per_cell=bits_per_cell)

    @classmethod
    def from_word(
        cls,
        old_word: int,
        word_bits: int = 64,
        bits_per_cell: int = 2,
        stuck_mask: Optional[np.ndarray] = None,
        old_aux: int = 0,
    ) -> "WordContext":
        """Build a context from the old word value."""
        cells = word_to_cells(old_word, word_bits, bits_per_cell)
        return cls(
            old_cells=cells,
            stuck_mask=stuck_mask,
            bits_per_cell=bits_per_cell,
            old_aux=old_aux,
        )


@dataclass(frozen=True)
class EncodedWord:
    """Result of encoding one data word.

    Attributes
    ----------
    codeword:
        The n-bit value to store in the data cells.
    aux:
        Value of the auxiliary bits (coset / inversion selector).
    aux_bits:
        Number of auxiliary bits used by the technique.
    cost:
        Cost of the selected candidate under the cost function used at
        encode time (includes the auxiliary-bit cost).
    technique:
        Name of the encoder that produced this word.
    """

    codeword: int
    aux: int
    aux_bits: int
    cost: float
    technique: str

    def __post_init__(self) -> None:
        if self.aux_bits < 0:
            raise ConfigurationError("aux_bits must be non-negative")
        if self.aux < 0 or (self.aux_bits < 64 and self.aux >= (1 << max(self.aux_bits, 1)) and self.aux != 0):
            raise ConfigurationError(
                f"aux value {self.aux} does not fit in {self.aux_bits} bits"
            )


class Encoder(abc.ABC):
    """Common interface of every write-encoding technique.

    Concrete encoders are constructed with a word width, a cell technology,
    and a :class:`repro.coding.cost.CostFunction`; ``encode`` then selects
    the candidate codeword minimising that cost for each write.
    """

    #: Human-readable technique name (overridden by subclasses).
    name: str = "encoder"

    def __init__(self, word_bits: int, technology: CellTechnology, cost_function) -> None:
        if word_bits <= 0:
            raise ConfigurationError("word_bits must be positive")
        if word_bits % technology.bits_per_cell != 0:
            raise ConfigurationError("word_bits must hold an integer number of cells")
        self.word_bits = word_bits
        self.technology = technology
        self.bits_per_cell = technology.bits_per_cell
        self.cells_per_word = word_bits // self.bits_per_cell
        self.cost_function = cost_function

    # ------------------------------------------------------------ interface
    @property
    @abc.abstractmethod
    def aux_bits(self) -> int:
        """Number of auxiliary bits stored alongside each codeword."""

    @abc.abstractmethod
    def encode(self, data: int, context: WordContext) -> EncodedWord:
        """Encode ``data`` for the location described by ``context``."""

    @abc.abstractmethod
    def decode(self, codeword: int, aux: int) -> int:
        """Recover the original data from ``codeword`` and its aux bits."""

    # ------------------------------------------------------------- helpers
    def _check_data(self, data: int) -> None:
        if data < 0 or data >= (1 << self.word_bits):
            raise EncodingError(
                f"data word {data:#x} does not fit in {self.word_bits} bits"
            )

    def _check_context(self, context: WordContext) -> None:
        if context.word_bits != self.word_bits or context.bits_per_cell != self.bits_per_cell:
            raise EncodingError(
                "context geometry does not match the encoder "
                f"(context: {context.word_bits} bits / {context.bits_per_cell} bpc, "
                f"encoder: {self.word_bits} bits / {self.bits_per_cell} bpc)"
            )

    def _select_best(self, candidates, auxes, context: WordContext) -> EncodedWord:
        """Pick the lowest-cost candidate from parallel candidate/aux lists."""
        if len(candidates) != len(auxes) or not candidates:
            raise EncodingError("candidate and aux lists must be non-empty and equal length")
        matrix = words_to_cell_matrix(candidates, self.word_bits, self.bits_per_cell)
        cell_costs = self.cost_function.cell_costs_matrix(matrix, context)
        totals = cell_costs.sum(axis=1)
        totals = totals + np.array(
            [
                self.cost_function.aux_cost(aux, context.old_aux, self.aux_bits)
                for aux in auxes
            ]
        )
        best = int(np.argmin(totals))
        return EncodedWord(
            codeword=int(candidates[best]),
            aux=int(auxes[best]),
            aux_bits=self.aux_bits,
            cost=float(totals[best]),
            technique=self.name,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.__class__.__name__}(word_bits={self.word_bits}, "
            f"technology={self.technology.value}, aux_bits={self.aux_bits})"
        )
