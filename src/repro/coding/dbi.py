"""Data Block Inversion (DBI).

DBI writes either the data block or its bitwise complement, whichever is
cheaper, and records the choice in a single auxiliary bit.  It is the
single-partition special case of Flip-N-Write and is implemented as such.
"""

from __future__ import annotations

from repro.coding.cost import CostFunction
from repro.coding.fnw import FNWEncoder
from repro.coding.registry import register_encoder
from repro.pcm.cell import CellTechnology

__all__ = ["DBIEncoder"]


@register_encoder(
    "dbi",
    description="Data Block Inversion: whole-word conditional inversion (1 aux bit)",
    params=("word_bits", "technology", "cost_function"),
)
class DBIEncoder(FNWEncoder):
    """Whole-block conditional inversion (1 auxiliary bit per word).

    Inherits both batch paths from Flip-N-Write: the vectorised
    ``encode_line`` and the multi-line ``encode_lines`` used by the memory
    controller's replay waves.
    """

    name = "dbi"

    def __init__(
        self,
        word_bits: int = 64,
        technology: CellTechnology = CellTechnology.MLC,
        cost_function: CostFunction = None,
    ):
        super().__init__(
            word_bits=word_bits,
            partitions=1,
            technology=technology,
            cost_function=cost_function,
        )
