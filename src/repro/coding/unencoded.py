"""The unencoded baseline: data is written back exactly as received."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.coding.base import (
    EncodedLine,
    EncodedWord,
    Encoder,
    LineContext,
    WordContext,
    WordsMatrix,
    words_matrix_to_cells,
)
from repro.coding.cost import BitChangeCost, CostFunction
from repro.coding.registry import register_encoder
from repro.pcm.array import word_to_cells
from repro.pcm.cell import CellTechnology

__all__ = ["UnencodedEncoder"]


@register_encoder(
    "unencoded",
    description="Identity writeback, no auxiliary bits (the normalisation baseline)",
    params=("word_bits", "technology", "cost_function"),
)
class UnencodedEncoder(Encoder):
    """Identity encoding — the baseline every figure normalises against.

    The encoder still reports the cost of the write (under the configured
    cost function) so simulators can account energy and SAW cells uniformly
    across techniques, but it never transforms the data and needs no
    auxiliary bits.
    """

    name = "unencoded"
    is_identity = True

    def __init__(
        self,
        word_bits: int = 64,
        technology: CellTechnology = CellTechnology.MLC,
        cost_function: CostFunction = None,
    ):
        super().__init__(word_bits, technology, cost_function or BitChangeCost())

    @property
    def aux_bits(self) -> int:
        return 0

    def encode(self, data: int, context: WordContext) -> EncodedWord:
        self._check_data(data)
        self._check_context(context)
        cells = word_to_cells(data, self.word_bits, self.bits_per_cell)
        cost = self.cost_function.word_cost(cells, context)
        return EncodedWord(
            codeword=data, aux=0, aux_bits=0, cost=float(cost), technique=self.name
        )

    def encode_line(self, words: Sequence[int], context: LineContext) -> EncodedLine:
        words = [int(w) for w in words]
        for word in words:
            self._check_data(word)
        self._check_line_context(context, len(words))
        cells = words_matrix_to_cells([words], self.word_bits, self.bits_per_cell)
        costs = self.cost_function.line_cell_costs(cells, context)[0].sum(axis=1)
        return EncodedLine(
            codewords=tuple(words),
            auxes=(0,) * len(words),
            aux_bits=0,
            costs=tuple(float(c) for c in costs),
            technique=self.name,
        )

    def encode_lines(
        self, words_matrix: WordsMatrix, contexts: Sequence[LineContext]
    ) -> List[EncodedLine]:
        if self.word_bits > 64:
            return super().encode_lines(words_matrix, contexts)
        values = np.asarray(words_matrix, dtype=np.uint64)
        self._check_lines_batch(values, contexts)
        lines, words = values.shape
        # A single one-candidate batch kernel call reports the cost of
        # storing every line unchanged; there is nothing to select.
        cells = words_matrix_to_cells(
            values.reshape(lines, 1, words), self.word_bits, self.bits_per_cell
        )
        costs = self.cost_function.batch_line_cell_costs(cells, contexts)[:, 0].sum(axis=2)
        return [
            EncodedLine(
                codewords=tuple(int(w) for w in values[line]),
                auxes=(0,) * words,
                aux_bits=0,
                costs=tuple(float(c) for c in costs[line]),
                technique=self.name,
            )
            for line in range(lines)
        ]

    def decode(self, codeword: int, aux: int) -> int:
        del aux
        return codeword

    def decode_line(self, codewords: Sequence[int], auxes: Sequence[int]) -> List[int]:
        del auxes
        return [int(c) for c in codewords]
