"""The unencoded baseline: data is written back exactly as received."""

from __future__ import annotations

from repro.coding.base import EncodedWord, Encoder, WordContext
from repro.coding.cost import BitChangeCost, CostFunction
from repro.pcm.array import word_to_cells
from repro.pcm.cell import CellTechnology

__all__ = ["UnencodedEncoder"]


class UnencodedEncoder(Encoder):
    """Identity encoding — the baseline every figure normalises against.

    The encoder still reports the cost of the write (under the configured
    cost function) so simulators can account energy and SAW cells uniformly
    across techniques, but it never transforms the data and needs no
    auxiliary bits.
    """

    name = "unencoded"

    def __init__(
        self,
        word_bits: int = 64,
        technology: CellTechnology = CellTechnology.MLC,
        cost_function: CostFunction = None,
    ):
        super().__init__(word_bits, technology, cost_function or BitChangeCost())

    @property
    def aux_bits(self) -> int:
        return 0

    def encode(self, data: int, context: WordContext) -> EncodedWord:
        self._check_data(data)
        self._check_context(context)
        cells = word_to_cells(data, self.word_bits, self.bits_per_cell)
        cost = self.cost_function.word_cost(cells, context)
        return EncodedWord(
            codeword=data, aux=0, aux_bits=0, cost=float(cost), technique=self.name
        )

    def decode(self, codeword: int, aux: int) -> int:
        del aux
        return codeword
