"""Data-encoding techniques evaluated by the paper.

The package defines the encoder and cost-function interfaces shared by the
whole repository (:mod:`repro.coding.base`, :mod:`repro.coding.cost`) and
implements every baseline technique the paper compares against:

* :class:`~repro.coding.unencoded.UnencodedEncoder` — writeback as-is;
* :class:`~repro.coding.dbi.DBIEncoder` — data block inversion;
* :class:`~repro.coding.fnw.FNWEncoder` — Flip-N-Write at configurable
  sub-block granularity;
* :class:`~repro.coding.flipcy.FlipcyEncoder` — identity / 1's complement /
  2's complement selection;
* :class:`~repro.coding.bcc.BCCEncoder` — biased coset coding (the
  analytical "BCC" of Section III);
* :class:`~repro.coding.rcc.RCCEncoder` — random coset coding with stored
  full-length random cosets.

The paper's own contribution, Virtual Coset Coding, lives in
:mod:`repro.core` and implements the same :class:`~repro.coding.base.Encoder`
interface so simulators can swap techniques freely.

Every technique registers itself with the decorator-driven plugin registry
(:func:`~repro.coding.registry.register_encoder`); simulators and external
code resolve techniques by short name through
:func:`~repro.coding.registry.make_encoder`.  The line-granularity batch
interface (:class:`~repro.coding.base.LineContext`,
:meth:`~repro.coding.base.Encoder.encode_line`) is the memory controller's
hot path; all builtins implement it with vectorised cost evaluation.
"""

from repro.coding.base import (
    EncodedLine,
    EncodedWord,
    Encoder,
    LineContext,
    WordContext,
    cells_matrix_to_words,
    words_matrix_to_cells,
    words_to_cell_matrix,
)
from repro.coding.cost import (
    BitChangeCost,
    CellChangeCost,
    CostFunction,
    EnergyCost,
    LexicographicCost,
    OnesCost,
    SawCost,
    energy_then_saw,
    saw_then_energy,
)
from repro.coding.unencoded import UnencodedEncoder
from repro.coding.dbi import DBIEncoder
from repro.coding.fnw import FNWEncoder
from repro.coding.flipcy import FlipcyEncoder
from repro.coding.bcc import BCCEncoder
from repro.coding.rcc import RCCEncoder
from repro.coding.registry import (
    EncoderPlugin,
    available_encoders,
    encoder_plugins,
    get_encoder_plugin,
    make_encoder,
    register_encoder,
    unregister_encoder,
)

__all__ = [
    "BCCEncoder",
    "BitChangeCost",
    "CellChangeCost",
    "CostFunction",
    "DBIEncoder",
    "EncodedLine",
    "EncodedWord",
    "Encoder",
    "EncoderPlugin",
    "EnergyCost",
    "FNWEncoder",
    "FlipcyEncoder",
    "LexicographicCost",
    "LineContext",
    "OnesCost",
    "RCCEncoder",
    "SawCost",
    "UnencodedEncoder",
    "WordContext",
    "available_encoders",
    "cells_matrix_to_words",
    "encoder_plugins",
    "energy_then_saw",
    "get_encoder_plugin",
    "make_encoder",
    "register_encoder",
    "saw_then_energy",
    "unregister_encoder",
    "words_matrix_to_cells",
    "words_to_cell_matrix",
]
