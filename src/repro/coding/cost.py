"""Cost functions used to select among candidate codewords.

Every encoder in this repository optimises a :class:`CostFunction`.  The
paper exercises several:

* minimising written '1's (:class:`OnesCost`, the running example of
  Fig. 3, relevant when the old contents are unknown or all-zero);
* minimising changed bits (:class:`BitChangeCost`) or changed cells
  (:class:`CellChangeCost`), the classic Flip-N-Write objective;
* minimising MLC/SLC write energy against the current cell contents
  (:class:`EnergyCost`, Table I);
* minimising stuck-at-wrong cells (:class:`SawCost`);
* lexicographic combinations — "optimise energy first, SAW second" and
  vice versa — via :class:`LexicographicCost` (Section VI-B).

Costs are evaluated per cell so the same function can score a whole word,
a 16-bit sub-block, or a batch of candidates at once.  Two batched entry
points exist above the word level:

* :meth:`CostFunction.line_cell_costs` scores a ``(candidates, words,
  cells)`` batch against one :class:`~repro.coding.base.LineContext` (one
  cache line);
* :meth:`CostFunction.batch_line_cell_costs` scores a ``(lines,
  candidates, words, cells)`` batch against one context *per line*, which
  is how :meth:`repro.coding.base.Encoder.encode_lines` evaluates the
  candidate×word costs of a whole chunk of queued writes in one kernel.

Every builtin cost is *cellwise* — the cost of a cell depends only on that
cell's new value and the write-time context of that cell — which admits an
evaluation trick the multi-line path leans on: build a tiny per-cell
transition table (:meth:`CostFunction.transition_tables`, one entry per
possible cell value) with a single elementwise pass, then score any number
of candidates with one gather.  The gathered values are bit-identical to
the elementwise pipeline because every table entry is produced by exactly
that pipeline.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence

import numpy as np

import repro.obs as obs
from repro.coding.base import LineContext, WordContext, stack_line_contexts
from repro.errors import ConfigurationError
from repro.pcm.cell import CellTechnology
from repro.pcm.energy import MLCEnergyModel, SLCEnergyModel, DEFAULT_MLC_ENERGY, DEFAULT_SLC_ENERGY
from repro.utils.bitops import popcount64_array

__all__ = [
    "CostFunction",
    "OnesCost",
    "BitChangeCost",
    "CellChangeCost",
    "EnergyCost",
    "SawCost",
    "LexicographicCost",
    "saw_then_energy",
    "energy_then_saw",
]

#: Popcount of every possible cell value (cells hold at most 2 bits).
_CELL_POPCOUNT = np.array([0, 1, 1, 2], dtype=np.float64)

#: Flattened per-(old, new) LUTs of popcount(old ^ new), indexed by
#: ``(old << bits_per_cell) | new``; used by the batched cost paths.
_XOR_POPCOUNT_FLAT = {
    1: np.array(
        [bin((i >> 1) ^ (i & 1)).count("1") for i in range(4)], dtype=np.float64
    ),
    2: np.array(
        [bin((i >> 2) ^ (i & 3)).count("1") for i in range(16)], dtype=np.float64
    ),
}


# Batched-kernel telemetry, bumped once per batch call (never per cell):
# how many candidate lines the cost kernels scored and which evaluation
# strategy scored them.
_OBS_CANDIDATES = obs.counter(
    "encode.candidates", "candidate lines scored by the batched cost kernels"
)
_OBS_KERNEL_GATHERS = obs.counter(
    "encode.kernel_gathers", "batch cost calls served by one transition-table gather"
)
_OBS_KERNEL_LINE_LOOPS = obs.counter(
    "encode.kernel_line_loops", "batch cost calls that fell back to the per-line loop"
)


def _gather_transition_costs(tables: np.ndarray, new_cells: np.ndarray) -> np.ndarray:
    """Score a ``(lines, candidates, words, cells)`` batch from cost tables.

    ``tables`` is the ``(lines, words, cells, levels)`` output of
    :meth:`CostFunction.transition_tables`; the result has the shape and
    dtype the per-line pipeline would produce, with every element gathered
    from the table instead of recomputed.
    """
    lines, words, cells, levels = tables.shape
    base = np.arange(lines * words * cells, dtype=np.intp).reshape(lines, 1, words, cells)
    base *= levels
    # A flat 1-D take hits numpy's fast contiguous-gather path.
    return np.take(tables.reshape(-1), (base + new_cells).ravel()).reshape(new_cells.shape)


class CostFunction(abc.ABC):
    """Scores candidate cell values against the write-time context."""

    #: Short name used in result tables.
    name: str = "cost"

    #: True when the cost of a cell depends only on that cell's new value
    #: and the context of that cell (old value, stuck flag) — i.e. not on
    #: the other cells of the candidate.  Enables the transition-table
    #: evaluation of :meth:`batch_line_cell_costs`.  Third-party subclasses
    #: inherit the conservative default and keep the per-line loop.
    cellwise: bool = False

    @abc.abstractmethod
    def cell_costs_matrix(self, new_cells: np.ndarray, context: WordContext) -> np.ndarray:
        """Per-cell costs for a batch of candidates.

        Parameters
        ----------
        new_cells:
            ``(num_candidates, num_cells)`` array of candidate cell values.
        context:
            The write-time context (old cell values, stuck mask).  Only the
            last ``num_cells`` entries of the context are used when the
            candidate covers a sub-block rather than a whole word; callers
            slice the context themselves via :meth:`slice_context`.
        """

    def cell_costs(self, new_cells: np.ndarray, context: WordContext) -> np.ndarray:
        """Per-cell costs for a single candidate (1-D convenience wrapper)."""
        new_cells = np.asarray(new_cells, dtype=np.uint8)
        return self.cell_costs_matrix(new_cells[None, :], context)[0]

    def word_cost(self, new_cells: np.ndarray, context: WordContext) -> float:
        """Total data-cell cost of a single candidate."""
        return float(self.cell_costs(new_cells, context).sum())

    def line_cell_costs(self, new_cells: np.ndarray, context: LineContext) -> np.ndarray:
        """Per-cell costs for a batch of candidates over a whole line.

        Parameters
        ----------
        new_cells:
            ``(num_candidates, num_words, num_cells)`` array of candidate
            cell values; every word of the line is offered the same number
            of candidates, each scored against that word's old cells.
        context:
            The line context (``(num_words, num_cells)`` old-cell and
            stuck matrices).

        Returns
        -------
        numpy.ndarray
            Costs of the same ``(num_candidates, num_words, num_cells)``
            shape.  The array must be freshly allocated (callers may
            accumulate into it in place) but may use any numeric dtype —
            e.g. :class:`SawCost` returns its boolean mismatch mask
            directly.  The default loops over the words of the line through
            :meth:`cell_costs_matrix`, so third-party cost functions work
            on the batched path unchanged; every builtin overrides it with
            a single broadcast evaluation.
        """
        new = np.asarray(new_cells, dtype=np.uint8)
        if new.ndim != 3:
            raise ConfigurationError(
                "line_cell_costs expects a (candidates, words, cells) array"
            )
        out = np.empty(new.shape, dtype=np.float64)
        for word_index in range(new.shape[1]):
            out[:, word_index, :] = self.cell_costs_matrix(
                new[:, word_index, :], context.word_context(word_index)
            )
        return out

    def batch_line_cell_costs(
        self, new_cells: np.ndarray, contexts: Sequence[LineContext]
    ) -> np.ndarray:
        """Per-cell costs for a batch of candidates over many lines at once.

        Parameters
        ----------
        new_cells:
            ``(lines, candidates, words, cells)`` array of candidate cell
            values; line ``l`` is scored against ``contexts[l]``.
        contexts:
            One :class:`~repro.coding.base.LineContext` per line, all
            sharing the line geometry.

        Returns
        -------
        numpy.ndarray
            Costs of the same 4-D shape, dtype-compatible with what
            :meth:`line_cell_costs` returns per line.  For cellwise cost
            functions the default evaluates one transition-table gather;
            otherwise it loops :meth:`line_cell_costs` per line, so
            third-party cost functions work on the multi-line path
            unchanged.
        """
        new = self._validate_batch(new_cells, contexts)
        tables = self.transition_tables(contexts)
        if tables is not None:
            _OBS_KERNEL_GATHERS.inc()
            return _gather_transition_costs(tables, new)
        _OBS_KERNEL_LINE_LOOPS.inc()
        out: Optional[np.ndarray] = None
        for index, context in enumerate(contexts):
            costs = self.line_cell_costs(new[index], context)
            if out is None:
                out = np.empty(new.shape, dtype=costs.dtype)
            out[index] = costs
        return out

    def transition_tables(self, contexts: Sequence[LineContext]) -> Optional[np.ndarray]:
        """Per-cell write-cost tables, or None for non-cellwise costs.

        Returns a ``(lines, words, cells, levels)`` array whose entry
        ``[l, w, c, v]`` is the cost of writing cell value ``v`` to cell
        ``c`` of word ``w`` of line ``l``.  Built with a single
        :meth:`line_cell_costs` call over the constant level planes, so
        every entry is bit-identical to the elementwise pipeline; encoders
        with structured candidates (e.g. RCC's XOR cosets) gather from the
        table instead of materialising every candidate cell.
        """
        if not self.cellwise:
            return None
        stacked = stack_line_contexts(list(contexts))
        levels = 1 << stacked.bits_per_cell
        total_words, cells = stacked.old_cells.shape
        planes = np.empty((levels, total_words, cells), dtype=np.uint8)
        for value in range(levels):
            planes[value] = value
        table = self.line_cell_costs(planes, stacked)
        lines = len(contexts)
        return np.ascontiguousarray(np.transpose(table, (1, 2, 0))).reshape(
            lines, total_words // lines, cells, levels
        )

    @staticmethod
    def _validate_batch(new_cells: np.ndarray, contexts: Sequence[LineContext]) -> np.ndarray:
        """Shared argument validation of :meth:`batch_line_cell_costs`."""
        new = np.asarray(new_cells, dtype=np.uint8)
        if new.ndim != 4 or new.shape[0] == 0:
            raise ConfigurationError(
                "batch_line_cell_costs expects a non-empty "
                "(lines, candidates, words, cells) array"
            )
        if len(contexts) != new.shape[0]:
            raise ConfigurationError(
                f"batch of {new.shape[0]} lines needs {new.shape[0]} contexts, "
                f"got {len(contexts)}"
            )
        # Every batched cost path (base kernel and subclass overrides)
        # validates here, so this is the one chokepoint that sees all
        # candidate-line evaluations.
        _OBS_CANDIDATES.inc(int(new.shape[0]) * int(new.shape[1]))
        return new

    def aux_cost(self, new_aux: int, old_aux: int, aux_bits: int) -> float:
        """Cost of storing the auxiliary bits.

        The default charges the Hamming weight of the auxiliary value,
        matching line 19 of Algorithm 1 (the paper's ones-minimisation
        example); subclasses override this to charge bit changes or energy.
        """
        del old_aux, aux_bits
        return float(bin(new_aux).count("1"))

    def aux_costs_matrix(
        self, new_auxes: np.ndarray, old_auxes: np.ndarray, aux_bits: int
    ) -> np.ndarray:
        """Auxiliary-bit costs for a ``(candidates, words)`` batch.

        ``old_auxes`` holds one previous value per word and broadcasts
        against the candidate axis.  The default loops over
        :meth:`aux_cost` so subclasses that only override the scalar hook
        stay correct; builtins override this with vectorised popcounts.
        """
        new = np.asarray(new_auxes, dtype=np.int64)
        old = np.broadcast_to(np.asarray(old_auxes, dtype=np.int64), new.shape[-1:])
        out = np.empty(new.shape, dtype=np.float64)
        for position in np.ndindex(new.shape):
            out[position] = self.aux_cost(int(new[position]), int(old[position[-1]]), aux_bits)
        return out

    @staticmethod
    def slice_context(context: WordContext, start: int, stop: int) -> WordContext:
        """Restrict a context to the cells ``[start, stop)`` of the word."""
        stuck = context.stuck_mask[start:stop] if context.stuck_mask is not None else None
        return WordContext(
            old_cells=context.old_cells[start:stop],
            stuck_mask=stuck,
            bits_per_cell=context.bits_per_cell,
            old_aux=context.old_aux,
        )


def _changed_aux_bits(new_auxes: np.ndarray, old_auxes: np.ndarray) -> np.ndarray:
    """Vectorised popcount of ``new ^ old`` over a (candidates, words) batch."""
    new = np.asarray(new_auxes, dtype=np.uint64)
    old = np.broadcast_to(np.asarray(old_auxes, dtype=np.uint64), new.shape[-1:])
    return popcount64_array(new ^ old).astype(np.float64)


def _stacked_old_cells(contexts: Sequence[LineContext]) -> np.ndarray:
    """``(lines, words, cells)`` stack of the contexts' old cell values."""
    return np.stack([context.old_cells for context in contexts])


class OnesCost(CostFunction):
    """Number of '1' bits written (the Fig. 3 objective)."""

    name = "ones"
    cellwise = True

    def cell_costs_matrix(self, new_cells: np.ndarray, context: WordContext) -> np.ndarray:
        new = np.asarray(new_cells, dtype=np.int64)
        return _CELL_POPCOUNT[new]

    def line_cell_costs(self, new_cells: np.ndarray, context: LineContext) -> np.ndarray:
        del context
        return _CELL_POPCOUNT[np.asarray(new_cells, dtype=np.int64)]

    def batch_line_cell_costs(
        self, new_cells: np.ndarray, contexts: Sequence[LineContext]
    ) -> np.ndarray:
        # Context-free: the popcount LUT applies directly to the 4-D batch.
        new = self._validate_batch(new_cells, contexts)
        return _CELL_POPCOUNT[new.astype(np.int64)]

    def aux_costs_matrix(
        self, new_auxes: np.ndarray, old_auxes: np.ndarray, aux_bits: int
    ) -> np.ndarray:
        del old_auxes, aux_bits
        return popcount64_array(np.asarray(new_auxes, dtype=np.uint64)).astype(np.float64)


class BitChangeCost(CostFunction):
    """Number of bits that differ from the current cell contents."""

    name = "bit-changes"
    cellwise = True

    def cell_costs_matrix(self, new_cells: np.ndarray, context: WordContext) -> np.ndarray:
        new = np.asarray(new_cells, dtype=np.int64)
        old = np.asarray(context.old_cells[-new.shape[1]:], dtype=np.int64)
        return _CELL_POPCOUNT[new ^ old[None, :]]

    def line_cell_costs(self, new_cells: np.ndarray, context: LineContext) -> np.ndarray:
        lut = _XOR_POPCOUNT_FLAT[context.bits_per_cell]
        old_scaled = context.old_cells.astype(np.intp) << context.bits_per_cell
        return lut[old_scaled[None, :, :] + np.asarray(new_cells)]

    def batch_line_cell_costs(
        self, new_cells: np.ndarray, contexts: Sequence[LineContext]
    ) -> np.ndarray:
        new = self._validate_batch(new_cells, contexts)
        lut = _XOR_POPCOUNT_FLAT[contexts[0].bits_per_cell]
        old_scaled = _stacked_old_cells(contexts).astype(np.intp) << contexts[0].bits_per_cell
        return lut[old_scaled[:, None, :, :] + new]

    def aux_cost(self, new_aux: int, old_aux: int, aux_bits: int) -> float:
        del aux_bits
        return float(bin(new_aux ^ old_aux).count("1"))

    def aux_costs_matrix(
        self, new_auxes: np.ndarray, old_auxes: np.ndarray, aux_bits: int
    ) -> np.ndarray:
        del aux_bits
        return _changed_aux_bits(new_auxes, old_auxes)


class CellChangeCost(CostFunction):
    """Number of cells (symbols) that must be reprogrammed."""

    name = "cell-changes"
    cellwise = True

    def cell_costs_matrix(self, new_cells: np.ndarray, context: WordContext) -> np.ndarray:
        new = np.asarray(new_cells, dtype=np.int64)
        old = np.asarray(context.old_cells[-new.shape[1]:], dtype=np.int64)
        return (new != old[None, :]).astype(np.float64)

    def line_cell_costs(self, new_cells: np.ndarray, context: LineContext) -> np.ndarray:
        # Boolean 0/1 costs, promoted on demand (see SawCost).
        return np.asarray(new_cells) != context.old_cells[None, :, :]

    def batch_line_cell_costs(
        self, new_cells: np.ndarray, contexts: Sequence[LineContext]
    ) -> np.ndarray:
        new = self._validate_batch(new_cells, contexts)
        return new != _stacked_old_cells(contexts)[:, None, :, :]

    def aux_cost(self, new_aux: int, old_aux: int, aux_bits: int) -> float:
        del aux_bits
        return float(bin(new_aux ^ old_aux).count("1"))

    def aux_costs_matrix(
        self, new_auxes: np.ndarray, old_auxes: np.ndarray, aux_bits: int
    ) -> np.ndarray:
        del aux_bits
        return _changed_aux_bits(new_auxes, old_auxes)


class EnergyCost(CostFunction):
    """Write energy of the transition from the current to the new cell values."""

    name = "energy"
    cellwise = True

    def __init__(
        self,
        technology: CellTechnology = CellTechnology.MLC,
        mlc_model: MLCEnergyModel = DEFAULT_MLC_ENERGY,
        slc_model: SLCEnergyModel = DEFAULT_SLC_ENERGY,
    ):
        self.technology = technology
        self.mlc_model = mlc_model
        self.slc_model = slc_model
        if technology is CellTechnology.MLC:
            self._lut = mlc_model.lut()
            self._aux_bit_energy = mlc_model.aux_bit_energy_pj
        else:
            self._lut = np.array(
                [
                    [0.0, slc_model.set_energy_pj],
                    [slc_model.reset_energy_pj, 0.0],
                ]
            )
            self._aux_bit_energy = slc_model.aux_bit_energy_pj
        # Flattened LUT for the batched path: a single uint8 gather index
        # (old << bits) | new is cheaper than two-array fancy indexing.
        self._levels = self._lut.shape[1]
        self._lut_flat = np.ascontiguousarray(self._lut.reshape(-1))

    def cell_costs_matrix(self, new_cells: np.ndarray, context: WordContext) -> np.ndarray:
        if context.bits_per_cell != self.technology.bits_per_cell:
            raise ConfigurationError(
                "EnergyCost technology does not match the context's cell technology"
            )
        new = np.asarray(new_cells, dtype=np.int64)
        old = np.asarray(context.old_cells[-new.shape[1]:], dtype=np.int64)
        return self._lut[old[None, :], new]

    def line_cell_costs(self, new_cells: np.ndarray, context: LineContext) -> np.ndarray:
        if context.bits_per_cell != self.technology.bits_per_cell:
            raise ConfigurationError(
                "EnergyCost technology does not match the context's cell technology"
            )
        # An intp gather index skips the int-conversion pass that fancy
        # indexing performs on small-integer index arrays.
        old_scaled = context.old_cells.astype(np.intp) * self._levels
        return self._lut_flat[old_scaled[None, :, :] + np.asarray(new_cells)]

    def batch_line_cell_costs(
        self, new_cells: np.ndarray, contexts: Sequence[LineContext]
    ) -> np.ndarray:
        new = self._validate_batch(new_cells, contexts)
        if contexts[0].bits_per_cell != self.technology.bits_per_cell:
            raise ConfigurationError(
                "EnergyCost technology does not match the context's cell technology"
            )
        old_scaled = _stacked_old_cells(contexts).astype(np.intp) * self._levels
        return self._lut_flat[old_scaled[:, None, :, :] + new]

    def aux_cost(self, new_aux: int, old_aux: int, aux_bits: int) -> float:
        del aux_bits
        changed = bin(new_aux ^ old_aux).count("1")
        return changed * self._aux_bit_energy

    def aux_costs_matrix(
        self, new_auxes: np.ndarray, old_auxes: np.ndarray, aux_bits: int
    ) -> np.ndarray:
        del aux_bits
        return _changed_aux_bits(new_auxes, old_auxes) * self._aux_bit_energy


class SawCost(CostFunction):
    """Number of stuck cells whose intended value differs from the stuck value.

    A location without fault information (``context.stuck_mask is None``)
    costs zero everywhere, so SAW-aware optimisation degrades gracefully to
    a no-op on healthy rows.
    """

    name = "saw"
    cellwise = True

    def cell_costs_matrix(self, new_cells: np.ndarray, context: WordContext) -> np.ndarray:
        new = np.asarray(new_cells, dtype=np.int64)
        if context.stuck_mask is None:
            return np.zeros(new.shape, dtype=np.float64)
        old = np.asarray(context.old_cells[-new.shape[1]:], dtype=np.int64)
        stuck = np.asarray(context.stuck_mask[-new.shape[1]:], dtype=bool)
        mismatch = (new != old[None, :]) & stuck[None, :]
        return mismatch.astype(np.float64)

    def line_cell_costs(self, new_cells: np.ndarray, context: LineContext) -> np.ndarray:
        new = np.asarray(new_cells)
        if context.stuck_mask is None:
            return np.zeros(new.shape, dtype=np.float64)
        # Returned as a boolean 0/1 cost array; summing and combining with
        # float costs promotes it without an explicit conversion pass.
        return (new != context.old_cells[None, :, :]) & context.stuck_mask[None, :, :]

    def batch_line_cell_costs(
        self, new_cells: np.ndarray, contexts: Sequence[LineContext]
    ) -> np.ndarray:
        new = self._validate_batch(new_cells, contexts)
        if all(context.stuck_mask is None for context in contexts):
            return np.zeros(new.shape, dtype=np.float64)
        stuck = np.stack(
            [
                context.stuck_mask
                if context.stuck_mask is not None
                else np.zeros_like(context.old_cells, dtype=bool)
                for context in contexts
            ]
        )
        return (new != _stacked_old_cells(contexts)[:, None, :, :]) & stuck[:, None, :, :]

    def aux_cost(self, new_aux: int, old_aux: int, aux_bits: int) -> float:
        del new_aux, old_aux, aux_bits
        return 0.0

    def aux_costs_matrix(
        self, new_auxes: np.ndarray, old_auxes: np.ndarray, aux_bits: int
    ) -> np.ndarray:
        del old_auxes, aux_bits
        return np.zeros(np.asarray(new_auxes).shape, dtype=np.float64)


class LexicographicCost(CostFunction):
    """Combine two cost functions lexicographically (primary, then secondary).

    The combination is realised as ``primary * scale + secondary`` with a
    ``scale`` chosen large enough that any difference in the primary
    objective dominates every achievable secondary cost.  The default scale
    of 1e6 comfortably exceeds the worst-case per-word energy or bit count.
    """

    def __init__(self, primary: CostFunction, secondary: CostFunction, scale: float = 1.0e6):
        if scale <= 0:
            raise ConfigurationError("scale must be positive")
        self.primary = primary
        self.secondary = secondary
        self.scale = scale
        self.name = f"{primary.name}>{secondary.name}"
        # The combination is cellwise exactly when both parts are, in which
        # case the multi-line path fuses primary and secondary into a
        # single transition-table gather.
        self.cellwise = primary.cellwise and secondary.cellwise

    def cell_costs_matrix(self, new_cells: np.ndarray, context: WordContext) -> np.ndarray:
        return (
            self.primary.cell_costs_matrix(new_cells, context) * self.scale
            + self.secondary.cell_costs_matrix(new_cells, context)
        )

    def line_cell_costs(self, new_cells: np.ndarray, context: LineContext) -> np.ndarray:
        # line_cell_costs returns a fresh array, so float64 primaries can
        # be scaled and accumulated in place without extra temporaries.
        primary = self.primary.line_cell_costs(new_cells, context)
        if primary.dtype == np.float64:
            primary *= self.scale
            out = primary
        else:
            out = primary * self.scale
        out += self.secondary.line_cell_costs(new_cells, context)
        return out

    def batch_line_cell_costs(
        self, new_cells: np.ndarray, contexts: Sequence[LineContext]
    ) -> np.ndarray:
        new = self._validate_batch(new_cells, contexts)
        tables = self.transition_tables(contexts)
        if tables is not None:
            # One fused gather replaces the scale-multiply-accumulate
            # pipeline: each table entry already holds primary * scale +
            # secondary for its (cell, value) pair.
            return _gather_transition_costs(tables, new)
        primary = self.primary.batch_line_cell_costs(new, contexts)
        if primary.dtype == np.float64:
            primary *= self.scale
            out = primary
        else:
            out = primary * self.scale
        out += self.secondary.batch_line_cell_costs(new, contexts)
        return out

    def aux_cost(self, new_aux: int, old_aux: int, aux_bits: int) -> float:
        return (
            self.primary.aux_cost(new_aux, old_aux, aux_bits) * self.scale
            + self.secondary.aux_cost(new_aux, old_aux, aux_bits)
        )

    def aux_costs_matrix(
        self, new_auxes: np.ndarray, old_auxes: np.ndarray, aux_bits: int
    ) -> np.ndarray:
        primary = self.primary.aux_costs_matrix(new_auxes, old_auxes, aux_bits)
        secondary = self.secondary.aux_costs_matrix(new_auxes, old_auxes, aux_bits)
        if not primary.any():
            # 0 * scale + x == x bit-for-bit, so an all-zero primary (e.g.
            # SawCost, which never charges auxiliary bits) short-circuits
            # the scale-multiply-accumulate over the candidate matrix.
            return secondary
        return primary * self.scale + secondary


def saw_then_energy(
    technology: CellTechnology = CellTechnology.MLC,
    mlc_model: MLCEnergyModel = DEFAULT_MLC_ENERGY,
    slc_model: SLCEnergyModel = DEFAULT_SLC_ENERGY,
) -> LexicographicCost:
    """The paper's "Opt. SAW" objective: SAW cells first, energy second."""
    return LexicographicCost(
        SawCost(), EnergyCost(technology, mlc_model=mlc_model, slc_model=slc_model)
    )


def energy_then_saw(
    technology: CellTechnology = CellTechnology.MLC,
    mlc_model: MLCEnergyModel = DEFAULT_MLC_ENERGY,
    slc_model: SLCEnergyModel = DEFAULT_SLC_ENERGY,
) -> LexicographicCost:
    """The paper's "Opt. Energy" objective: energy first, SAW cells second."""
    return LexicographicCost(
        EnergyCost(technology, mlc_model=mlc_model, slc_model=slc_model), SawCost()
    )
