"""Cost functions used to select among candidate codewords.

Every encoder in this repository optimises a :class:`CostFunction`.  The
paper exercises several:

* minimising written '1's (:class:`OnesCost`, the running example of
  Fig. 3, relevant when the old contents are unknown or all-zero);
* minimising changed bits (:class:`BitChangeCost`) or changed cells
  (:class:`CellChangeCost`), the classic Flip-N-Write objective;
* minimising MLC/SLC write energy against the current cell contents
  (:class:`EnergyCost`, Table I);
* minimising stuck-at-wrong cells (:class:`SawCost`);
* lexicographic combinations — "optimise energy first, SAW second" and
  vice versa — via :class:`LexicographicCost` (Section VI-B).

Costs are evaluated per cell so the same function can score a whole word,
a 16-bit sub-block, or a batch of candidates at once.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.coding.base import WordContext
from repro.errors import ConfigurationError
from repro.pcm.cell import CellTechnology
from repro.pcm.energy import MLCEnergyModel, SLCEnergyModel, DEFAULT_MLC_ENERGY, DEFAULT_SLC_ENERGY

__all__ = [
    "CostFunction",
    "OnesCost",
    "BitChangeCost",
    "CellChangeCost",
    "EnergyCost",
    "SawCost",
    "LexicographicCost",
    "saw_then_energy",
    "energy_then_saw",
]

#: Popcount of every possible cell value (cells hold at most 2 bits).
_CELL_POPCOUNT = np.array([0, 1, 1, 2], dtype=np.float64)


class CostFunction(abc.ABC):
    """Scores candidate cell values against the write-time context."""

    #: Short name used in result tables.
    name: str = "cost"

    @abc.abstractmethod
    def cell_costs_matrix(self, new_cells: np.ndarray, context: WordContext) -> np.ndarray:
        """Per-cell costs for a batch of candidates.

        Parameters
        ----------
        new_cells:
            ``(num_candidates, num_cells)`` array of candidate cell values.
        context:
            The write-time context (old cell values, stuck mask).  Only the
            last ``num_cells`` entries of the context are used when the
            candidate covers a sub-block rather than a whole word; callers
            slice the context themselves via :meth:`slice_context`.
        """

    def cell_costs(self, new_cells: np.ndarray, context: WordContext) -> np.ndarray:
        """Per-cell costs for a single candidate (1-D convenience wrapper)."""
        new_cells = np.asarray(new_cells, dtype=np.uint8)
        return self.cell_costs_matrix(new_cells[None, :], context)[0]

    def word_cost(self, new_cells: np.ndarray, context: WordContext) -> float:
        """Total data-cell cost of a single candidate."""
        return float(self.cell_costs(new_cells, context).sum())

    def aux_cost(self, new_aux: int, old_aux: int, aux_bits: int) -> float:
        """Cost of storing the auxiliary bits.

        The default charges the Hamming weight of the auxiliary value,
        matching line 19 of Algorithm 1 (the paper's ones-minimisation
        example); subclasses override this to charge bit changes or energy.
        """
        del old_aux, aux_bits
        return float(bin(new_aux).count("1"))

    @staticmethod
    def slice_context(context: WordContext, start: int, stop: int) -> WordContext:
        """Restrict a context to the cells ``[start, stop)`` of the word."""
        stuck = context.stuck_mask[start:stop] if context.stuck_mask is not None else None
        return WordContext(
            old_cells=context.old_cells[start:stop],
            stuck_mask=stuck,
            bits_per_cell=context.bits_per_cell,
            old_aux=context.old_aux,
        )


class OnesCost(CostFunction):
    """Number of '1' bits written (the Fig. 3 objective)."""

    name = "ones"

    def cell_costs_matrix(self, new_cells: np.ndarray, context: WordContext) -> np.ndarray:
        new = np.asarray(new_cells, dtype=np.int64)
        return _CELL_POPCOUNT[new]


class BitChangeCost(CostFunction):
    """Number of bits that differ from the current cell contents."""

    name = "bit-changes"

    def cell_costs_matrix(self, new_cells: np.ndarray, context: WordContext) -> np.ndarray:
        new = np.asarray(new_cells, dtype=np.int64)
        old = np.asarray(context.old_cells[-new.shape[1]:], dtype=np.int64)
        return _CELL_POPCOUNT[new ^ old[None, :]]

    def aux_cost(self, new_aux: int, old_aux: int, aux_bits: int) -> float:
        del aux_bits
        return float(bin(new_aux ^ old_aux).count("1"))


class CellChangeCost(CostFunction):
    """Number of cells (symbols) that must be reprogrammed."""

    name = "cell-changes"

    def cell_costs_matrix(self, new_cells: np.ndarray, context: WordContext) -> np.ndarray:
        new = np.asarray(new_cells, dtype=np.int64)
        old = np.asarray(context.old_cells[-new.shape[1]:], dtype=np.int64)
        return (new != old[None, :]).astype(np.float64)

    def aux_cost(self, new_aux: int, old_aux: int, aux_bits: int) -> float:
        del aux_bits
        return float(bin(new_aux ^ old_aux).count("1"))


class EnergyCost(CostFunction):
    """Write energy of the transition from the current to the new cell values."""

    name = "energy"

    def __init__(
        self,
        technology: CellTechnology = CellTechnology.MLC,
        mlc_model: MLCEnergyModel = DEFAULT_MLC_ENERGY,
        slc_model: SLCEnergyModel = DEFAULT_SLC_ENERGY,
    ):
        self.technology = technology
        self.mlc_model = mlc_model
        self.slc_model = slc_model
        if technology is CellTechnology.MLC:
            self._lut = mlc_model.lut()
            self._aux_bit_energy = mlc_model.aux_bit_energy_pj
        else:
            self._lut = np.array(
                [
                    [0.0, slc_model.set_energy_pj],
                    [slc_model.reset_energy_pj, 0.0],
                ]
            )
            self._aux_bit_energy = slc_model.aux_bit_energy_pj

    def cell_costs_matrix(self, new_cells: np.ndarray, context: WordContext) -> np.ndarray:
        if context.bits_per_cell != self.technology.bits_per_cell:
            raise ConfigurationError(
                "EnergyCost technology does not match the context's cell technology"
            )
        new = np.asarray(new_cells, dtype=np.int64)
        old = np.asarray(context.old_cells[-new.shape[1]:], dtype=np.int64)
        return self._lut[old[None, :], new]

    def aux_cost(self, new_aux: int, old_aux: int, aux_bits: int) -> float:
        del aux_bits
        changed = bin(new_aux ^ old_aux).count("1")
        return changed * self._aux_bit_energy


class SawCost(CostFunction):
    """Number of stuck cells whose intended value differs from the stuck value.

    A location without fault information (``context.stuck_mask is None``)
    costs zero everywhere, so SAW-aware optimisation degrades gracefully to
    a no-op on healthy rows.
    """

    name = "saw"

    def cell_costs_matrix(self, new_cells: np.ndarray, context: WordContext) -> np.ndarray:
        new = np.asarray(new_cells, dtype=np.int64)
        if context.stuck_mask is None:
            return np.zeros(new.shape, dtype=np.float64)
        old = np.asarray(context.old_cells[-new.shape[1]:], dtype=np.int64)
        stuck = np.asarray(context.stuck_mask[-new.shape[1]:], dtype=bool)
        mismatch = (new != old[None, :]) & stuck[None, :]
        return mismatch.astype(np.float64)

    def aux_cost(self, new_aux: int, old_aux: int, aux_bits: int) -> float:
        del new_aux, old_aux, aux_bits
        return 0.0


class LexicographicCost(CostFunction):
    """Combine two cost functions lexicographically (primary, then secondary).

    The combination is realised as ``primary * scale + secondary`` with a
    ``scale`` chosen large enough that any difference in the primary
    objective dominates every achievable secondary cost.  The default scale
    of 1e6 comfortably exceeds the worst-case per-word energy or bit count.
    """

    def __init__(self, primary: CostFunction, secondary: CostFunction, scale: float = 1.0e6):
        if scale <= 0:
            raise ConfigurationError("scale must be positive")
        self.primary = primary
        self.secondary = secondary
        self.scale = scale
        self.name = f"{primary.name}>{secondary.name}"

    def cell_costs_matrix(self, new_cells: np.ndarray, context: WordContext) -> np.ndarray:
        return (
            self.primary.cell_costs_matrix(new_cells, context) * self.scale
            + self.secondary.cell_costs_matrix(new_cells, context)
        )

    def aux_cost(self, new_aux: int, old_aux: int, aux_bits: int) -> float:
        return (
            self.primary.aux_cost(new_aux, old_aux, aux_bits) * self.scale
            + self.secondary.aux_cost(new_aux, old_aux, aux_bits)
        )


def saw_then_energy(
    technology: CellTechnology = CellTechnology.MLC,
    mlc_model: MLCEnergyModel = DEFAULT_MLC_ENERGY,
    slc_model: SLCEnergyModel = DEFAULT_SLC_ENERGY,
) -> LexicographicCost:
    """The paper's "Opt. SAW" objective: SAW cells first, energy second."""
    return LexicographicCost(
        SawCost(), EnergyCost(technology, mlc_model=mlc_model, slc_model=slc_model)
    )


def energy_then_saw(
    technology: CellTechnology = CellTechnology.MLC,
    mlc_model: MLCEnergyModel = DEFAULT_MLC_ENERGY,
    slc_model: SLCEnergyModel = DEFAULT_SLC_ENERGY,
) -> LexicographicCost:
    """The paper's "Opt. Energy" objective: energy first, SAW cells second."""
    return LexicographicCost(
        EnergyCost(technology, mlc_model=mlc_model, slc_model=slc_model), SawCost()
    )
