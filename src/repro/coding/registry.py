"""Factory for building encoders by name.

The experiment harness refers to techniques by the short names used in the
paper's figures ("unencoded", "dbi", "fnw", "dbi/fnw", "flipcy", "bcc",
"rcc", "vcc", "vcc-stored").  :func:`make_encoder` turns those names plus a
handful of shared parameters into configured encoder instances so every
simulator builds its line-up the same way.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.coding.base import Encoder
from repro.coding.bcc import BCCEncoder
from repro.coding.cost import CostFunction
from repro.coding.dbi import DBIEncoder
from repro.coding.flipcy import FlipcyEncoder
from repro.coding.fnw import FNWEncoder
from repro.coding.rcc import RCCEncoder
from repro.coding.unencoded import UnencodedEncoder
from repro.errors import ConfigurationError
from repro.pcm.cell import CellTechnology

__all__ = ["available_encoders", "make_encoder"]


def _make_vcc(stored: bool):
    # Imported lazily to avoid a circular import (repro.core depends on
    # repro.coding for the Encoder interface).
    from repro.core.config import VCCConfig
    from repro.core.vcc import VCCEncoder

    def factory(
        word_bits: int,
        num_cosets: int,
        technology: CellTechnology,
        cost_function: Optional[CostFunction],
        seed: Optional[int],
    ) -> Encoder:
        config = VCCConfig.for_cosets(
            word_bits=word_bits,
            num_cosets=num_cosets,
            technology=technology,
            stored_kernels=stored,
        )
        return VCCEncoder(config, cost_function=cost_function, seed=seed)

    return factory


def _registry() -> Dict[str, Callable[..., Encoder]]:
    return {
        "unencoded": lambda word_bits, num_cosets, technology, cost_function, seed: UnencodedEncoder(
            word_bits, technology, cost_function
        ),
        "dbi": lambda word_bits, num_cosets, technology, cost_function, seed: DBIEncoder(
            word_bits, technology, cost_function
        ),
        "fnw": lambda word_bits, num_cosets, technology, cost_function, seed: FNWEncoder(
            word_bits, 4, technology, cost_function
        ),
        "dbi/fnw": lambda word_bits, num_cosets, technology, cost_function, seed: FNWEncoder(
            word_bits, 4, technology, cost_function
        ),
        "flipcy": lambda word_bits, num_cosets, technology, cost_function, seed: FlipcyEncoder(
            word_bits, technology, cost_function
        ),
        "bcc": lambda word_bits, num_cosets, technology, cost_function, seed: BCCEncoder(
            word_bits, num_cosets, technology, cost_function
        ),
        "rcc": lambda word_bits, num_cosets, technology, cost_function, seed: RCCEncoder(
            word_bits, num_cosets, technology, cost_function, seed
        ),
        "vcc": _make_vcc(stored=False),
        "vcc-stored": _make_vcc(stored=True),
    }


def available_encoders() -> List[str]:
    """Names accepted by :func:`make_encoder`."""
    return sorted(_registry())


def make_encoder(
    name: str,
    word_bits: int = 64,
    num_cosets: int = 256,
    technology: CellTechnology = CellTechnology.MLC,
    cost_function: Optional[CostFunction] = None,
    seed: Optional[int] = 12345,
) -> Encoder:
    """Build an encoder by its short (figure) name.

    Parameters
    ----------
    name:
        One of :func:`available_encoders` (case-insensitive).
    word_bits, num_cosets, technology, cost_function, seed:
        Shared construction parameters; encoders that do not use
        ``num_cosets`` (e.g. DBI) ignore it.
    """
    factories = _registry()
    key = name.lower()
    if key not in factories:
        raise ConfigurationError(
            f"unknown encoder {name!r}; available: {', '.join(sorted(factories))}"
        )
    return factories[key](word_bits, num_cosets, technology, cost_function, seed)
