"""Decorator-driven plugin registry for encoding techniques.

Every technique registers itself with :func:`register_encoder`, either by
decorating the :class:`~repro.coding.base.Encoder` subclass directly::

    @register_encoder("flipcy", description="...", params=("word_bits", ...))
    class FlipcyEncoder(Encoder):
        ...

or, when construction needs more than keyword-forwarding (VCC builds a
:class:`~repro.core.config.VCCConfig` first), by decorating a factory
function that accepts the shared construction parameters::

    @register_encoder("vcc", description="...")
    def _build_vcc(word_bits, num_cosets, technology, cost_function, seed):
        ...

The experiment harness (:mod:`repro.sim.harness`), the per-figure
experiments, and external code all resolve techniques the same way —
through :func:`make_encoder` / :func:`available_encoders` — so a new
technique plugs in by decorating itself; no factory table needs editing.

The shared construction parameters are ``word_bits``, ``num_cosets``,
``technology``, ``cost_function``, and ``seed``; a plugin's ``params``
tuple records which of them its technique actually consumes (the rest are
accepted and ignored, so every simulator can build its line-up uniformly).
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, TypeVar

from repro.coding.base import Encoder
from repro.coding.cost import CostFunction
from repro.errors import ConfigurationError
from repro.pcm.cell import CellTechnology

__all__ = [
    "EncoderPlugin",
    "available_encoders",
    "encoder_plugins",
    "get_encoder_plugin",
    "make_encoder",
    "register_encoder",
    "unregister_encoder",
]

#: Shared construction parameters every plugin factory is offered.
SHARED_PARAMS: Tuple[str, ...] = (
    "word_bits",
    "num_cosets",
    "technology",
    "cost_function",
    "seed",
)

#: Modules whose import registers the builtin techniques.  Imported lazily
#: on first resolution to avoid circular imports (repro.core depends on
#: repro.coding for the Encoder interface).
_BUILTIN_MODULES: Tuple[str, ...] = (
    "repro.coding.unencoded",
    "repro.coding.dbi",
    "repro.coding.fnw",
    "repro.coding.flipcy",
    "repro.coding.bcc",
    "repro.coding.rcc",
    "repro.core.vcc",
)

_builtins_loaded = False


@dataclass(frozen=True)
class EncoderPlugin:
    """One registered encoding technique.

    Attributes
    ----------
    name:
        Canonical short (figure) name the technique resolves under.
    factory:
        Callable building a configured :class:`Encoder` from the shared
        construction parameters (always invoked with keyword arguments).
    aliases:
        Additional names resolving to the same technique (e.g. the paper's
        "dbi/fnw" spelling of the FNW baseline).
    description:
        One-line summary used in documentation tables.
    params:
        The shared parameters this technique actually consumes.
    defaults:
        Extra fixed keyword arguments passed to a class-based factory
        (e.g. FNW's ``partitions=4``).
    """

    name: str
    factory: Callable[..., Encoder]
    aliases: Tuple[str, ...] = ()
    description: str = ""
    params: Tuple[str, ...] = SHARED_PARAMS
    defaults: Dict[str, object] = field(default_factory=dict)

    def build(
        self,
        word_bits: int,
        num_cosets: int,
        technology: CellTechnology,
        cost_function: Optional[CostFunction],
        seed: Optional[int],
    ) -> Encoder:
        """Instantiate the technique from the shared parameters."""
        shared = {
            "word_bits": word_bits,
            "num_cosets": num_cosets,
            "technology": technology,
            "cost_function": cost_function,
            "seed": seed,
        }
        kwargs = {key: shared[key] for key in self.params}
        kwargs.update(self.defaults)
        return self.factory(**kwargs)


_PLUGINS: Dict[str, EncoderPlugin] = {}
_ALIASES: Dict[str, str] = {}

#: A registered factory: an :class:`Encoder` subclass or a factory function.
_FactoryT = TypeVar("_FactoryT", bound=Callable[..., Any])


def register_encoder(
    name: str,
    *,
    aliases: Tuple[str, ...] = (),
    description: str = "",
    params: Optional[Tuple[str, ...]] = None,
    defaults: Optional[Dict[str, object]] = None,
) -> Callable[[_FactoryT], _FactoryT]:
    """Class/function decorator registering an encoding technique.

    Parameters
    ----------
    name:
        Canonical registry name (lower-case; matching is case-insensitive).
    aliases:
        Additional accepted names.
    description:
        One-line summary shown in documentation tables.
    params:
        Which of :data:`SHARED_PARAMS` the factory accepts.  Defaults to
        every shared parameter for factory functions and must be given
        explicitly when decorating an :class:`Encoder` subclass whose
        constructor takes only a subset.
    defaults:
        Extra fixed keyword arguments for class-based registration.
    """
    unknown = tuple(p for p in (params or ()) if p not in SHARED_PARAMS)
    if unknown:
        raise ConfigurationError(
            f"unknown shared parameter(s) {unknown}; expected a subset of {SHARED_PARAMS}"
        )

    def decorator(obj: _FactoryT) -> _FactoryT:
        plugin = EncoderPlugin(
            name=name.lower(),
            factory=obj,
            aliases=tuple(a.lower() for a in aliases),
            description=description,
            params=tuple(params) if params is not None else SHARED_PARAMS,
            defaults=dict(defaults or {}),
        )
        _register(plugin)
        return obj

    return decorator


def _register(plugin: EncoderPlugin) -> None:
    for key in (plugin.name, *plugin.aliases):
        existing = _ALIASES.get(key)
        if existing is not None and existing != plugin.name:
            raise ConfigurationError(
                f"encoder name {key!r} is already registered for {existing!r}"
            )
    if plugin.name in _PLUGINS:
        raise ConfigurationError(f"encoder {plugin.name!r} is already registered")
    _PLUGINS[plugin.name] = plugin
    for key in (plugin.name, *plugin.aliases):
        _ALIASES[key] = plugin.name


def unregister_encoder(name: str) -> None:
    """Remove a technique (and its aliases) from the registry.

    Intended for tests and for plugins that replace a builtin; unknown
    names raise so typos do not pass silently.
    """
    _ensure_builtins()
    key = name.lower()
    canonical = _ALIASES.get(key)
    if canonical is None:
        raise ConfigurationError(f"unknown encoder {name!r}")
    plugin = _PLUGINS.pop(canonical)
    for alias in (plugin.name, *plugin.aliases):
        _ALIASES.pop(alias, None)


def _ensure_builtins() -> None:
    global _builtins_loaded
    if _builtins_loaded:
        return
    for module in _BUILTIN_MODULES:
        importlib.import_module(module)
    # Only mark loaded once every import succeeded, so a transient import
    # failure surfaces again on the next call instead of leaving a silently
    # partial registry.
    # repro: allow[PAR001] reason=idempotent lazy-import latch; every worker re-imports the same builtin plugin set, so coordinator and workers converge on identical registries
    _builtins_loaded = True


def encoder_plugins() -> List[EncoderPlugin]:
    """All registered plugins, sorted by canonical name."""
    _ensure_builtins()
    return [_PLUGINS[name] for name in sorted(_PLUGINS)]


def get_encoder_plugin(name: str) -> EncoderPlugin:
    """Resolve a (case-insensitive) name or alias to its plugin."""
    _ensure_builtins()
    key = name.lower()
    canonical = _ALIASES.get(key)
    if canonical is None:
        raise ConfigurationError(
            f"unknown encoder {name!r}; available: {', '.join(available_encoders())}"
        )
    return _PLUGINS[canonical]


def available_encoders() -> List[str]:
    """Names accepted by :func:`make_encoder` (canonical names and aliases)."""
    _ensure_builtins()
    return sorted(_ALIASES)


def make_encoder(
    name: str,
    word_bits: int = 64,
    num_cosets: int = 256,
    technology: CellTechnology = CellTechnology.MLC,
    cost_function: Optional[CostFunction] = None,
    seed: Optional[int] = 12345,
) -> Encoder:
    """Build an encoder by its short (figure) name.

    Parameters
    ----------
    name:
        One of :func:`available_encoders` (case-insensitive).
    word_bits, num_cosets, technology, cost_function, seed:
        Shared construction parameters; encoders that do not use
        ``num_cosets`` (e.g. DBI) ignore it.
    """
    return get_encoder_plugin(name).build(
        word_bits=word_bits,
        num_cosets=num_cosets,
        technology=technology,
        cost_function=cost_function,
        seed=seed,
    )
