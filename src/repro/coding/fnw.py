"""Flip-N-Write (FNW): per-partition conditional inversion.

FNW divides the data word into ``partitions`` equal sub-blocks and writes
each either directly or bitwise inverted, whichever is cheaper under the
configured cost function, at the price of one auxiliary bit per partition.
In coset terms each partition uses the two biased candidates
``V0 = 0...0`` and ``V1 = 1...1``.

The classic formulation minimises changed bits; because this implementation
scores candidates through the shared cost-function interface it can just as
well minimise MLC write energy or stuck-at-wrong cells, which is how the
DBI/FNW baseline is driven in the lifetime experiments (Figs. 11/12).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.coding.base import (
    EncodedLine,
    EncodedWord,
    Encoder,
    LineContext,
    WordContext,
    WordsMatrix,
    stack_line_contexts,
    words_matrix_to_cells,
    words_to_cell_matrix,
)
from repro.coding.cost import BitChangeCost, CostFunction
from repro.coding.registry import register_encoder
from repro.errors import ConfigurationError
from repro.pcm.cell import CellTechnology
from repro.utils.validation import require, require_divisible

__all__ = ["FNWEncoder"]


@register_encoder(
    "fnw",
    aliases=("dbi/fnw",),
    description="Flip-N-Write over 16-bit sub-blocks (the paper's DBI/FNW baseline)",
    params=("word_bits", "technology", "cost_function"),
    defaults={"partitions": 4},
)
class FNWEncoder(Encoder):
    """Flip-N-Write with a configurable number of partitions.

    Parameters
    ----------
    word_bits:
        Width of the data word (64 in the paper's evaluation).
    partitions:
        Number of independently-invertible sub-blocks.  The paper's
        "DBI/FNW" baseline uses 16-bit sub-blocks, i.e. 4 partitions of a
        64-bit word.
    technology:
        Cell technology of the target memory.
    cost_function:
        Objective minimised when choosing direct vs. inverted.
    """

    name = "fnw"

    def __init__(
        self,
        word_bits: int = 64,
        partitions: int = 4,
        technology: CellTechnology = CellTechnology.MLC,
        cost_function: CostFunction = None,
    ):
        super().__init__(word_bits, technology, cost_function or BitChangeCost())
        require(partitions > 0, "partitions must be positive")
        require_divisible(word_bits, partitions, "word_bits must be divisible by partitions")
        self.partitions = partitions
        self.sub_bits = word_bits // partitions
        require_divisible(
            self.sub_bits, self.bits_per_cell, "partition width must hold whole cells"
        )
        self.cells_per_partition = self.sub_bits // self.bits_per_cell
        self._sub_mask = (1 << self.sub_bits) - 1

    @property
    def aux_bits(self) -> int:
        return self.partitions

    # ---------------------------------------------------------------- encode
    def encode(self, data: int, context: WordContext) -> EncodedWord:
        self._check_data(data)
        self._check_context(context)
        codeword = 0
        flags = 0
        total_cost = 0.0
        for index in range(self.partitions):
            shift = self.sub_bits * (self.partitions - 1 - index)
            sub = (data >> shift) & self._sub_mask
            inverted = sub ^ self._sub_mask
            start = index * self.cells_per_partition
            stop = start + self.cells_per_partition
            sub_context = self.cost_function.slice_context(context, start, stop)
            matrix = words_to_cell_matrix([sub, inverted], self.sub_bits, self.bits_per_cell)
            costs = self.cost_function.cell_costs_matrix(matrix, sub_context).sum(axis=1)
            if costs[1] < costs[0]:
                chosen, flag, cost = inverted, 1, costs[1]
            else:
                chosen, flag, cost = sub, 0, costs[0]
            codeword = (codeword << self.sub_bits) | chosen
            flags = (flags << 1) | flag
            total_cost += float(cost)
        total_cost += self.cost_function.aux_cost(flags, context.old_aux, self.aux_bits)
        return EncodedWord(
            codeword=codeword,
            aux=flags,
            aux_bits=self.aux_bits,
            cost=total_cost,
            technique=self.name,
        )

    def encode_line(self, words: Sequence[int], context: LineContext) -> EncodedLine:
        # The vectorized path packs codewords and flag vectors into 64-bit
        # lanes; wider configurations use the scalar loop.
        if self.word_bits > 64 or self.aux_bits >= 64:
            return self.encode_line_scalar(words, context)
        words = [int(w) for w in words]
        for word in words:
            self._check_data(word)
        self._check_line_context(context, len(words))
        num_words = len(words)
        p = self.partitions
        sub_mask = np.uint64(self._sub_mask)
        values = np.asarray(words, dtype=np.uint64)
        shifts = np.array(
            [self.sub_bits * (p - 1 - j) for j in range(p)], dtype=np.uint64
        )
        subs = (values[:, None] >> shifts) & sub_mask
        candidates = np.stack([subs, subs ^ sub_mask])
        cells = words_matrix_to_cells(
            candidates.reshape(2, num_words * p), self.sub_bits, self.bits_per_cell
        )
        sub_context = context.split_partitions(p)
        costs = (
            self.cost_function.line_cell_costs(cells, sub_context)
            .sum(axis=2)
            .reshape(2, num_words, p)
        )
        flags_matrix = costs[1] < costs[0]
        chosen_costs = np.where(flags_matrix, costs[1], costs[0])
        # Accumulate partitions left to right, matching the scalar loop's
        # float association exactly (bit-for-bit cost parity).
        totals = np.zeros(num_words, dtype=np.float64)
        for j in range(p):
            totals += chosen_costs[:, j]
        chosen_subs = np.where(flags_matrix, candidates[1], candidates[0])
        codewords = np.zeros(num_words, dtype=np.uint64)
        flags = np.zeros(num_words, dtype=np.int64)
        for j in range(p):
            codewords |= chosen_subs[:, j] << shifts[j]
            flags = (flags << 1) | flags_matrix[:, j]
        totals += self.cost_function.aux_costs_matrix(
            flags[None, :], context.old_auxes, self.aux_bits
        )[0]
        return EncodedLine(
            codewords=tuple(int(c) for c in codewords),
            auxes=tuple(int(f) for f in flags),
            aux_bits=self.aux_bits,
            costs=tuple(float(t) for t in totals),
            technique=self.name,
        )

    def encode_lines(
        self, words_matrix: WordsMatrix, contexts: Sequence[LineContext]
    ) -> List[EncodedLine]:
        # Mirrors the vectorized encode_line with a leading lines axis: one
        # batch_line_cell_costs call scores the direct and inverted form of
        # every partition of every word of every queued write.
        if self.word_bits > 64 or self.aux_bits >= 64:
            return super().encode_lines(words_matrix, contexts)
        values = np.asarray(words_matrix, dtype=np.uint64)
        self._check_lines_batch(values, contexts)
        lines, num_words = values.shape
        p = self.partitions
        sub_mask = np.uint64(self._sub_mask)
        shifts = np.array(
            [self.sub_bits * (p - 1 - j) for j in range(p)], dtype=np.uint64
        )
        subs = (values[:, :, None] >> shifts) & sub_mask
        subs_flat = subs.reshape(1, lines * num_words * p)
        candidates = np.stack([subs_flat, subs_flat ^ sub_mask], axis=1)
        cells = words_matrix_to_cells(candidates, self.sub_bits, self.bits_per_cell)
        # The batch views all lines as one stacked line (word w of line l is
        # stacked word l * words_per_line + w), so a one-line 4-D kernel
        # call scores both forms of every partition of every queued write.
        stacked_split = stack_line_contexts(list(contexts)).split_partitions(p)
        costs = (
            self.cost_function.batch_line_cell_costs(cells, [stacked_split])
            .reshape(2, lines * num_words * p, -1)
            .sum(axis=2)
            .reshape(2, lines, num_words, p)
            .swapaxes(0, 1)
        )
        flags_matrix = costs[:, 1] < costs[:, 0]
        chosen_costs = np.where(flags_matrix, costs[:, 1], costs[:, 0])
        # Accumulate partitions left to right, matching the scalar loop's
        # float association exactly (bit-for-bit cost parity).
        totals = np.zeros((lines, num_words), dtype=np.float64)
        for j in range(p):
            totals += chosen_costs[:, :, j]
        chosen_subs = np.where(flags_matrix, subs ^ sub_mask, subs)
        codewords = np.zeros((lines, num_words), dtype=np.uint64)
        flags = np.zeros((lines, num_words), dtype=np.int64)
        for j in range(p):
            codewords |= chosen_subs[:, :, j] << shifts[j]
            flags = (flags << 1) | flags_matrix[:, :, j]
        totals += self.cost_function.aux_costs_matrix(
            flags.reshape(1, lines * num_words),
            np.concatenate([np.asarray(c.old_auxes) for c in contexts]),
            self.aux_bits,
        )[0].reshape(lines, num_words)
        codeword_rows = codewords.tolist()
        flag_rows = flags.tolist()
        cost_rows = totals.tolist()
        return [
            EncodedLine(
                codewords=codeword_rows[line],
                auxes=flag_rows[line],
                aux_bits=self.aux_bits,
                costs=cost_rows[line],
                technique=self.name,
            )
            for line in range(lines)
        ]

    # ---------------------------------------------------------------- decode
    def decode(self, codeword: int, aux: int) -> int:
        if aux < 0 or aux >= (1 << self.partitions):
            raise ConfigurationError(
                f"aux value {aux} does not fit in {self.partitions} flag bits"
            )
        data = 0
        for index in range(self.partitions):
            shift = self.sub_bits * (self.partitions - 1 - index)
            sub = (codeword >> shift) & self._sub_mask
            flag = (aux >> (self.partitions - 1 - index)) & 1
            if flag:
                sub ^= self._sub_mask
            data = (data << self.sub_bits) | sub
        return data
