"""Flip-N-Write (FNW): per-partition conditional inversion.

FNW divides the data word into ``partitions`` equal sub-blocks and writes
each either directly or bitwise inverted, whichever is cheaper under the
configured cost function, at the price of one auxiliary bit per partition.
In coset terms each partition uses the two biased candidates
``V0 = 0...0`` and ``V1 = 1...1``.

The classic formulation minimises changed bits; because this implementation
scores candidates through the shared cost-function interface it can just as
well minimise MLC write energy or stuck-at-wrong cells, which is how the
DBI/FNW baseline is driven in the lifetime experiments (Figs. 11/12).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.coding.base import EncodedWord, Encoder, WordContext, words_to_cell_matrix
from repro.coding.cost import BitChangeCost, CostFunction
from repro.errors import ConfigurationError
from repro.pcm.cell import CellTechnology
from repro.utils.validation import require, require_divisible

__all__ = ["FNWEncoder"]


class FNWEncoder(Encoder):
    """Flip-N-Write with a configurable number of partitions.

    Parameters
    ----------
    word_bits:
        Width of the data word (64 in the paper's evaluation).
    partitions:
        Number of independently-invertible sub-blocks.  The paper's
        "DBI/FNW" baseline uses 16-bit sub-blocks, i.e. 4 partitions of a
        64-bit word.
    technology:
        Cell technology of the target memory.
    cost_function:
        Objective minimised when choosing direct vs. inverted.
    """

    name = "fnw"

    def __init__(
        self,
        word_bits: int = 64,
        partitions: int = 4,
        technology: CellTechnology = CellTechnology.MLC,
        cost_function: CostFunction = None,
    ):
        super().__init__(word_bits, technology, cost_function or BitChangeCost())
        require(partitions > 0, "partitions must be positive")
        require_divisible(word_bits, partitions, "word_bits must be divisible by partitions")
        self.partitions = partitions
        self.sub_bits = word_bits // partitions
        require_divisible(
            self.sub_bits, self.bits_per_cell, "partition width must hold whole cells"
        )
        self.cells_per_partition = self.sub_bits // self.bits_per_cell
        self._sub_mask = (1 << self.sub_bits) - 1

    @property
    def aux_bits(self) -> int:
        return self.partitions

    # ---------------------------------------------------------------- encode
    def encode(self, data: int, context: WordContext) -> EncodedWord:
        self._check_data(data)
        self._check_context(context)
        codeword = 0
        flags = 0
        total_cost = 0.0
        for index in range(self.partitions):
            shift = self.sub_bits * (self.partitions - 1 - index)
            sub = (data >> shift) & self._sub_mask
            inverted = sub ^ self._sub_mask
            start = index * self.cells_per_partition
            stop = start + self.cells_per_partition
            sub_context = self.cost_function.slice_context(context, start, stop)
            matrix = words_to_cell_matrix([sub, inverted], self.sub_bits, self.bits_per_cell)
            costs = self.cost_function.cell_costs_matrix(matrix, sub_context).sum(axis=1)
            if costs[1] < costs[0]:
                chosen, flag, cost = inverted, 1, costs[1]
            else:
                chosen, flag, cost = sub, 0, costs[0]
            codeword = (codeword << self.sub_bits) | chosen
            flags = (flags << 1) | flag
            total_cost += float(cost)
        total_cost += self.cost_function.aux_cost(flags, context.old_aux, self.aux_bits)
        return EncodedWord(
            codeword=codeword,
            aux=flags,
            aux_bits=self.aux_bits,
            cost=total_cost,
            technique=self.name,
        )

    # ---------------------------------------------------------------- decode
    def decode(self, codeword: int, aux: int) -> int:
        if aux < 0 or aux >= (1 << self.partitions):
            raise ConfigurationError(
                f"aux value {aux} does not fit in {self.partitions} flag bits"
            )
        data = 0
        for index in range(self.partitions):
            shift = self.sub_bits * (self.partitions - 1 - index)
            sub = (codeword >> shift) & self._sub_mask
            flag = (aux >> (self.partitions - 1 - index)) & 1
            if flag:
                sub ^= self._sub_mask
            data = (data << self.sub_bits) | sub
        return data
