"""Random Coset Coding (RCC) with stored full-length random cosets.

RCC(n, N) XORs the n-bit data block with each of N independent random
n-bit coset candidates, evaluates all N transformed blocks against the
cost function, and stores the cheapest along with a ``log2 N``-bit index.
The candidates are generated once (from a seed) and held in a ROM, exactly
like the hardware baseline the paper synthesises; decoding XORs the stored
candidate back out.

RCC is the quality ceiling the paper measures VCC against: it achieves the
best energy/SAW results but its encoder area, energy, and latency grow
linearly with N (Fig. 6), which is what motivates VCC.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.coding.base import (
    EncodedLine,
    EncodedWord,
    Encoder,
    LineContext,
    WordContext,
    WordsMatrix,
    words_matrix_to_cells,
    words_to_cell_matrix,
)
from repro.coding.cost import BitChangeCost, CostFunction
from repro.coding.registry import register_encoder
import repro.obs as obs
from repro.errors import ConfigurationError
from repro.pcm.cell import CellTechnology
from repro.utils.bitops import random_word
from repro.utils.rng import make_rng
from repro.utils.validation import require_power_of_two

__all__ = ["RCCEncoder"]

# Same counter the batched cost kernels bump (registry get-or-create):
# the transition-table fast path scores its candidates with a gather and
# never enters a cost kernel, so it reports them itself.
_OBS_CANDIDATES = obs.counter(
    "encode.candidates", "candidate lines scored by the batched cost kernels"
)


@register_encoder(
    "rcc",
    description="Random coset coding with N stored full-length random cosets",
    params=("word_bits", "num_cosets", "technology", "cost_function", "seed"),
)
class RCCEncoder(Encoder):
    """Random coset coding with ``N`` stored random candidates.

    Parameters
    ----------
    word_bits:
        Width of the data block.
    num_cosets:
        Number of stored random coset candidates (power of two).  Candidate
        index 0 is forced to the all-zeros vector so RCC never does worse
        than the unencoded write on the chosen objective.
    technology:
        Target cell technology.
    cost_function:
        Objective minimised when selecting the candidate.
    seed:
        Seed used to generate the candidate ROM.
    """

    name = "rcc"

    def __init__(
        self,
        word_bits: int = 64,
        num_cosets: int = 256,
        technology: CellTechnology = CellTechnology.MLC,
        cost_function: CostFunction = None,
        seed: Optional[int] = 12345,
    ):
        super().__init__(word_bits, technology, cost_function or BitChangeCost())
        require_power_of_two(num_cosets, "num_cosets")
        if num_cosets < 2:
            raise ConfigurationError("RCC needs at least 2 coset candidates")
        self.num_cosets = num_cosets
        self.seed = seed
        rng = make_rng(seed, "rcc-cosets")
        cosets: List[int] = [0]
        seen = {0}
        while len(cosets) < num_cosets:
            candidate = random_word(rng, word_bits)
            if candidate in seen:
                continue
            seen.add(candidate)
            cosets.append(candidate)
        self.cosets: List[int] = cosets
        if word_bits <= 64:
            self._coset_array = np.array(cosets, dtype=np.uint64)
            # Cell decomposition distributes over XOR, so candidate cells
            # are data_cells ^ coset_cells — precompute the latter once.
            self._coset_cells = words_to_cell_matrix(
                cosets, word_bits, self.bits_per_cell
            )
            # Gather index of the multi-line transition-table path: entry
            # (c, cell) addresses slot ``cell * levels + coset_cell`` of a
            # per-word table whose value axis was pre-XORed with the data.
            levels = 1 << self.bits_per_cell
            self._coset_gather = (
                self._coset_cells.astype(np.intp)
                + (np.arange(self.cells_per_word, dtype=np.intp) * levels)[None, :]
            )
        else:
            self._coset_array = None
            self._coset_cells = None
            self._coset_gather = None

    @property
    def aux_bits(self) -> int:
        return self.num_cosets.bit_length() - 1

    def encode(self, data: int, context: WordContext) -> EncodedWord:
        self._check_data(data)
        self._check_context(context)
        candidates = [data ^ coset for coset in self.cosets]
        auxes = list(range(self.num_cosets))
        return self._select_best(candidates, auxes, context)

    def encode_line(self, words: Sequence[int], context: LineContext) -> EncodedLine:
        if self._coset_array is None:
            return self.encode_line_scalar(words, context)
        words = [int(w) for w in words]
        for word in words:
            self._check_data(word)
        self._check_line_context(context, len(words))
        values = np.asarray(words, dtype=np.uint64)
        candidates = values[None, :] ^ self._coset_array[:, None]
        auxes = np.arange(self.num_cosets, dtype=np.int64)
        data_cells = words_matrix_to_cells(values, self.word_bits, self.bits_per_cell)
        candidate_cells = data_cells[None, :, :] ^ self._coset_cells[:, None, :]
        return self._select_best_line(candidates, auxes, context, cells=candidate_cells)

    def encode_lines(
        self, words_matrix: WordsMatrix, contexts: Sequence[LineContext]
    ) -> List[EncodedLine]:
        if self._coset_array is None:
            return super().encode_lines(words_matrix, contexts)
        values = np.asarray(words_matrix, dtype=np.uint64)
        self._check_lines_batch(values, contexts)
        lines, words = values.shape
        total_words = lines * words
        flat = values.reshape(total_words)
        auxes = np.arange(self.num_cosets, dtype=np.int64)
        data_cells = words_matrix_to_cells(flat, self.word_bits, self.bits_per_cell)
        tables = self.cost_function.transition_tables(contexts)
        if tables is None:
            # Non-cellwise cost function: materialise every candidate cell
            # and score them through the generic 4-D kernel.
            candidates = (
                (flat[None, :] ^ self._coset_array[:, None])
                .reshape(self.num_cosets, lines, words)
                .transpose(1, 0, 2)
            )
            candidate_cells = (
                data_cells.reshape(lines, 1, words, -1)
                ^ self._coset_cells[None, :, None, :]
            )
            return self._select_best_lines(
                candidates, auxes, contexts, cells=candidate_cells
            )
        # Transition-table fast path: fold the data word into the table
        # (T'[w, cell, v] = T[w, cell, v ^ data_cell], so a candidate's
        # cost row is addressed by the *coset* cells, which are fixed) and
        # score all cosets of all words with one precomputed-index gather.
        # Every gathered value is an entry the elementwise pipeline would
        # have produced, so selection stays bit-identical to encode_line.
        cells_per_word = data_cells.shape[1]
        levels = tables.shape[3]
        fold = (
            np.arange(levels, dtype=np.uint8)[None, None, :] ^ data_cells[:, :, None]
        ).astype(np.intp)
        folded = np.take_along_axis(
            tables.reshape(total_words, cells_per_word, levels), fold, axis=2
        )
        # np.take (unlike an advanced-indexing gather) returns a C-contiguous
        # array, so the per-candidate cell sums below run the exact same
        # contiguous pairwise reduction as the single-line reference path.
        gathered = np.take(
            folded.reshape(total_words, cells_per_word * levels),
            self._coset_gather.reshape(-1),
            axis=1,
        ).reshape(total_words, self.num_cosets, cells_per_word)
        data_costs = gathered.sum(axis=2)
        _OBS_CANDIDATES.inc(lines * self.num_cosets)
        # Selection inline (the (words, cosets) layout of the fast path
        # saves transposing into _select_best_lines): totals, the argmin,
        # and the tie-breaking order are element-for-element those of
        # _select_best_line, and only the winning candidates are built.
        old_auxes = np.concatenate([np.asarray(c.old_auxes) for c in contexts])
        aux_costs = self.cost_function.aux_costs_matrix(
            np.broadcast_to(auxes[:, None], (self.num_cosets, total_words)),
            old_auxes,
            self.aux_bits,
        )
        totals = data_costs + aux_costs.T
        best = np.argmin(totals, axis=1)
        codeword_rows = (flat ^ self._coset_array[best]).reshape(lines, words).tolist()
        aux_rows = best.reshape(lines, words).tolist()
        cost_rows = (
            totals[np.arange(total_words), best].reshape(lines, words).tolist()
        )
        return [
            EncodedLine(
                codewords=codeword_rows[line],
                auxes=aux_rows[line],
                aux_bits=self.aux_bits,
                costs=cost_rows[line],
                technique=self.name,
            )
            for line in range(lines)
        ]

    def decode(self, codeword: int, aux: int) -> int:
        if not 0 <= aux < self.num_cosets:
            raise ConfigurationError(
                f"coset index {aux} out of range [0, {self.num_cosets})"
            )
        return codeword ^ self.cosets[aux]
