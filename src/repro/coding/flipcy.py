"""Flipcy: choose among the data, its 1's complement, and its 2's complement.

Flipcy (Imran et al., ICCAD 2019) redistributes error-prone / expensive MLC
symbol patterns by storing one of three forms of the block — the original
data, its bitwise (1's) complement, or its arithmetic (2's) complement —
selected by a two-bit auxiliary code.  It was designed for biased data; on
encrypted (uniform) data all three forms look statistically identical,
which is why the paper finds it close to the unencoded baseline.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.coding.base import (
    EncodedLine,
    EncodedWord,
    Encoder,
    LineContext,
    WordContext,
    WordsMatrix,
)
from repro.coding.cost import BitChangeCost, CostFunction
from repro.coding.registry import register_encoder
from repro.errors import ConfigurationError
from repro.pcm.cell import CellTechnology

__all__ = ["FlipcyEncoder"]

#: Auxiliary codes for the three storable forms.
_FORM_IDENTITY = 0
_FORM_ONES_COMPLEMENT = 1
_FORM_TWOS_COMPLEMENT = 2


@register_encoder(
    "flipcy",
    description="Identity / 1's-complement / 2's-complement selection (2 aux bits)",
    params=("word_bits", "technology", "cost_function"),
)
class FlipcyEncoder(Encoder):
    """Identity / 1's-complement / 2's-complement selection (2 aux bits)."""

    name = "flipcy"

    def __init__(
        self,
        word_bits: int = 64,
        technology: CellTechnology = CellTechnology.MLC,
        cost_function: CostFunction = None,
    ):
        super().__init__(word_bits, technology, cost_function or BitChangeCost())
        self._mask = (1 << word_bits) - 1

    @property
    def aux_bits(self) -> int:
        return 2

    def encode(self, data: int, context: WordContext) -> EncodedWord:
        self._check_data(data)
        self._check_context(context)
        candidates = [
            data,
            data ^ self._mask,
            (-data) & self._mask,
        ]
        auxes = [_FORM_IDENTITY, _FORM_ONES_COMPLEMENT, _FORM_TWOS_COMPLEMENT]
        return self._select_best(candidates, auxes, context)

    def encode_line(self, words: Sequence[int], context: LineContext) -> EncodedLine:
        if self.word_bits > 64:
            return self.encode_line_scalar(words, context)
        words = [int(w) for w in words]
        for word in words:
            self._check_data(word)
        self._check_line_context(context, len(words))
        mask = np.uint64(self._mask)
        values = np.asarray(words, dtype=np.uint64)
        candidates = np.stack(
            [
                values,
                values ^ mask,
                # Two's complement: unsigned wraparound then trim to width.
                (~values + np.uint64(1)) & mask,
            ]
        )
        auxes = np.array(
            [_FORM_IDENTITY, _FORM_ONES_COMPLEMENT, _FORM_TWOS_COMPLEMENT], dtype=np.int64
        )
        return self._select_best_line(candidates, auxes, context)

    def encode_lines(
        self, words_matrix: WordsMatrix, contexts: Sequence[LineContext]
    ) -> List[EncodedLine]:
        if self.word_bits > 64:
            return super().encode_lines(words_matrix, contexts)
        values = np.asarray(words_matrix, dtype=np.uint64)
        self._check_lines_batch(values, contexts)
        mask = np.uint64(self._mask)
        # Same three forms as encode_line, stacked along the candidate axis.
        candidates = np.stack(
            [values, values ^ mask, (~values + np.uint64(1)) & mask], axis=1
        )
        auxes = np.array(
            [_FORM_IDENTITY, _FORM_ONES_COMPLEMENT, _FORM_TWOS_COMPLEMENT], dtype=np.int64
        )
        return self._select_best_lines(candidates, auxes, contexts)

    def decode(self, codeword: int, aux: int) -> int:
        if aux == _FORM_IDENTITY:
            return codeword
        if aux == _FORM_ONES_COMPLEMENT:
            return codeword ^ self._mask
        if aux == _FORM_TWOS_COMPLEMENT:
            return (-codeword) & self._mask
        raise ConfigurationError(f"invalid Flipcy auxiliary code {aux}")
