"""Flipcy: choose among the data, its 1's complement, and its 2's complement.

Flipcy (Imran et al., ICCAD 2019) redistributes error-prone / expensive MLC
symbol patterns by storing one of three forms of the block — the original
data, its bitwise (1's) complement, or its arithmetic (2's) complement —
selected by a two-bit auxiliary code.  It was designed for biased data; on
encrypted (uniform) data all three forms look statistically identical,
which is why the paper finds it close to the unencoded baseline.
"""

from __future__ import annotations

from repro.coding.base import EncodedWord, Encoder, WordContext
from repro.coding.cost import BitChangeCost, CostFunction
from repro.errors import ConfigurationError
from repro.pcm.cell import CellTechnology

__all__ = ["FlipcyEncoder"]

#: Auxiliary codes for the three storable forms.
_FORM_IDENTITY = 0
_FORM_ONES_COMPLEMENT = 1
_FORM_TWOS_COMPLEMENT = 2


class FlipcyEncoder(Encoder):
    """Identity / 1's-complement / 2's-complement selection (2 aux bits)."""

    name = "flipcy"

    def __init__(
        self,
        word_bits: int = 64,
        technology: CellTechnology = CellTechnology.MLC,
        cost_function: CostFunction = None,
    ):
        super().__init__(word_bits, technology, cost_function or BitChangeCost())
        self._mask = (1 << word_bits) - 1

    @property
    def aux_bits(self) -> int:
        return 2

    def encode(self, data: int, context: WordContext) -> EncodedWord:
        self._check_data(data)
        self._check_context(context)
        candidates = [
            data,
            data ^ self._mask,
            (-data) & self._mask,
        ]
        auxes = [_FORM_IDENTITY, _FORM_ONES_COMPLEMENT, _FORM_TWOS_COMPLEMENT]
        return self._select_best(candidates, auxes, context)

    def decode(self, codeword: int, aux: int) -> int:
        if aux == _FORM_IDENTITY:
            return codeword
        if aux == _FORM_ONES_COMPLEMENT:
            return codeword ^ self._mask
        if aux == _FORM_TWOS_COMPLEMENT:
            return (-codeword) & self._mask
        raise ConfigurationError(f"invalid Flipcy auxiliary code {aux}")
