"""Biased Coset Coding (BCC).

Section III of the paper analyses "biased" coset coding: the word is
divided into ``k = log2(N)`` sections and each section is written either
unchanged or inverted, yielding ``2^k = N`` biased coset candidates built
from the all-zeros and all-ones vectors.  Structurally this is Flip-N-Write
with ``log2(N)`` partitions, so the encoder simply parameterises
:class:`repro.coding.fnw.FNWEncoder` by the candidate count.
"""

from __future__ import annotations

from repro.coding.cost import CostFunction
from repro.coding.fnw import FNWEncoder
from repro.coding.registry import register_encoder
from repro.errors import ConfigurationError
from repro.pcm.cell import CellTechnology
from repro.utils.validation import require_power_of_two

__all__ = ["BCCEncoder"]


@register_encoder(
    "bcc",
    description="Biased coset coding: log2(N) independently inverted sections",
    params=("word_bits", "num_cosets", "technology", "cost_function"),
)
class BCCEncoder(FNWEncoder):
    """Biased coset coding with ``N`` candidates (``log2 N`` partitions).

    Inherits both batch paths from Flip-N-Write: the vectorised
    ``encode_line`` and the multi-line ``encode_lines`` used by the memory
    controller's replay waves.
    """

    name = "bcc"

    def __init__(
        self,
        word_bits: int = 64,
        num_cosets: int = 16,
        technology: CellTechnology = CellTechnology.MLC,
        cost_function: CostFunction = None,
    ):
        require_power_of_two(num_cosets, "num_cosets")
        partitions = num_cosets.bit_length() - 1
        if partitions == 0:
            raise ConfigurationError("BCC needs at least 2 coset candidates")
        # BCC needs equal-width sections.  When log2(N) does not divide the
        # word width (e.g. N = 64 over 64 bits would need 6 sections), fall
        # back to the largest feasible section count so the encoder remains
        # usable; the effective candidate count is then 2^partitions.
        while word_bits % partitions != 0 or (word_bits // partitions) % technology.bits_per_cell != 0:
            partitions -= 1
            if partitions == 0:
                raise ConfigurationError(
                    f"no feasible BCC partitioning of a {word_bits}-bit word for N={num_cosets}"
                )
        super().__init__(
            word_bits=word_bits,
            partitions=partitions,
            technology=technology,
            cost_function=cost_function,
        )
        self.num_cosets = num_cosets
