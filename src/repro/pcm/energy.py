"""Write-energy models for SLC and MLC PCM.

The MLC model reproduces Table I of the paper, which classifies every
old-state/new-state transition of a Gray-coded 4-level cell as either

* ``-`` (no programming needed, the cell already holds the value),
* ``low`` (a single SET or RESET pulse reaches the target state), or
* ``high`` (the target is an intermediate state that needs the full
  SET+RESET preamble followed by program-and-verify).

The defining structural property — the one every experiment depends on —
is that a transition is *high* exactly when the new symbol's right digit is
one (symbols ``01`` and ``11``), is *zero-cost* when the symbol does not
change, and is *low* otherwise.  The absolute picojoule values are model
parameters; the defaults follow the prototype MLC device used by the paper
(intermediate states cost roughly an order of magnitude more than a plain
SET/RESET).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.bitops import split_symbols

__all__ = ["MLCEnergyModel", "SLCEnergyModel", "DEFAULT_MLC_ENERGY", "DEFAULT_SLC_ENERGY"]


@dataclass(frozen=True)
class MLCEnergyModel:
    """Symbol-transition write energy for a 4-level Gray-coded PCM cell.

    Parameters
    ----------
    low_energy_pj:
        Energy of a "low" transition (single SET or RESET pulse), in pJ.
    high_energy_pj:
        Energy of a "high" transition (programming an intermediate state),
        in pJ.  The paper reports intermediate states cost up to an order
        of magnitude more than low transitions.
    same_state_energy_pj:
        Energy charged when the new symbol equals the old symbol.  A
        differential-write memory does not program unchanged cells, so the
        default is zero.
    aux_bit_energy_pj:
        Energy charged per auxiliary bit that changes value.  Auxiliary
        bits live in ordinary (SLC-like) cells next to the data.
    """

    low_energy_pj: float = 2.0
    high_energy_pj: float = 20.0
    same_state_energy_pj: float = 0.0
    aux_bit_energy_pj: float = 2.0

    def __post_init__(self) -> None:
        if self.low_energy_pj < 0 or self.high_energy_pj < 0 or self.same_state_energy_pj < 0:
            raise ConfigurationError("energies must be non-negative")
        if self.high_energy_pj < self.low_energy_pj:
            raise ConfigurationError(
                "high_energy_pj must be >= low_energy_pj (intermediate states are the "
                "expensive ones in Table I)"
            )

    # ----------------------------------------------------------------- LUT
    def lut(self) -> np.ndarray:
        """Return the 4x4 transition-energy lookup table.

        ``lut()[old, new]`` is the energy (pJ) of programming a cell that
        currently holds symbol ``old`` to symbol ``new``.
        """
        table = np.empty((4, 4), dtype=np.float64)
        for old in range(4):
            for new in range(4):
                table[old, new] = self.transition_energy(old, new)
        return table

    def transition_energy(self, old_symbol: int, new_symbol: int) -> float:
        """Energy (pJ) to program one cell from ``old_symbol`` to ``new_symbol``."""
        if not 0 <= old_symbol <= 3 or not 0 <= new_symbol <= 3:
            raise ConfigurationError("MLC symbols must be in [0, 3]")
        if old_symbol == new_symbol:
            return self.same_state_energy_pj
        if new_symbol & 1:
            return self.high_energy_pj
        return self.low_energy_pj

    # ------------------------------------------------------------- vectors
    def symbols_energy(self, old_symbols: np.ndarray, new_symbols: np.ndarray) -> float:
        """Total energy to program arrays of old symbols to new symbols."""
        old = np.asarray(old_symbols, dtype=np.int64)
        new = np.asarray(new_symbols, dtype=np.int64)
        if old.shape != new.shape:
            raise ConfigurationError("old and new symbol arrays must have the same shape")
        return float(self.lut()[old, new].sum())  # repro: allow[NUM001] reason=the LUT gather copies into a fresh C-contiguous array, so the pairwise sum is layout-stable; per-word parity with symbol_energy is tested

    def symbols_energy_array(self, old_symbols: np.ndarray, new_symbols: np.ndarray) -> np.ndarray:
        """Per-cell energy array for arrays of old and new symbols."""
        old = np.asarray(old_symbols, dtype=np.int64)
        new = np.asarray(new_symbols, dtype=np.int64)
        return self.lut()[old, new]

    # --------------------------------------------------------------- words
    def word_energy(self, old_word: int, new_word: int, word_bits: int = 64) -> float:
        """Energy to overwrite ``old_word`` with ``new_word`` (both MLC encoded)."""
        old_syms = split_symbols(old_word, word_bits)
        new_syms = split_symbols(new_word, word_bits)
        return float(
            sum(self.transition_energy(o, n) for o, n in zip(old_syms, new_syms))
        )

    def aux_energy(self, old_aux: int, new_aux: int) -> float:
        """Energy to update the auxiliary bits from ``old_aux`` to ``new_aux``."""
        changed = bin(old_aux ^ new_aux).count("1")
        return changed * self.aux_bit_energy_pj


@dataclass(frozen=True)
class SLCEnergyModel:
    """Per-bit write energy for single-level cells.

    SET (programming a '1') and RESET (programming a '0') energies are
    asymmetric in PCM; unchanged cells cost nothing under differential
    write.
    """

    set_energy_pj: float = 1.0
    reset_energy_pj: float = 2.0
    aux_bit_energy_pj: float = 1.0

    def __post_init__(self) -> None:
        if self.set_energy_pj < 0 or self.reset_energy_pj < 0:
            raise ConfigurationError("energies must be non-negative")

    def bit_energy(self, old_bit: int, new_bit: int) -> float:
        """Energy (pJ) to program one SLC cell from ``old_bit`` to ``new_bit``."""
        if old_bit not in (0, 1) or new_bit not in (0, 1):
            raise ConfigurationError("SLC bits must be 0 or 1")
        if old_bit == new_bit:
            return 0.0
        return self.set_energy_pj if new_bit == 1 else self.reset_energy_pj

    def word_energy(self, old_word: int, new_word: int, word_bits: int = 64) -> float:
        """Energy to overwrite an SLC word (differential write)."""
        changed = old_word ^ new_word
        set_bits = bin(changed & new_word).count("1")
        reset_bits = bin(changed & ~new_word & ((1 << word_bits) - 1)).count("1")
        return set_bits * self.set_energy_pj + reset_bits * self.reset_energy_pj

    def aux_energy(self, old_aux: int, new_aux: int) -> float:
        """Energy to update the auxiliary bits from ``old_aux`` to ``new_aux``."""
        changed = bin(old_aux ^ new_aux).count("1")
        return changed * self.aux_bit_energy_pj


#: Default MLC energy model used by every experiment unless overridden.
DEFAULT_MLC_ENERGY = MLCEnergyModel()

#: Default SLC energy model.
DEFAULT_SLC_ENERGY = SLCEnergyModel()
