"""Start-Gap wear leveling.

The paper's lifetime methodology cites Start-Gap (Qureshi et al., MICRO
2009) as the standard way PCM main memories spread writes across rows: one
spare ("gap") row is kept unused, and after every ``gap_write_interval``
serviced writes the row adjacent to the gap is copied into it, so the gap
walks through the array and the logical-to-physical mapping slowly rotates.
Hot logical rows therefore do not keep hammering the same physical cells.

The model here tracks the exact logical/physical permutation and reports
every gap movement as a ``(source, destination)`` physical-row copy so the
memory controller can perform the migration as a genuine (wearing) write.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError, MemoryModelError

__all__ = ["StartGapWearLeveler"]


class StartGapWearLeveler:
    """Start-Gap logical-to-physical row remapping.

    Parameters
    ----------
    rows:
        Number of *logical* rows exposed to the controller.  The physical
        array must provide ``rows + 1`` rows (the extra one is the gap).
    gap_write_interval:
        Number of serviced writes between gap movements (Qureshi et al.
        use 100; smaller values level more aggressively at a higher
        write-amplification cost).
    """

    def __init__(self, rows: int, gap_write_interval: int = 100):
        if rows <= 0:
            raise ConfigurationError("rows must be positive")
        if gap_write_interval <= 0:
            raise ConfigurationError("gap_write_interval must be positive")
        self.rows = rows
        self.gap_write_interval = gap_write_interval
        #: logical row -> physical row (initially the identity).
        self._logical_to_physical: Dict[int, int] = {row: row for row in range(rows)}
        #: physical row -> logical row (the gap has no entry).
        self._physical_to_logical: Dict[int, int] = {row: row for row in range(rows)}
        #: Physical index of the gap (initially the spare row at the end).
        self._gap = rows
        #: Writes serviced since the last gap movement.
        self._writes_since_move = 0
        #: Total gap movements (each movement copies one row in hardware).
        self.gap_moves = 0

    # ------------------------------------------------------------- mapping
    @property
    def physical_rows_required(self) -> int:
        """Physical rows needed to host ``rows`` logical rows plus the gap."""
        return self.rows + 1

    def physical_row(self, logical_row: int) -> int:
        """Translate a logical row index to its current physical row."""
        if not 0 <= logical_row < self.rows:
            raise MemoryModelError(
                f"logical row {logical_row} out of range [0, {self.rows})"
            )
        return self._logical_to_physical[logical_row]

    @property
    def gap_position(self) -> int:
        """Current physical position of the gap row."""
        return self._gap

    @property
    def writes_until_gap_move(self) -> int:
        """Serviced writes remaining before the next gap movement fires.

        The returned count includes the triggering write itself, so batch
        drivers that must not span a migration (the logical-to-physical
        mapping rotates with it) may group up to this many writes.
        """
        return self.gap_write_interval - self._writes_since_move

    # -------------------------------------------------------------- writes
    def record_write(self) -> Optional[Tuple[int, int]]:
        """Account one serviced write; move the gap when the interval elapses.

        Returns ``None`` when the gap did not move, otherwise the pair
        ``(source_physical_row, destination_physical_row)`` describing the
        row copy hardware performs: the row in the physical slot just below
        the gap (wrapping around the array) moves into the gap's old
        position, and that slot becomes the new gap.
        """
        self._writes_since_move += 1
        if self._writes_since_move < self.gap_write_interval:
            return None
        self._writes_since_move = 0
        self.gap_moves += 1
        total = self.rows + 1
        source = (self._gap - 1) % total
        destination = self._gap
        logical = self._physical_to_logical.pop(source)
        self._physical_to_logical[destination] = logical
        self._logical_to_physical[logical] = destination
        self._gap = source
        return (source, destination)

    # --------------------------------------------------------- diagnostics
    def mapping_snapshot(self) -> Dict[int, int]:
        """Return a copy of the current logical -> physical mapping."""
        return dict(self._logical_to_physical)

    def write_amplification(self, total_writes: int) -> float:
        """Extra writes caused by gap movement, as a fraction of ``total_writes``."""
        if total_writes <= 0:
            return 0.0
        return self.gap_moves / total_writes
