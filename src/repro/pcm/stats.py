"""Counters shared by the write-path simulators.

Every simulator accumulates the same small set of statistics for each
technique under test: how many words/rows were written, how many cells
changed state, how much write energy was spent (data plus auxiliary bits),
and how many stuck-at-wrong (SAW) cells were produced.  Keeping them in a
single dataclass makes result tables uniform across experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable

if TYPE_CHECKING:  # runtime import would be circular via repro.memctrl
    from repro.memctrl.controller import LineWriteResult

__all__ = ["WriteStats"]


@dataclass
class WriteStats:
    """Accumulated statistics for a sequence of memory writes."""

    words_written: int = 0
    rows_written: int = 0
    bits_changed: int = 0
    cells_changed: int = 0
    data_energy_pj: float = 0.0
    aux_energy_pj: float = 0.0
    saw_cells: int = 0
    saw_words: int = 0
    masked_faults: int = 0

    @property
    def total_energy_pj(self) -> float:
        """Total write energy including the auxiliary bits."""
        return self.data_energy_pj + self.aux_energy_pj

    @property
    def mean_bits_changed_per_word(self) -> float:
        """Average number of changed bits per written word."""
        if self.words_written == 0:
            return 0.0
        return self.bits_changed / self.words_written

    @property
    def mean_energy_per_word_pj(self) -> float:
        """Average write energy per word, including auxiliary bits."""
        if self.words_written == 0:
            return 0.0
        return self.total_energy_pj / self.words_written

    def add_line(self, line: "LineWriteResult", words_per_line: int) -> None:
        """Accumulate one line-write summary into these statistics.

        ``line`` is a :class:`repro.memctrl.controller.LineWriteResult`.
        This is the single accounting rule shared by the memory controller
        and :meth:`from_line_results`.
        """
        self.words_written += words_per_line
        self.rows_written += 1
        self.bits_changed += line.bits_changed
        self.cells_changed += line.cells_changed
        self.data_energy_pj += line.data_energy_pj
        self.aux_energy_pj += line.aux_energy_pj
        self.saw_cells += line.saw_cells
        self.saw_words += sum(1 for w in line.saw_bits_per_word if w)

    @classmethod
    def from_line_results(
        cls, results: "Iterable[LineWriteResult]", words_per_line: int
    ) -> "WriteStats":
        """Aggregate per-line write summaries into a :class:`WriteStats`.

        ``results`` is an iterable of
        :class:`repro.memctrl.controller.LineWriteResult`.  Wear-leveling
        migration writes have no line summary and are therefore not
        included — drive the controller without a wear leveler (as every
        builtin simulator does) or read ``controller.stats`` when migration
        accounting matters.
        """
        stats = cls()
        for line in results:
            stats.add_line(line, words_per_line)
        return stats

    def absorb(self, other: "WriteStats") -> "WriteStats":
        """Add ``other``'s counters into this instance in place.

        The batched replay path accumulates a whole trace into one
        :class:`WriteStats` and folds it into the controller's running
        totals with a single call instead of one :meth:`add_line` per
        write.  Returns ``self`` for chaining.
        """
        self.words_written += other.words_written
        self.rows_written += other.rows_written
        self.bits_changed += other.bits_changed
        self.cells_changed += other.cells_changed
        self.data_energy_pj += other.data_energy_pj
        self.aux_energy_pj += other.aux_energy_pj
        self.saw_cells += other.saw_cells
        self.saw_words += other.saw_words
        self.masked_faults += other.masked_faults
        return self

    def merge(self, other: "WriteStats") -> "WriteStats":
        """Return a new :class:`WriteStats` with the sums of both operands."""
        return WriteStats(
            words_written=self.words_written + other.words_written,
            rows_written=self.rows_written + other.rows_written,
            bits_changed=self.bits_changed + other.bits_changed,
            cells_changed=self.cells_changed + other.cells_changed,
            data_energy_pj=self.data_energy_pj + other.data_energy_pj,
            aux_energy_pj=self.aux_energy_pj + other.aux_energy_pj,
            saw_cells=self.saw_cells + other.saw_cells,
            saw_words=self.saw_words + other.saw_words,
            masked_faults=self.masked_faults + other.masked_faults,
        )

    def as_dict(self) -> Dict[str, float]:
        """Return a flat dictionary, convenient for tabulation."""
        return {
            "words_written": self.words_written,
            "rows_written": self.rows_written,
            "bits_changed": self.bits_changed,
            "cells_changed": self.cells_changed,
            "data_energy_pj": self.data_energy_pj,
            "aux_energy_pj": self.aux_energy_pj,
            "total_energy_pj": self.total_energy_pj,
            "saw_cells": self.saw_cells,
            "saw_words": self.saw_words,
            "masked_faults": self.masked_faults,
        }
