"""PCM cell definitions.

A PCM cell stores information in the resistance of a chalcogenide element.
Single-level cells (SLC) discriminate two resistance regions (one bit);
multi-level cells (MLC) divide the same range into four regions (two bits).
Following the prototype device used by the paper, the four MLC levels are
Gray coded so that adjacent resistance levels differ in a single bit:

======  ==============  ======================
level   resistance      symbol (left, right)
======  ==============  ======================
0       lowest (SET)    ``11``
1       intermediate    ``10``
2       intermediate    ``00``... (see note)
======  ==============  ======================

The exact assignment of symbols to resistance levels does not change any
result in this repository — what matters, and what Table I of the paper
encodes, is that programming a symbol whose *right digit is one* requires
the expensive program-and-verify sequence used for intermediate states,
while the other symbols can be reached with a single SET or RESET pulse.
The canonical Gray ordering used throughout is ``00 -> 01 -> 11 -> 10``
(:data:`MLC_GRAY_LEVELS`), i.e. level index ``k`` stores symbol
``MLC_GRAY_LEVELS[k]``.
"""

from __future__ import annotations

import enum
from typing import List

from repro.errors import ConfigurationError

__all__ = [
    "CellTechnology",
    "MLC_GRAY_LEVELS",
    "MLC_SYMBOL_TO_LEVEL",
    "bits_per_cell",
    "gray_level_to_symbol",
    "symbol_to_gray_level",
    "is_intermediate_symbol",
]


class CellTechnology(enum.Enum):
    """Supported PCM cell technologies."""

    SLC = "slc"
    MLC = "mlc"

    @property
    def bits_per_cell(self) -> int:
        """Number of logical bits stored per physical cell."""
        return 1 if self is CellTechnology.SLC else 2

    @property
    def levels(self) -> int:
        """Number of distinguishable resistance levels."""
        return 2 if self is CellTechnology.SLC else 4


#: Gray-code sequence of 2-bit symbols ordered from the lowest to the
#: highest resistance level.  Adjacent levels differ in exactly one bit.
MLC_GRAY_LEVELS: List[int] = [0b00, 0b01, 0b11, 0b10]

#: Inverse of :data:`MLC_GRAY_LEVELS`: symbol value -> resistance level index.
MLC_SYMBOL_TO_LEVEL = {symbol: level for level, symbol in enumerate(MLC_GRAY_LEVELS)}


def bits_per_cell(technology: CellTechnology) -> int:
    """Return the number of logical bits stored by one cell."""
    return technology.bits_per_cell


def gray_level_to_symbol(level: int) -> int:
    """Map a resistance-level index (0..3) to its Gray-coded 2-bit symbol."""
    if not 0 <= level < len(MLC_GRAY_LEVELS):
        raise ConfigurationError(f"MLC level must be in [0, 3], got {level}")
    return MLC_GRAY_LEVELS[level]


def symbol_to_gray_level(symbol: int) -> int:
    """Map a 2-bit symbol to its resistance-level index (0..3)."""
    if symbol not in MLC_SYMBOL_TO_LEVEL:
        raise ConfigurationError(f"MLC symbol must be in [0, 3], got {symbol}")
    return MLC_SYMBOL_TO_LEVEL[symbol]


def is_intermediate_symbol(symbol: int) -> bool:
    """Return True if programming ``symbol`` requires an intermediate level.

    Per Table I of the paper, the expensive transitions are exactly those
    whose *new* symbol has a right digit of one (symbols ``01`` and ``11``);
    these correspond to the partially-crystallised intermediate resistance
    states that need the long program-and-verify sequence.
    """
    if symbol not in MLC_SYMBOL_TO_LEVEL:
        raise ConfigurationError(f"MLC symbol must be in [0, 3], got {symbol}")
    return bool(symbol & 1)
