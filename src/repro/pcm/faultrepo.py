"""Runtime fault repository.

The paper assumes "some such mechanism is in place" for identifying and
tracking stuck cells at run time (it cites bit-level fault repositories
such as FLOWER and ArchShield), so that the encoder knows which cells of a
row are stuck and at which value when it selects a coset.  This module
provides that mechanism instead of letting the encoder peek at the array's
ground truth:

* after every write the controller compares the read-back row with the
  intended row (PCM writes are verified anyway);
* any mismatching cell is recorded here as a discovered stuck-at fault
  together with the value it is stuck at;
* on the next write to that row the discovered faults are presented to the
  encoder as its :class:`~repro.coding.base.WordContext` stuck mask.

The repository therefore converges to the array's true fault population
one discovery per write, which is exactly how a real fault-tracking table
behaves; the "oracle" mode of the controller remains available for
experiments that want to isolate encoder quality from discovery latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["FaultRepository"]


class FaultRepository:
    """Tracks discovered stuck cells per physical row.

    Parameters
    ----------
    rows:
        Number of physical rows covered.
    cells_per_row:
        Cells per row.
    capacity_per_row:
        Optional cap on tracked faults per row, mimicking the finite
        storage of a hardware fault table.  ``None`` means unbounded.
    """

    def __init__(self, rows: int, cells_per_row: int, capacity_per_row: Optional[int] = None):
        if rows <= 0 or cells_per_row <= 0:
            raise ConfigurationError("rows and cells_per_row must be positive")
        if capacity_per_row is not None and capacity_per_row < 0:
            raise ConfigurationError("capacity_per_row must be non-negative")
        self.rows = rows
        self.cells_per_row = cells_per_row
        self.capacity_per_row = capacity_per_row
        self._known: Dict[int, Dict[int, int]] = {}
        #: Faults that could not be recorded because a row table was full.
        self.dropped_faults = 0

    # ------------------------------------------------------------ recording
    def observe_write(
        self, row_index: int, intended_cells: np.ndarray, stored_cells: np.ndarray
    ) -> int:
        """Record any cells whose stored value differs from the intended one.

        Returns the number of *newly* discovered faults.
        """
        self._check_row(row_index)
        intended = np.asarray(intended_cells)
        stored = np.asarray(stored_cells)
        if intended.shape != stored.shape or intended.shape != (self.cells_per_row,):
            raise ConfigurationError("cell arrays must match the repository geometry")
        mismatches = np.nonzero(intended != stored)[0]
        if len(mismatches) == 0:
            return 0
        table = self._known.setdefault(row_index, {})
        discovered = 0
        for position in mismatches:
            position = int(position)
            value = int(stored[position])
            if position in table:
                table[position] = value
                continue
            if self.capacity_per_row is not None and len(table) >= self.capacity_per_row:
                self.dropped_faults += 1
                continue
            table[position] = value
            discovered += 1
        return discovered

    # --------------------------------------------------------------- access
    def known_faults(self, row_index: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(positions, stuck_values)`` discovered for one row."""
        self._check_row(row_index)
        table = self._known.get(row_index, {})
        positions = np.array(sorted(table), dtype=np.int64)
        values = np.array([table[p] for p in sorted(table)], dtype=np.int64)
        return positions, values

    def stuck_mask(self, row_index: int) -> np.ndarray:
        """Dense boolean mask of discovered stuck cells for one row."""
        positions, _ = self.known_faults(row_index)
        mask = np.zeros(self.cells_per_row, dtype=bool)
        mask[positions] = True
        return mask

    def total_known_faults(self) -> int:
        """Total number of faults currently tracked."""
        return sum(len(table) for table in self._known.values())

    def rows_with_faults(self) -> int:
        """Number of rows with at least one tracked fault."""
        return len(self._known)

    # ------------------------------------------------------------ internals
    def _check_row(self, row_index: int) -> None:
        if not 0 <= row_index < self.rows:
            raise ConfigurationError(
                f"row index {row_index} out of range [0, {self.rows})"
            )
