"""Sparse PCM array model with wear, stuck-at behaviour, and SAW accounting.

The array stores cell values (bits for SLC, 2-bit symbols for MLC) for a
memory organised as ``rows`` x ``row_bits``.  It supports the two
operating modes the paper's experiments need:

* **snapshot mode** — a pre-generated :class:`repro.pcm.faultmap.FaultMap`
  marks a fixed set of cells as stuck before the run and no wear
  accumulates (Figs. 2, 8, 9, 10);
* **lifetime mode** — every cell receives an endurance drawn from an
  :class:`repro.pcm.endurance.EnduranceModel`; each state-changing write
  increments the cell's wear and the cell becomes stuck at its current
  value once the wear reaches the endurance (Figs. 11, 12).

Writes go through :meth:`PCMArray.write_row` (or the word-granularity
convenience :meth:`PCMArray.write_word`), which applies the stuck-cell
semantics — a stuck cell silently keeps its value — and reports which
intended cell values could not be stored (stuck-at-wrong, SAW).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, MemoryModelError
from repro.pcm.cell import CellTechnology
from repro.pcm.endurance import EnduranceModel
from repro.pcm.faultmap import FaultMap
from repro.utils.rng import make_rng
from repro.utils.validation import require, require_divisible

if TYPE_CHECKING:  # pragma: no cover - annotation only; repro.faults imports repro.pcm
    from repro.faults.models import FaultModel

__all__ = ["PCMArray", "RowWriteResult", "word_to_cells", "cells_to_word"]


def word_to_cells(word: int, word_bits: int, bits_per_cell: int) -> np.ndarray:
    """Convert a word integer into an array of cell values (MSB cell first)."""
    require_divisible(word_bits, bits_per_cell, "word_bits must be a multiple of bits_per_cell")
    cells = word_bits // bits_per_cell
    mask = (1 << bits_per_cell) - 1
    if word_bits <= 64:
        shifts = np.arange(cells - 1, -1, -1, dtype=np.uint64) * np.uint64(bits_per_cell)
        return ((np.uint64(word) >> shifts) & np.uint64(mask)).astype(np.uint8)
    values = np.empty(cells, dtype=np.uint8)
    for index in range(cells):
        shift = bits_per_cell * (cells - 1 - index)
        values[index] = (word >> shift) & mask
    return values


def cells_to_word(cells: Sequence[int], bits_per_cell: int) -> int:
    """Inverse of :func:`word_to_cells`."""
    mask = (1 << bits_per_cell) - 1
    values = np.asarray(cells)
    if values.dtype.kind in "ui" and values.size * bits_per_cell <= 64:
        if values.size and (int(values.min()) < 0 or int(values.max()) > mask):
            bad = next(int(v) for v in values if int(v) < 0 or int(v) > mask)
            raise ConfigurationError(
                f"cell value {bad} does not fit in {bits_per_cell} bits"
            )
        shifts = np.arange(values.size - 1, -1, -1, dtype=np.uint64) * np.uint64(bits_per_cell)
        return int((values.astype(np.uint64) << shifts).sum(dtype=np.uint64))
    word = 0
    for value in cells:
        value = int(value)
        if value < 0 or value > mask:
            raise ConfigurationError(
                f"cell value {value} does not fit in {bits_per_cell} bits"
            )
        word = (word << bits_per_cell) | value
    return word


@dataclass
class RowWriteResult:
    """Outcome of a single row write.

    Attributes
    ----------
    old_cells:
        Cell values before the write.
    intended_cells:
        The values the caller asked to store.
    stored_cells:
        The values actually present after the write (stuck cells keep
        their stuck value).
    changed_mask:
        Boolean mask of cells whose stored value changed.
    saw_mask:
        Boolean mask of stuck cells whose stored value differs from the
        intended value (stuck-at-wrong).
    newly_stuck:
        Number of cells that exceeded their endurance during this write
        (always 0 in snapshot mode).
    """

    old_cells: np.ndarray
    intended_cells: np.ndarray
    stored_cells: np.ndarray
    changed_mask: np.ndarray
    saw_mask: np.ndarray
    newly_stuck: int = 0

    @property
    def cells_changed(self) -> int:
        """Number of cells whose stored value changed."""
        return int(self.changed_mask.sum())

    @property
    def saw_count(self) -> int:
        """Number of stuck-at-wrong cells produced by this write."""
        return int(self.saw_mask.sum())


class PCMArray:
    """A rows x cells PCM array with stuck-at and wear semantics.

    Parameters
    ----------
    rows:
        Number of rows in the array.
    row_bits:
        Row width in bits (default 512, one cache line per row).
    technology:
        :class:`CellTechnology.SLC` or :class:`CellTechnology.MLC`.
    fault_map:
        Optional pre-generated stuck-at fault map (snapshot mode).
    endurance_model:
        Optional endurance model (lifetime mode).  May be combined with a
        fault map, in which case the map's cells start out stuck.
    seed:
        Seed controlling the random initial contents and the endurance
        samples.
    word_bits:
        Word granularity used by :meth:`read_word` / :meth:`write_word`.
    fault_model:
        Optional :class:`repro.faults.models.FaultModel` instance whose
        *dynamic* device effects attach here: a model that samples
        :meth:`~repro.faults.models.FaultModel.wear_thresholds` (e.g.
        ``wear-drift``) installs per-cell stuck thresholds so cells
        transition to stuck mid-replay.  An explicit ``endurance_model``
        always wins over the fault model's thresholds.
    """

    def __init__(
        self,
        rows: int,
        row_bits: int = 512,
        technology: CellTechnology = CellTechnology.MLC,
        fault_map: Optional[FaultMap] = None,
        endurance_model: Optional[EnduranceModel] = None,
        seed: Optional[int] = 0,
        word_bits: int = 64,
        fault_model: Optional["FaultModel"] = None,
    ):
        require(rows > 0, "rows must be positive")
        require(row_bits > 0, "row_bits must be positive")
        require_divisible(row_bits, technology.bits_per_cell, "row_bits must hold whole cells")
        require_divisible(row_bits, word_bits, "row_bits must hold whole words")
        require_divisible(word_bits, technology.bits_per_cell, "word_bits must hold whole cells")
        self.rows = rows
        self.row_bits = row_bits
        self.word_bits = word_bits
        self.technology = technology
        self.bits_per_cell = technology.bits_per_cell
        self.cells_per_row = row_bits // self.bits_per_cell
        self.cells_per_word = word_bits // self.bits_per_cell
        self.words_per_row = row_bits // word_bits
        self.fault_map = fault_map
        self.endurance_model = endurance_model
        self.fault_model = fault_model
        self.seed = seed

        if fault_map is not None:
            if fault_map.rows < rows or fault_map.cells_per_row != self.cells_per_row:
                raise MemoryModelError(
                    "fault map geometry does not match the array "
                    f"(map: {fault_map.rows}x{fault_map.cells_per_row}, "
                    f"array: {rows}x{self.cells_per_row})"
                )

        rng = make_rng(seed, "pcm-array-init")
        levels = technology.levels
        self._cells = rng.integers(0, levels, size=(rows, self.cells_per_row)).astype(np.uint8)
        self._stuck = np.zeros((rows, self.cells_per_row), dtype=bool)

        if fault_map is not None:
            for row_index in fault_map.faulty_rows():
                if row_index >= rows:
                    continue
                faults = fault_map.row_faults(row_index)
                self._stuck[row_index, faults.positions] = True
                self._cells[row_index, faults.positions] = faults.stuck_values.astype(np.uint8)

        if endurance_model is not None:
            total_cells = rows * self.cells_per_row
            lifetimes = endurance_model.sample(total_cells, rng=make_rng(seed, "pcm-endurance"))
            self._endurance: Optional[np.ndarray] = lifetimes.reshape(rows, self.cells_per_row)
            self._wear: Optional[np.ndarray] = np.zeros(
                (rows, self.cells_per_row), dtype=np.int64
            )
        else:
            self._endurance = None
            self._wear = None

        if fault_model is not None and self._endurance is None:
            thresholds = fault_model.wear_thresholds(rows, self.cells_per_row, seed)
            if thresholds is not None:
                if thresholds.shape != (rows, self.cells_per_row):
                    raise MemoryModelError(
                        "fault model wear thresholds have shape "
                        f"{thresholds.shape}, expected {(rows, self.cells_per_row)}"
                    )
                self._endurance = thresholds
                self._wear = np.zeros((rows, self.cells_per_row), dtype=np.int64)

    # ---------------------------------------------------------------- reads
    def read_row(self, row_index: int) -> np.ndarray:
        """Return a copy of the current cell values of ``row_index``."""
        self._check_row(row_index)
        return self._cells[row_index].copy()

    def read_word(self, row_index: int, word_index: int) -> int:
        """Return the word at ``(row_index, word_index)`` as an integer."""
        cells = self.read_word_cells(row_index, word_index)
        return cells_to_word(cells, self.bits_per_cell)

    def read_word_cells(self, row_index: int, word_index: int) -> np.ndarray:
        """Return a copy of the cells backing one word."""
        self._check_row(row_index)
        self._check_word(word_index)
        start = word_index * self.cells_per_word
        return self._cells[row_index, start: start + self.cells_per_word].copy()

    def read_rows(self, row_indices: np.ndarray) -> np.ndarray:
        """Copies of several rows' cell values gathered in one read.

        The batch sibling of :meth:`read_row` used by the memory
        controller's replay waves: one fancy-index gather returns a
        ``(len(row_indices), cells_per_row)`` matrix.
        """
        indices = self._check_rows(row_indices)
        return self._cells[indices]

    def stuck_rows(self, row_indices: np.ndarray) -> np.ndarray:
        """Copies of several rows' stuck masks gathered in one read."""
        indices = self._check_rows(row_indices)
        return self._stuck[indices]

    def stuck_info(self, row_index: int) -> np.ndarray:
        """Return the boolean stuck mask of a row (copy)."""
        self._check_row(row_index)
        return self._stuck[row_index].copy()

    def word_stuck_info(self, row_index: int, word_index: int) -> np.ndarray:
        """Return the stuck mask of the cells backing one word (copy)."""
        self._check_row(row_index)
        self._check_word(word_index)
        start = word_index * self.cells_per_word
        return self._stuck[row_index, start: start + self.cells_per_word].copy()

    # --------------------------------------------------------------- writes
    def write_row(self, row_index: int, intended_cells: Sequence[int]) -> RowWriteResult:
        """Write a full row of cell values, honouring stuck cells and wear.

        Parameters
        ----------
        row_index:
            Target row.
        intended_cells:
            ``cells_per_row`` cell values the caller wants stored.
        """
        self._check_row(row_index)
        intended = np.asarray(intended_cells, dtype=np.uint8)
        if intended.shape != (self.cells_per_row,):
            raise MemoryModelError(
                f"expected {self.cells_per_row} cell values, got shape {intended.shape}"
            )
        if intended.max(initial=0) >= self.technology.levels:
            raise MemoryModelError("cell value outside the technology's level range")
        old, stored, changed, saw_mask, newly_stuck = self.write_row_fast(row_index, intended)
        return RowWriteResult(
            old_cells=old,
            intended_cells=intended,
            stored_cells=stored,
            changed_mask=changed,
            saw_mask=saw_mask,
            newly_stuck=newly_stuck,
        )

    def write_row_fast(
        self, row_index: int, intended: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
        """Validation-free core of :meth:`write_row` for batch drivers.

        ``intended`` must already be a ``(cells_per_row,)`` ``uint8`` array
        of in-range cell values and ``row_index`` must be valid — callers
        like :meth:`repro.memctrl.controller.MemoryController.replay_trace`
        establish both once per replay instead of once per write.  Returns
        the tuple ``(old_cells, stored_cells, changed_mask, saw_mask,
        newly_stuck)`` with exactly the values a :class:`RowWriteResult`
        would carry.
        """
        old = self._cells[row_index].copy()
        stuck = self._stuck[row_index]
        stored = np.where(stuck, old, intended)
        changed = stored != old

        newly_stuck = 0
        if self._wear is not None:
            wear_row = self._wear[row_index]
            # Branchless 0/1 add beats a boolean fancy-index increment.
            wear_row += changed
            exceeded = (~stuck) & (wear_row >= self._endurance[row_index])
            newly_stuck = int(exceeded.sum())
            if newly_stuck:
                self._stuck[row_index] |= exceeded

        self._cells[row_index] = stored
        saw_mask = self._stuck[row_index] & (stored != intended)
        return old, stored, changed, saw_mask, newly_stuck

    def write_rows_fast(
        self, row_indices: np.ndarray, intended: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Apply one write to each of several *distinct* rows at once.

        The wave sibling of :meth:`write_row_fast`: ``row_indices`` must
        name pairwise-distinct valid rows and ``intended`` must be a
        matching ``(len(row_indices), cells_per_row)`` ``uint8`` matrix of
        in-range cell values.  Because the rows are distinct, the stuck /
        wear semantics of each row are independent and the whole batch
        reduces to fancy-index gathers and scatters; every returned value
        is bit-identical to looping :meth:`write_row_fast` in order.
        Returns ``(old_rows, stored_rows, changed_mask, saw_mask,
        newly_stuck)`` with a leading batch axis (``newly_stuck`` is an
        ``int64`` vector).
        """
        old = self._cells[row_indices]
        stuck = self._stuck[row_indices]
        stored = np.where(stuck, old, intended)
        changed = stored != old

        if self._wear is not None:
            wear = self._wear[row_indices]
            wear += changed
            self._wear[row_indices] = wear
            exceeded = (~stuck) & (wear >= self._endurance[row_indices])
            newly_stuck = exceeded.sum(axis=1)
            if newly_stuck.any():
                self._stuck[row_indices] = stuck | exceeded
        else:
            newly_stuck = np.zeros(len(row_indices), dtype=np.int64)

        self._cells[row_indices] = stored
        saw_mask = self._stuck[row_indices] & (stored != intended)
        return old, stored, changed, saw_mask, newly_stuck

    def write_word(self, row_index: int, word_index: int, word: int) -> RowWriteResult:
        """Write a single word, leaving the rest of the row untouched."""
        self._check_row(row_index)
        self._check_word(word_index)
        intended_row = self._cells[row_index].copy()
        start = word_index * self.cells_per_word
        intended_row[start: start + self.cells_per_word] = word_to_cells(
            word, self.word_bits, self.bits_per_cell
        )
        return self.write_row(row_index, intended_row)

    # ---------------------------------------------------------- diagnostics
    def stuck_cell_count(self) -> int:
        """Total number of stuck cells in the array."""
        return int(self._stuck.sum())

    def wear_of_row(self, row_index: int) -> np.ndarray:
        """Return a copy of the per-cell wear counters of a row."""
        self._check_row(row_index)
        if self._wear is None:
            return np.zeros(self.cells_per_row, dtype=np.int64)
        return self._wear[row_index].copy()

    def row_cells(self) -> int:
        """Number of cells per row (convenience alias)."""
        return self.cells_per_row

    # ------------------------------------------------------------ internals
    def _check_row(self, row_index: int) -> None:
        if not 0 <= row_index < self.rows:
            raise MemoryModelError(f"row index {row_index} out of range [0, {self.rows})")

    def _check_rows(self, row_indices: np.ndarray) -> np.ndarray:
        indices = np.asarray(row_indices, dtype=np.intp)
        if indices.size and (
            int(indices.min()) < 0 or int(indices.max()) >= self.rows
        ):
            raise MemoryModelError(
                f"row indices must lie in [0, {self.rows}), got {row_indices!r}"
            )
        return indices

    def _check_word(self, word_index: int) -> None:
        if not 0 <= word_index < self.words_per_row:
            raise MemoryModelError(
                f"word index {word_index} out of range [0, {self.words_per_row})"
            )
