"""Phase-change-memory (PCM) device and array models.

This package provides the memory substrate that every experiment in the
paper writes into:

* :mod:`repro.pcm.cell` — single-level (SLC) and 4-level (MLC) cell
  definitions with the Gray-coded level ordering used by the paper.
* :mod:`repro.pcm.energy` — the Table I symbol-transition write-energy
  model for MLC PCM and a simple asymmetric SLC model.
* :mod:`repro.pcm.endurance` — per-cell lifetime sampling (normal
  distribution around a mean write endurance with process variation).
* :mod:`repro.pcm.faultmap` — pre-generated stuck-at fault maps at a fixed
  incidence rate, with optional spatial (row-level) clustering.
* :mod:`repro.pcm.array` — a sparse, word/row addressable memory array
  that applies writes, accumulates wear, turns worn-out cells into
  stuck-at cells, and reports stuck-at-wrong (SAW) statistics.
* :mod:`repro.pcm.stats` — counters shared by the simulators.
"""

from repro.pcm.cell import CellTechnology, MLC_GRAY_LEVELS, gray_level_to_symbol, symbol_to_gray_level
from repro.pcm.energy import MLCEnergyModel, SLCEnergyModel, DEFAULT_MLC_ENERGY
from repro.pcm.endurance import EnduranceModel
from repro.pcm.faultmap import FaultMap, RowFaults
from repro.pcm.faultrepo import FaultRepository
from repro.pcm.array import PCMArray, RowWriteResult
from repro.pcm.stats import WriteStats
from repro.pcm.wearlevel import StartGapWearLeveler

__all__ = [
    "CellTechnology",
    "DEFAULT_MLC_ENERGY",
    "EnduranceModel",
    "FaultMap",
    "FaultRepository",
    "MLCEnergyModel",
    "MLC_GRAY_LEVELS",
    "PCMArray",
    "RowFaults",
    "RowWriteResult",
    "SLCEnergyModel",
    "StartGapWearLeveler",
    "WriteStats",
    "gray_level_to_symbol",
    "symbol_to_gray_level",
]
