"""Pre-generated stuck-at fault maps.

Several experiments in the paper (Figs. 2, 8, 9, 10) stress the encoders
against a memory "snapshot" with an extreme, fixed fault incidence rate of
1e-2: a fraction of cells is already stuck (at a random symbol) before the
experiment starts and no additional wear accumulates during the run.  This
module generates those maps.

Faults are expressed at *cell* granularity: for SLC a cell is one bit, for
MLC a cell is one 2-bit symbol that is stuck at one of the four levels.
Optionally, faults can be spatially clustered so that rows containing one
fault are more likely to contain several (process variation correlates
weak cells within a row, Section II-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, MemoryModelError
from repro.pcm.cell import CellTechnology
from repro.utils.validation import require, require_in_range

__all__ = ["RowFaults", "FaultMap"]


@dataclass(frozen=True)
class RowFaults:
    """Faulty cells of a single row.

    Attributes
    ----------
    positions:
        Sorted cell indices (within the row) that are stuck.
    stuck_values:
        The value each stuck cell holds (bit for SLC, symbol for MLC),
        aligned with ``positions``.
    """

    positions: np.ndarray
    stuck_values: np.ndarray

    def __post_init__(self) -> None:
        if len(self.positions) != len(self.stuck_values):
            raise ConfigurationError("positions and stuck_values must have equal length")

    @property
    def count(self) -> int:
        """Number of faulty cells in the row."""
        return int(len(self.positions))

    def in_word(self, word_index: int, cells_per_word: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return the faults that fall inside one word of the row.

        Parameters
        ----------
        word_index:
            Index of the word within the row.
        cells_per_word:
            Number of cells per word (64 for SLC words, 32 for MLC words).

        Returns
        -------
        tuple
            ``(local_positions, stuck_values)`` where positions are
            relative to the start of the word.
        """
        start = word_index * cells_per_word
        end = start + cells_per_word
        mask = (self.positions >= start) & (self.positions < end)
        return self.positions[mask] - start, self.stuck_values[mask]


class FaultMap:
    """A sparse map of stuck-at cells for a memory of ``rows`` x ``cells_per_row``.

    Parameters
    ----------
    rows:
        Number of memory rows covered by the map.
    cells_per_row:
        Cells per row (256 for a 512-bit MLC row, 512 for a 512-bit SLC row).
    technology:
        Cell technology; determines the range of stuck values.
    fault_rate:
        Probability that any given cell is stuck (paper: 1e-2 for the
        stress-test snapshots).
    clustering:
        Spatial-correlation knob in ``[0, 1)``.  Zero gives independent
        faults; larger values concentrate the same total number of faults
        into fewer rows, mimicking correlated process variation.
    stuck_values:
        Which values a failed cell can be stuck at.  ``"extremes"`` (the
        default) restricts MLC cells to the two end-of-range resistance
        states of the Gray sequence (the physical stuck-at-SET /
        stuck-at-RESET failure modes of Section II-A); ``"any"`` allows any
        level, which models mid-range drift failures.  SLC cells always
        stick at 0 or 1.
    seed:
        Seed for the map; two maps built with the same parameters and seed
        are identical.
    model:
        Name of the :class:`repro.faults.models.FaultModel` that decides
        *which* cells start out stuck.  The default, ``"static-stuck-at"``,
        reproduces the historical generator bit for bit; other registered
        models (``"row-correlated"``, ``"transient"``, ``"wear-drift"``)
        reshape or empty the snapshot — their dynamic effects live in
        :class:`repro.pcm.array.PCMArray` and the memory controller.
    """

    def __init__(
        self,
        rows: int,
        cells_per_row: int,
        technology: CellTechnology = CellTechnology.MLC,
        fault_rate: float = 1e-2,
        clustering: float = 0.0,
        stuck_values: str = "extremes",
        seed: Optional[int] = 0,
        model: str = "static-stuck-at",
    ):
        require(rows > 0, "rows must be positive")
        require(cells_per_row > 0, "cells_per_row must be positive")
        require_in_range(fault_rate, 0.0, 1.0, "fault_rate")
        require_in_range(clustering, 0.0, 0.999, "clustering")
        require(stuck_values in ("extremes", "any"), "stuck_values must be 'extremes' or 'any'")
        self.rows = rows
        self.cells_per_row = cells_per_row
        self.technology = technology
        self.fault_rate = fault_rate
        self.clustering = clustering
        self.stuck_values = stuck_values
        self.seed = seed
        self.model = model
        self._rows: Dict[int, RowFaults] = {}
        self._generate()

    # ------------------------------------------------------------ creation
    def _generate(self) -> None:
        # Imported here (not at module top) because the fault-model zoo
        # itself imports RowFaults from this module.
        from repro.faults.registry import make_fault_model

        self._rows = make_fault_model(self.model).stuck_cells(
            rows=self.rows,
            cells_per_row=self.cells_per_row,
            technology=self.technology,
            fault_rate=self.fault_rate,
            clustering=self.clustering,
            stuck_values=self.stuck_values,
            seed=self.seed,
        )

    # -------------------------------------------------------------- access
    def row_faults(self, row_index: int) -> RowFaults:
        """Return the faults of ``row_index`` (possibly empty)."""
        if not 0 <= row_index < self.rows:
            raise MemoryModelError(
                f"row index {row_index} outside fault map with {self.rows} rows"
            )
        if row_index in self._rows:
            return self._rows[row_index]
        empty = np.empty(0, dtype=np.int64)
        return RowFaults(positions=empty, stuck_values=empty)

    def has_faults(self, row_index: int) -> bool:
        """Return True if ``row_index`` contains at least one stuck cell."""
        return row_index in self._rows

    def faulty_rows(self) -> Iterator[int]:
        """Iterate over the indices of rows that contain faults."""
        return iter(sorted(self._rows))

    @property
    def total_faults(self) -> int:
        """Total number of stuck cells in the map."""
        return sum(faults.count for faults in self._rows.values())

    @property
    def observed_fault_rate(self) -> float:
        """Fraction of cells that are stuck (empirical rate of the map)."""
        return self.total_faults / float(self.rows * self.cells_per_row)

    def stuck_array(self, row_index: int) -> Tuple[np.ndarray, np.ndarray]:
        """Dense per-cell view of one row: ``(is_stuck, stuck_value)`` arrays."""
        faults = self.row_faults(row_index)
        is_stuck = np.zeros(self.cells_per_row, dtype=bool)
        stuck_value = np.zeros(self.cells_per_row, dtype=np.int64)
        is_stuck[faults.positions] = True
        stuck_value[faults.positions] = faults.stuck_values
        return is_stuck, stuck_value
