"""Pre-generated stuck-at fault maps.

Several experiments in the paper (Figs. 2, 8, 9, 10) stress the encoders
against a memory "snapshot" with an extreme, fixed fault incidence rate of
1e-2: a fraction of cells is already stuck (at a random symbol) before the
experiment starts and no additional wear accumulates during the run.  This
module generates those maps.

Faults are expressed at *cell* granularity: for SLC a cell is one bit, for
MLC a cell is one 2-bit symbol that is stuck at one of the four levels.
Optionally, faults can be spatially clustered so that rows containing one
fault are more likely to contain several (process variation correlates
weak cells within a row, Section II-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, MemoryModelError
from repro.pcm.cell import CellTechnology
from repro.utils.rng import make_rng
from repro.utils.validation import require, require_in_range

__all__ = ["RowFaults", "FaultMap"]


@dataclass(frozen=True)
class RowFaults:
    """Faulty cells of a single row.

    Attributes
    ----------
    positions:
        Sorted cell indices (within the row) that are stuck.
    stuck_values:
        The value each stuck cell holds (bit for SLC, symbol for MLC),
        aligned with ``positions``.
    """

    positions: np.ndarray
    stuck_values: np.ndarray

    def __post_init__(self) -> None:
        if len(self.positions) != len(self.stuck_values):
            raise ConfigurationError("positions and stuck_values must have equal length")

    @property
    def count(self) -> int:
        """Number of faulty cells in the row."""
        return int(len(self.positions))

    def in_word(self, word_index: int, cells_per_word: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return the faults that fall inside one word of the row.

        Parameters
        ----------
        word_index:
            Index of the word within the row.
        cells_per_word:
            Number of cells per word (64 for SLC words, 32 for MLC words).

        Returns
        -------
        tuple
            ``(local_positions, stuck_values)`` where positions are
            relative to the start of the word.
        """
        start = word_index * cells_per_word
        end = start + cells_per_word
        mask = (self.positions >= start) & (self.positions < end)
        return self.positions[mask] - start, self.stuck_values[mask]


class FaultMap:
    """A sparse map of stuck-at cells for a memory of ``rows`` x ``cells_per_row``.

    Parameters
    ----------
    rows:
        Number of memory rows covered by the map.
    cells_per_row:
        Cells per row (256 for a 512-bit MLC row, 512 for a 512-bit SLC row).
    technology:
        Cell technology; determines the range of stuck values.
    fault_rate:
        Probability that any given cell is stuck (paper: 1e-2 for the
        stress-test snapshots).
    clustering:
        Spatial-correlation knob in ``[0, 1)``.  Zero gives independent
        faults; larger values concentrate the same total number of faults
        into fewer rows, mimicking correlated process variation.
    stuck_values:
        Which values a failed cell can be stuck at.  ``"extremes"`` (the
        default) restricts MLC cells to the two end-of-range resistance
        states of the Gray sequence (the physical stuck-at-SET /
        stuck-at-RESET failure modes of Section II-A); ``"any"`` allows any
        level, which models mid-range drift failures.  SLC cells always
        stick at 0 or 1.
    seed:
        Seed for the map; two maps built with the same parameters and seed
        are identical.
    """

    def __init__(
        self,
        rows: int,
        cells_per_row: int,
        technology: CellTechnology = CellTechnology.MLC,
        fault_rate: float = 1e-2,
        clustering: float = 0.0,
        stuck_values: str = "extremes",
        seed: Optional[int] = 0,
    ):
        require(rows > 0, "rows must be positive")
        require(cells_per_row > 0, "cells_per_row must be positive")
        require_in_range(fault_rate, 0.0, 1.0, "fault_rate")
        require_in_range(clustering, 0.0, 0.999, "clustering")
        require(stuck_values in ("extremes", "any"), "stuck_values must be 'extremes' or 'any'")
        self.rows = rows
        self.cells_per_row = cells_per_row
        self.technology = technology
        self.fault_rate = fault_rate
        self.clustering = clustering
        self.stuck_values = stuck_values
        self.seed = seed
        self._rows: Dict[int, RowFaults] = {}
        self._generate()

    # ------------------------------------------------------------ creation
    def _generate(self) -> None:
        rng = make_rng(self.seed, "faultmap")
        total_cells = self.rows * self.cells_per_row
        expected_faults = int(round(total_cells * self.fault_rate))
        if expected_faults == 0:
            return
        max_value = self.technology.levels
        if self.clustering <= 0.0:
            # Independent faults: draw the number per row from a binomial.
            fault_counts = rng.binomial(self.cells_per_row, self.fault_rate, size=self.rows)
        else:
            # Concentrate the same expected number of faults into a subset
            # of "weak" rows.
            weak_fraction = max(1.0 - self.clustering, 1.0 / self.rows)
            weak_rows = max(1, int(round(self.rows * weak_fraction)))
            per_weak_row_rate = min(1.0, self.fault_rate / weak_fraction)
            fault_counts = np.zeros(self.rows, dtype=np.int64)
            weak_indices = rng.choice(self.rows, size=weak_rows, replace=False)
            fault_counts[weak_indices] = rng.binomial(
                self.cells_per_row, per_weak_row_rate, size=weak_rows
            )
        if self.technology is CellTechnology.MLC and self.stuck_values == "extremes":
            # Physical stuck-at faults land in the extreme resistance states
            # (full SET / full RESET), i.e. the two ends of the Gray level
            # sequence.
            from repro.pcm.cell import MLC_GRAY_LEVELS

            allowed_values = np.array([MLC_GRAY_LEVELS[0], MLC_GRAY_LEVELS[-1]], dtype=np.int64)
        else:
            allowed_values = np.arange(max_value, dtype=np.int64)
        for row_index in np.nonzero(fault_counts)[0]:
            count = int(fault_counts[row_index])
            positions = np.sort(
                rng.choice(self.cells_per_row, size=count, replace=False)
            ).astype(np.int64)
            stuck_values = allowed_values[
                rng.integers(0, len(allowed_values), size=count)
            ].astype(np.int64)
            self._rows[int(row_index)] = RowFaults(positions=positions, stuck_values=stuck_values)

    # -------------------------------------------------------------- access
    def row_faults(self, row_index: int) -> RowFaults:
        """Return the faults of ``row_index`` (possibly empty)."""
        if not 0 <= row_index < self.rows:
            raise MemoryModelError(
                f"row index {row_index} outside fault map with {self.rows} rows"
            )
        if row_index in self._rows:
            return self._rows[row_index]
        empty = np.empty(0, dtype=np.int64)
        return RowFaults(positions=empty, stuck_values=empty)

    def has_faults(self, row_index: int) -> bool:
        """Return True if ``row_index`` contains at least one stuck cell."""
        return row_index in self._rows

    def faulty_rows(self) -> Iterator[int]:
        """Iterate over the indices of rows that contain faults."""
        return iter(sorted(self._rows))

    @property
    def total_faults(self) -> int:
        """Total number of stuck cells in the map."""
        return sum(faults.count for faults in self._rows.values())

    @property
    def observed_fault_rate(self) -> float:
        """Fraction of cells that are stuck (empirical rate of the map)."""
        return self.total_faults / float(self.rows * self.cells_per_row)

    def stuck_array(self, row_index: int) -> Tuple[np.ndarray, np.ndarray]:
        """Dense per-cell view of one row: ``(is_stuck, stuck_value)`` arrays."""
        faults = self.row_faults(row_index)
        is_stuck = np.zeros(self.cells_per_row, dtype=bool)
        stuck_value = np.zeros(self.cells_per_row, dtype=np.int64)
        is_stuck[faults.positions] = True
        stuck_value[faults.positions] = faults.stuck_values
        return is_stuck, stuck_value
