"""Cell-endurance (wear-out) model.

The lifetime experiments of the paper assign every PCM cell a write
endurance drawn from a normal distribution around a nominal mean of 1e8
writes with a coefficient of variation of 0.2 (process variation), after
which the cell becomes stuck at its current value.  This module samples
those per-cell lifetimes.

Because a pure-Python simulation cannot replay 1e8 writes per cell, the
experiments in this repository scale the mean endurance down (the default
used by the lifetime benches is a few thousand writes) while keeping the
coefficient of variation; lifetime results are always reported *relative*
to the unencoded baseline, so the scaling preserves the orderings and
improvement ratios the paper reports (see DESIGN.md, substitution table).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import make_rng

__all__ = ["EnduranceModel"]


@dataclass(frozen=True)
class EnduranceModel:
    """Per-cell endurance distribution.

    Parameters
    ----------
    mean_writes:
        Mean number of state-changing writes a cell tolerates before it
        becomes stuck.  The paper uses 1e8; the scaled-down experiments in
        this repository typically use 2e3 - 2e4.
    coefficient_of_variation:
        Standard deviation divided by the mean (paper: 0.2).
    minimum_writes:
        Hard floor applied after sampling so no cell starts out dead.
    """

    mean_writes: float = 1.0e8
    coefficient_of_variation: float = 0.2
    minimum_writes: int = 1

    def __post_init__(self) -> None:
        if self.mean_writes <= 0:
            raise ConfigurationError("mean_writes must be positive")
        if self.coefficient_of_variation < 0:
            raise ConfigurationError("coefficient_of_variation must be non-negative")
        if self.minimum_writes < 1:
            raise ConfigurationError("minimum_writes must be at least 1")

    @property
    def std_writes(self) -> float:
        """Standard deviation of the endurance distribution."""
        return self.mean_writes * self.coefficient_of_variation

    def sample(
        self,
        count: int,
        rng: Optional[np.random.Generator] = None,
        seed: Optional[int] = None,
    ) -> np.ndarray:
        """Sample per-cell lifetimes.

        Parameters
        ----------
        count:
            Number of cells.
        rng:
            Generator to draw from; if omitted one is built from ``seed``.
        seed:
            Seed for a new generator when ``rng`` is not supplied.

        Returns
        -------
        numpy.ndarray
            ``int64`` array of length ``count`` with each cell's endurance
            (number of state changes it tolerates).
        """
        if count < 0:
            raise ConfigurationError("count must be non-negative")
        if rng is None:
            rng = make_rng(seed, "endurance")
        lifetimes = rng.normal(self.mean_writes, self.std_writes, size=count)
        lifetimes = np.maximum(np.rint(lifetimes), self.minimum_writes)
        return lifetimes.astype(np.int64)

    def scaled(self, factor: float) -> "EnduranceModel":
        """Return a copy with the mean endurance multiplied by ``factor``.

        Used by the lifetime benches to trade simulation time for fidelity
        while keeping the coefficient of variation fixed.
        """
        if factor <= 0:
            raise ConfigurationError("scaling factor must be positive")
        return EnduranceModel(
            mean_writes=self.mean_writes * factor,
            coefficient_of_variation=self.coefficient_of_variation,
            minimum_writes=self.minimum_writes,
        )
