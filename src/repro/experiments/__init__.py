"""Experiment entry points — one per figure/table of the paper.

Every module exposes a ``run(...) -> ResultTable`` function that regenerates
the corresponding figure's data series (scaled down where the paper's
workload sizes are impractical in pure Python; see DESIGN.md).  The
:mod:`repro.experiments.registry` maps experiment identifiers ("fig1",
"fig7", "table1", ...) onto those functions, and
:mod:`repro.experiments.runner` provides a small command-line front end::

    python -m repro.experiments.runner fig7
"""

from repro.experiments.registry import available_experiments, get_experiment, run_experiment

__all__ = ["available_experiments", "get_experiment", "run_experiment"]
