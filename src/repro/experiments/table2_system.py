"""Table II — architecture parameters of the performance study."""

from __future__ import annotations

from repro.perf.config import TABLE_II_SYSTEM, SystemConfig
from repro.sim.results import ResultTable

__all__ = ["run"]


def run(system: SystemConfig = TABLE_II_SYSTEM) -> ResultTable:
    """Render the Table II system configuration used by the Fig. 13 model."""
    table = ResultTable(
        title="Table II — architecture parameters for the performance study",
        columns=["parameter", "value"],
    )
    table.append(parameter="cores (out-of-order)", value=system.cores)
    table.append(parameter="issue width", value=system.issue_width)
    table.append(parameter="frequency (GHz)", value=system.frequency_ghz)
    table.append(parameter="L1 (KiB inst + data)", value=f"{system.l1_kib}+{system.l1_kib}")
    table.append(parameter="L2 per core (KiB)", value=system.l2_kib_per_core)
    table.append(parameter="cache block (B)", value=system.cache_block_bytes)
    table.append(parameter="main memory (GiB, MLC PCM)", value=system.memory_gib)
    table.append(parameter="row size (bits)", value=system.row_bits)
    table.append(parameter="word size (bits)", value=system.word_bits)
    table.append(parameter="channels", value=system.channels)
    table.append(parameter="ranks per channel", value=system.ranks_per_channel)
    table.append(parameter="banks per rank", value=system.banks_per_rank)
    table.append(parameter="baseline access delay (ns)", value=system.base_access_delay_ns)
    return table
