"""Fig. 7 — write energy of RCC / VCC / VCC-stored / unencoded vs. coset count."""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence, Union

from repro.campaign.engine import ProgressCallback
from repro.campaign.store import ResultStore
from repro.sim.energy_sim import EnergyStudyConfig, random_data_energy_study
from repro.sim.results import ResultTable

__all__ = ["run"]


def run(
    coset_counts: Sequence[int] = (32, 64, 128, 256),
    rows: int = 96,
    num_writes: int = 250,
    seed: int = 2022,
    jobs: int = 1,
    store_dir: Union[ResultStore, str, Path, None] = None,
    progress: Optional[ProgressCallback] = None,
) -> ResultTable:
    """Regenerate the Fig. 7 comparison on a scaled-down random workload.

    ``jobs`` fans the coset × technique cells out over worker processes
    through the campaign engine (rows are bit-identical for any count);
    ``store_dir`` enables cached resume across runs.
    """
    config = EnergyStudyConfig(rows=rows, num_writes=num_writes, seed=seed)
    return random_data_energy_study(
        coset_counts=coset_counts,
        config=config,
        jobs=jobs,
        store=store_dir,
        progress=progress,
    )
