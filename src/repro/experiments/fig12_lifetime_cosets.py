"""Fig. 12 — mean writes-to-failure vs. coset count for every technique."""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence, Union

from repro.campaign.engine import ProgressCallback
from repro.campaign.store import ResultStore
from repro.sim.lifetime_sim import (
    DEFAULT_LIFETIME_TECHNIQUES,
    LifetimeStudyConfig,
    mean_lifetime_by_coset_count,
)
from repro.sim.results import ResultTable

__all__ = ["run"]


def run(
    coset_counts: Sequence[int] = (32, 64, 128, 256),
    benchmarks: Sequence[str] = ("lbm", "mcf"),
    config: Optional[LifetimeStudyConfig] = None,
    repetitions: int = 1,
    jobs: int = 1,
    store_dir: Union[ResultStore, str, Path, None] = None,
    progress: Optional[ProgressCallback] = None,
    fault_model: Optional[str] = None,
) -> ResultTable:
    """Regenerate Fig. 12 on the scaled-down memory/endurance configuration.

    ``jobs`` fans the coset × technique × benchmark × repetition cells out
    over worker processes through the campaign engine (rows are
    bit-identical for any count); ``store_dir`` enables cached resume;
    ``repetitions`` adds paired seeds exactly like the Fig. 11 sweep.
    """
    return mean_lifetime_by_coset_count(
        coset_counts=coset_counts,
        benchmarks=benchmarks,
        techniques=DEFAULT_LIFETIME_TECHNIQUES,
        config=config or LifetimeStudyConfig(),
        repetitions=repetitions,
        jobs=jobs,
        store=store_dir,
        progress=progress,
        fault_model=fault_model,
    )
