"""Fig. 12 — mean writes-to-failure vs. coset count for every technique."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.sim.lifetime_sim import (
    DEFAULT_LIFETIME_TECHNIQUES,
    LifetimeStudyConfig,
    mean_lifetime_by_coset_count,
)
from repro.sim.results import ResultTable

__all__ = ["run"]


def run(
    coset_counts: Sequence[int] = (32, 64, 128, 256),
    benchmarks: Sequence[str] = ("lbm", "mcf"),
    config: Optional[LifetimeStudyConfig] = None,
) -> ResultTable:
    """Regenerate Fig. 12 on the scaled-down memory/endurance configuration."""
    return mean_lifetime_by_coset_count(
        coset_counts=coset_counts,
        benchmarks=benchmarks,
        techniques=DEFAULT_LIFETIME_TECHNIQUES,
        config=config or LifetimeStudyConfig(),
    )
