"""Command-line front end for the experiment registry.

Usage::

    python -m repro.experiments.runner --list
    python -m repro.experiments.runner fig1 fig7
    python -m repro.experiments.runner all --json-dir results/
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.experiments.registry import available_experiments, run_experiment

__all__ = ["main"]


def main(argv: Optional[List[str]] = None) -> int:
    """Run the requested experiments and print their tables."""
    parser = argparse.ArgumentParser(description="Regenerate the paper's figures and tables")
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment identifiers (e.g. fig1 fig7 table1) or 'all'",
    )
    parser.add_argument("--list", action="store_true", help="list available experiments and exit")
    parser.add_argument(
        "--json-dir",
        type=Path,
        default=None,
        help="also write each result table as JSON into this directory",
    )
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        print("available experiments:")
        for name in available_experiments():
            print(f"  {name}")
        return 0

    names = args.experiments
    if len(names) == 1 and names[0].lower() == "all":
        names = available_experiments()

    for name in names:
        table = run_experiment(name)
        print(table.format())
        print()
        if args.json_dir is not None:
            args.json_dir.mkdir(parents=True, exist_ok=True)
            table.to_json(args.json_dir / f"{name}.json")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    sys.exit(main())
