"""Command-line front end for the experiment registry.

Usage::

    python -m repro.experiments.runner --list
    python -m repro.experiments.runner fig1 fig7
    python -m repro.experiments.runner all --json-dir results/
    python -m repro.experiments.runner fig9 fig10 --jobs 4 --store-dir .campaign-store

``--jobs N`` fans the campaign-backed experiments (fig1/fig2/fig7/fig8
and fig9/fig10/fig11/fig12/fig13) out over N worker processes through
the campaign engine (:mod:`repro.campaign`); results are bit-identical
to a serial run.
``--store-dir`` caches completed sweep cells on disk, so re-running an
interrupted sweep resumes instead of starting over.  Experiments whose
entry points take no ``jobs`` parameter simply run serially.

Unknown experiment identifiers exit with status 2 and the list of
available experiments instead of a traceback.
"""

from __future__ import annotations

import argparse
import inspect
import sys
from pathlib import Path
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.experiments.registry import available_experiments, get_experiment, run_experiment

__all__ = ["main"]


def _sweep_kwargs(name: str, jobs: int, store_dir: Optional[Path]) -> dict:
    """Campaign keyword arguments accepted by this experiment's entry point."""
    parameters = inspect.signature(get_experiment(name)).parameters
    kwargs = {}
    if "jobs" in parameters:
        kwargs["jobs"] = jobs
    if "store_dir" in parameters and store_dir is not None:
        kwargs["store_dir"] = store_dir
    return kwargs


def main(argv: Optional[List[str]] = None) -> int:
    """Run the requested experiments and print their tables."""
    parser = argparse.ArgumentParser(description="Regenerate the paper's figures and tables")
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment identifiers (e.g. fig1 fig7 table1) or 'all'",
    )
    parser.add_argument("--list", action="store_true", help="list available experiments and exit")
    parser.add_argument(
        "--json-dir",
        type=Path,
        default=None,
        help="also write each result table as JSON into this directory",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the benchmark-sweep experiments (default: 1, serial)",
    )
    parser.add_argument(
        "--store-dir",
        type=Path,
        default=None,
        help="campaign result store for the sweep experiments (enables caching and resume)",
    )
    args = parser.parse_args(argv)

    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    if args.list or not args.experiments:
        print("available experiments:")
        for name in available_experiments():
            print(f"  {name}")
        return 0

    names = args.experiments
    if len(names) == 1 and names[0].lower() == "all":
        names = available_experiments()

    try:
        for name in names:
            kwargs = _sweep_kwargs(name, args.jobs, args.store_dir)
            table = run_experiment(name, **kwargs)
            print(table.format())
            print()
            if args.json_dir is not None:
                args.json_dir.mkdir(parents=True, exist_ok=True)
                table.to_json(args.json_dir / f"{name}.json")
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        print("available experiments:", file=sys.stderr)
        for name in available_experiments():
            print(f"  {name}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    sys.exit(main())
