"""Fig. 6 — encoder area, energy, and delay vs. coset count."""

from __future__ import annotations

from typing import Sequence

from repro.hardware.synthesis import fig6_sweep
from repro.sim.results import ResultTable

__all__ = ["run"]


def run(coset_counts: Sequence[int] = (32, 64, 128, 256)) -> ResultTable:
    """Regenerate the Fig. 6 sweep from the analytic hardware model."""
    table = ResultTable(
        title="Fig. 6 — coset encoder hardware (45 nm analytic model)",
        columns=["cosets", "design", "area_um2", "energy_pj", "delay_ps"],
        notes="substitute for the paper's Cadence synthesis flow (see DESIGN.md)",
    )
    for estimate in fig6_sweep(coset_counts):
        table.append(
            cosets=estimate.design.num_cosets,
            design=estimate.design.label,
            area_um2=estimate.area_um2,
            energy_pj=estimate.energy_pj,
            delay_ps=estimate.delay_ps,
        )
    return table
