"""Fig. 1 — analytical reduction in changed bits: RCC vs. BCC on random data."""

from __future__ import annotations

from typing import Sequence

from repro.core.analytical import reduction_percent_bcc, reduction_percent_rcc
from repro.sim.results import ResultTable

__all__ = ["run"]


def run(n: int = 64, coset_counts: Sequence[int] = (2, 4, 16, 256)) -> ResultTable:
    """Regenerate Fig. 1: % reduction in changed bits vs. coset count.

    BCC wins for small candidate counts; RCC overtakes at N = 16 and wins
    clearly at N = 256, which is the observation motivating random cosets
    for encrypted data.
    """
    table = ResultTable(
        title="Fig. 1 — reduction in changed bits (random data, closed form)",
        columns=["cosets", "bcc_reduction_percent", "rcc_reduction_percent"],
        notes=f"block size n = {n} bits; Eq. (1)/(2) of the paper",
    )
    for count in coset_counts:
        table.append(
            cosets=count,
            bcc_reduction_percent=reduction_percent_bcc(n, count),
            rcc_reduction_percent=reduction_percent_rcc(n, count),
        )
    return table
