"""Fig. 1 — analytical reduction in changed bits: RCC vs. BCC on random data.

The closed forms (Eq. (1)/(2) of the paper, :mod:`repro.core.analytical`)
are cheap, but the figure is still a sweep over coset counts — so it runs
through the campaign engine like every other figure grid: one
``fig1-analysis-cell`` task per count, bit-identical rows at any
``jobs`` value, and cached resume when a store is supplied.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.campaign.engine import ProgressCallback, run_campaign
from repro.campaign.spec import Task
from repro.campaign.store import ResultStore
from repro.campaign.tasks import register_task
from repro.core.analytical import reduction_percent_bcc, reduction_percent_rcc
from repro.errors import ConfigurationError
from repro.sim.harness import checked_coset_counts
from repro.sim.results import ResultTable

__all__ = ["coding_analysis_tasks", "run"]


@register_task(
    "fig1-analysis-cell",
    description="closed-form BCC/RCC bit-change reduction at one coset count (Fig. 1 cell)",
)
def _fig1_analysis_cell(params: Dict[str, Any]) -> List[Dict[str, Any]]:
    """One coset-count cell of the Fig. 1 series (pure closed form)."""
    n = params["n"]
    cosets = params["cosets"]
    return [
        {
            "cosets": cosets,
            "bcc_reduction_percent": reduction_percent_bcc(n, cosets),
            "rcc_reduction_percent": reduction_percent_rcc(n, cosets),
        }
    ]


def coding_analysis_tasks(
    n: int = 64, coset_counts: Sequence[int] = (2, 4, 16, 256)
) -> List[Task]:
    """The Fig. 1 series as campaign tasks, one per coset count."""
    if n <= 0:
        raise ConfigurationError(f"block size n must be positive, got {n}")
    return [
        Task(kind="fig1-analysis-cell", params={"n": int(n), "cosets": count})
        for count in checked_coset_counts(coset_counts, minimum=1)
    ]


def run(
    n: int = 64,
    coset_counts: Sequence[int] = (2, 4, 16, 256),
    jobs: int = 1,
    store_dir: Union[ResultStore, str, Path, None] = None,
    progress: Optional[ProgressCallback] = None,
) -> ResultTable:
    """Regenerate Fig. 1: % reduction in changed bits vs. coset count.

    BCC wins for small candidate counts; RCC overtakes at N = 16 and wins
    clearly at N = 256, which is the observation motivating random cosets
    for encrypted data.

    ``jobs`` fans the per-count cells out over worker processes through
    the campaign engine (rows are bit-identical for any count);
    ``store_dir`` enables cached resume across runs.
    """
    tasks = coding_analysis_tasks(n, coset_counts)
    result = run_campaign(tasks, store=store_dir, jobs=jobs, progress=progress)
    table = ResultTable(
        title="Fig. 1 — reduction in changed bits (random data, closed form)",
        columns=["cosets", "bcc_reduction_percent", "rcc_reduction_percent"],
        notes=f"block size n = {n} bits; Eq. (1)/(2) of the paper",
    )
    return table.extend(result.rows())
