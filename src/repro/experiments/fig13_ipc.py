"""Fig. 13 — normalised IPC of DBI/Flipcy, VCC, and RCC (Table II system)."""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.campaign.engine import ProgressCallback, run_campaign
from repro.campaign.spec import Task
from repro.campaign.store import ResultStore
from repro.campaign.tasks import register_task
from repro.hardware.synthesis import DesignPoint, estimate_design
from repro.perf.config import TABLE_II_SYSTEM, SystemConfig
from repro.perf.timing import PerformanceModel
from repro.sim.results import ResultTable
from repro.traces.spec import list_benchmarks

__all__ = ["run", "sweep_tasks", "technique_delays_ns"]


def technique_delays_ns(num_cosets: int = 256) -> Dict[str, float]:
    """Per-technique extra encode latency, from the hardware model.

    DBI and Flipcy evaluate so few candidates that their delay is a few
    hundred picoseconds (the paper treats them together); VCC and RCC use
    the Fig. 6 estimates for ``num_cosets`` candidates.
    """
    vcc = estimate_design(DesignPoint(style="vcc", num_cosets=num_cosets, stored_kernels=False))
    rcc = estimate_design(DesignPoint(style="rcc", num_cosets=num_cosets))
    return {
        "DBI/Flipcy": 0.3,
        "VCC": vcc.delay_ns,
        "RCC": rcc.delay_ns,
    }


@register_task(
    "fig13-ipc-cell",
    description="normalised IPC of every technique on one benchmark (Fig. 13 cell)",
)
def _fig13_ipc_cell(params: Dict[str, Any]) -> List[Dict[str, Any]]:
    """One benchmark of the Fig. 13 sweep (all techniques, analytic model)."""
    model = PerformanceModel(SystemConfig(**params["system"]))
    delays = technique_delays_ns(params["num_cosets"])
    return [
        {
            "benchmark": result.benchmark,
            "technique": result.technique,
            "encode_delay_ns": result.encode_delay_ns,
            "normalized_ipc": result.normalized_ipc,
        }
        for result in model.sweep(delays, benchmarks=[params["benchmark"]])
    ]


def sweep_tasks(
    benchmarks: Optional[Sequence[str]] = None,
    num_cosets: int = 256,
    system: SystemConfig = TABLE_II_SYSTEM,
) -> List[Task]:
    """The Fig. 13 sweep as campaign tasks, one per benchmark."""
    names = list(benchmarks) if benchmarks is not None else list_benchmarks()
    base = {"num_cosets": num_cosets, "system": dataclasses.asdict(system)}
    return [
        Task(kind="fig13-ipc-cell", params={**base, "benchmark": benchmark})
        for benchmark in names
    ]


def run(
    benchmarks: Optional[Sequence[str]] = None,
    num_cosets: int = 256,
    system: SystemConfig = TABLE_II_SYSTEM,
    jobs: int = 1,
    store_dir: Union[ResultStore, str, Path, None] = None,
    progress: Optional[ProgressCallback] = None,
) -> ResultTable:
    """Regenerate Fig. 13: normalised IPC per benchmark and technique."""
    result = run_campaign(
        sweep_tasks(benchmarks, num_cosets, system), store=store_dir, jobs=jobs, progress=progress
    )
    return result.to_table(
        title="Fig. 13 — IPC normalised to unencoded writeback (256 cosets)",
        columns=["benchmark", "technique", "encode_delay_ns", "normalized_ipc"],
        notes="analytic timing model parameterised by Table II (see DESIGN.md)",
    )
