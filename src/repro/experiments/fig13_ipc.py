"""Fig. 13 — normalised IPC of DBI/Flipcy, VCC, and RCC (Table II system)."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.hardware.synthesis import DesignPoint, estimate_design
from repro.perf.config import TABLE_II_SYSTEM, SystemConfig
from repro.perf.timing import PerformanceModel
from repro.sim.results import ResultTable
from repro.traces.spec import list_benchmarks

__all__ = ["run", "technique_delays_ns"]


def technique_delays_ns(num_cosets: int = 256) -> Dict[str, float]:
    """Per-technique extra encode latency, from the hardware model.

    DBI and Flipcy evaluate so few candidates that their delay is a few
    hundred picoseconds (the paper treats them together); VCC and RCC use
    the Fig. 6 estimates for ``num_cosets`` candidates.
    """
    vcc = estimate_design(DesignPoint(style="vcc", num_cosets=num_cosets, stored_kernels=False))
    rcc = estimate_design(DesignPoint(style="rcc", num_cosets=num_cosets))
    return {
        "DBI/Flipcy": 0.3,
        "VCC": vcc.delay_ns,
        "RCC": rcc.delay_ns,
    }


def run(
    benchmarks: Optional[Sequence[str]] = None,
    num_cosets: int = 256,
    system: SystemConfig = TABLE_II_SYSTEM,
) -> ResultTable:
    """Regenerate Fig. 13: normalised IPC per benchmark and technique."""
    model = PerformanceModel(system)
    delays = technique_delays_ns(num_cosets)
    names = list(benchmarks) if benchmarks is not None else list_benchmarks()
    table = ResultTable(
        title="Fig. 13 — IPC normalised to unencoded writeback (256 cosets)",
        columns=["benchmark", "technique", "encode_delay_ns", "normalized_ipc"],
        notes="analytic timing model parameterised by Table II (see DESIGN.md)",
    )
    for result in model.sweep(delays, benchmarks=names):
        table.append(
            benchmark=result.benchmark,
            technique=result.technique,
            encode_delay_ns=result.encode_delay_ns,
            normalized_ipc=result.normalized_ipc,
        )
    return table
