"""Fig. 2 — mean observed fault rate vs. number of random coset codes."""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence, Union

from repro.campaign.engine import ProgressCallback
from repro.campaign.store import ResultStore
from repro.sim.results import ResultTable
from repro.sim.saw_sim import SawStudyConfig, fault_masking_study

__all__ = ["run"]


def run(
    coset_counts: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128),
    rows: int = 96,
    num_writes: int = 200,
    seed: int = 7,
    jobs: int = 1,
    store_dir: Union[ResultStore, str, Path, None] = None,
    progress: Optional[ProgressCallback] = None,
    fault_model: Optional[str] = None,
) -> ResultTable:
    """Regenerate Fig. 2 on a scaled memory snapshot with a 1e-2 fault rate.

    ``jobs`` fans the per-count cells out over worker processes through
    the campaign engine (rows are bit-identical for any count);
    ``store_dir`` enables cached resume across runs; ``fault_model``
    selects a :mod:`repro.faults` model for the sweep.
    """
    config = SawStudyConfig(rows=rows, num_writes=num_writes, seed=seed)
    return fault_masking_study(
        coset_counts=coset_counts,
        config=config,
        jobs=jobs,
        store=store_dir,
        progress=progress,
        fault_model=fault_model,
    )
