"""Fig. 11 — per-benchmark writes-to-failure for every protection technique."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.sim.lifetime_sim import (
    DEFAULT_BENCHMARKS,
    DEFAULT_LIFETIME_TECHNIQUES,
    LifetimeStudyConfig,
    lifetime_study,
)
from repro.sim.results import ResultTable

__all__ = ["run"]


def run(
    benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
    num_cosets: int = 256,
    config: Optional[LifetimeStudyConfig] = None,
    repetitions: int = 1,
) -> ResultTable:
    """Regenerate Fig. 11 on the scaled-down memory/endurance configuration."""
    return lifetime_study(
        benchmarks=benchmarks,
        techniques=DEFAULT_LIFETIME_TECHNIQUES,
        num_cosets=num_cosets,
        config=config or LifetimeStudyConfig(),
        repetitions=repetitions,
    )
