"""Fig. 11 — per-benchmark writes-to-failure for every protection technique."""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence, Union

from repro.campaign.engine import ProgressCallback
from repro.campaign.store import ResultStore
from repro.sim.lifetime_sim import (
    DEFAULT_BENCHMARKS,
    DEFAULT_LIFETIME_TECHNIQUES,
    LifetimeStudyConfig,
    lifetime_study,
)
from repro.sim.results import ResultTable

__all__ = ["run"]


def run(
    benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
    num_cosets: int = 256,
    config: Optional[LifetimeStudyConfig] = None,
    repetitions: int = 1,
    jobs: int = 1,
    store_dir: Union[ResultStore, str, Path, None] = None,
    progress: Optional[ProgressCallback] = None,
    fault_model: Optional[str] = None,
) -> ResultTable:
    """Regenerate Fig. 11 on the scaled-down memory/endurance configuration.

    ``jobs`` fans the benchmark × technique × repetition cells out over
    worker processes through the campaign engine (rows are bit-identical
    for any count); ``store_dir`` enables cached resume across runs;
    ``fault_model`` runs the line-up under one :mod:`repro.faults` model.
    """
    return lifetime_study(
        benchmarks=benchmarks,
        techniques=DEFAULT_LIFETIME_TECHNIQUES,
        num_cosets=num_cosets,
        config=config or LifetimeStudyConfig(),
        repetitions=repetitions,
        jobs=jobs,
        store=store_dir,
        progress=progress,
        fault_model=fault_model,
    )
