"""Fig. 3 — the worked VCC(64, 64, 4) ones-minimisation example.

The figure walks a single 64-bit encrypted block through VCC with four
16-bit stored kernels, minimising the number of written '1's against an
all-zero memory location.  This module reproduces that walk and reports
the per-kernel costs and the selected candidate, so the example can be
checked end-to-end (the regression test asserts the exact codeword and
auxiliary bits from the figure).
"""

from __future__ import annotations

from repro.coding.base import WordContext
from repro.coding.cost import OnesCost
from repro.core.config import EncodeRegion, VCCConfig
from repro.core.kernels import StoredKernelProvider
from repro.core.vcc import VCCEncoder
from repro.pcm.cell import CellTechnology
from repro.sim.results import ResultTable

__all__ = ["FIG3_DATA_BLOCK", "FIG3_KERNELS", "build_example_encoder", "run"]

#: The 64-bit encrypted data block of Fig. 3(a).
FIG3_DATA_BLOCK = int(
    "1010001011011011" "0101000100100100" "0100011001000101" "1010010100001011", 2
)

#: The four 16-bit coset kernels of Fig. 3(b).
FIG3_KERNELS = (
    int("1010100111011011", 2),
    int("0100011111110100", 2),
    int("0011001001100011", 2),
    int("1010110001000111", 2),
)


def build_example_encoder() -> VCCEncoder:
    """The exact VCC(64, 64, 4) instance of the worked example."""
    config = VCCConfig(
        word_bits=64,
        kernel_bits=16,
        num_kernels=4,
        technology=CellTechnology.MLC,
        encode_region=EncodeRegion.FULL_WORD,
        stored_kernels=True,
    )
    provider = StoredKernelProvider(16, 4, kernels=FIG3_KERNELS)
    return VCCEncoder(config, cost_function=OnesCost(), kernel_provider=provider)


def run() -> ResultTable:
    """Encode the Fig. 3 block and report the selected candidate."""
    encoder = build_example_encoder()
    context = WordContext.blank(word_bits=64, bits_per_cell=2)
    encoded = encoder.encode(FIG3_DATA_BLOCK, context)
    decoded = encoder.decode(encoded.codeword, encoded.aux)
    table = ResultTable(
        title="Fig. 3 — worked VCC(64, 64, 4) example (ones minimisation)",
        columns=["quantity", "value"],
    )
    table.append(quantity="data block D", value=f"{FIG3_DATA_BLOCK:016x}")
    table.append(quantity="selected codeword Xopt", value=f"{encoded.codeword:016x}")
    table.append(quantity="auxiliary bits (kernel index + flags)", value=f"{encoded.aux:06b}")
    table.append(quantity="cost (ones incl. aux)", value=encoded.cost)
    table.append(quantity="decode(Xopt) == D", value=decoded == FIG3_DATA_BLOCK)
    return table
