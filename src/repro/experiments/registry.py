"""Registry mapping experiment identifiers to their entry points."""

from __future__ import annotations

from typing import Callable, Dict, List

import repro.experiments.fig01_coding_analysis as fig01_coding_analysis
import repro.experiments.fig02_fault_masking as fig02_fault_masking
import repro.experiments.fig03_worked_example as fig03_worked_example
import repro.experiments.fig06_hardware as fig06_hardware
import repro.experiments.fig07_write_energy as fig07_write_energy
import repro.experiments.fig08_saw_cosets as fig08_saw_cosets
import repro.experiments.fig09_energy_benchmarks as fig09_energy_benchmarks
import repro.experiments.fig10_saw_benchmarks as fig10_saw_benchmarks
import repro.experiments.fig11_lifetime_benchmarks as fig11_lifetime_benchmarks
import repro.experiments.fig12_lifetime_cosets as fig12_lifetime_cosets
import repro.experiments.fig13_ipc as fig13_ipc
import repro.experiments.table1_energy_model as table1_energy_model
import repro.experiments.table2_system as table2_system
from repro.errors import ConfigurationError
from repro.sim.results import ResultTable

__all__ = ["available_experiments", "get_experiment", "run_experiment"]

_REGISTRY: Dict[str, Callable[..., ResultTable]] = {
    "fig1": fig01_coding_analysis.run,
    "fig2": fig02_fault_masking.run,
    "fig3": fig03_worked_example.run,
    "fig6": fig06_hardware.run,
    "fig7": fig07_write_energy.run,
    "fig8": fig08_saw_cosets.run,
    "fig9": fig09_energy_benchmarks.run,
    "fig10": fig10_saw_benchmarks.run,
    "fig11": fig11_lifetime_benchmarks.run,
    "fig12": fig12_lifetime_cosets.run,
    "fig13": fig13_ipc.run,
    "table1": table1_energy_model.run,
    "table2": table2_system.run,
}


def available_experiments() -> List[str]:
    """Identifiers accepted by :func:`run_experiment`."""
    return sorted(_REGISTRY)


def get_experiment(identifier: str) -> Callable[..., ResultTable]:
    """Return the ``run`` callable for an experiment identifier."""
    key = identifier.lower()
    if key not in _REGISTRY:
        raise ConfigurationError(
            f"unknown experiment {identifier!r}; available: {', '.join(available_experiments())}"
        )
    return _REGISTRY[key]


def run_experiment(identifier: str, **kwargs) -> ResultTable:
    """Run one experiment by identifier, passing ``kwargs`` to its entry point."""
    return get_experiment(identifier)(**kwargs)
