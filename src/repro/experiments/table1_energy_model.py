"""Table I — MLC PCM symbol-transition write energies."""

from __future__ import annotations

from repro.pcm.energy import DEFAULT_MLC_ENERGY, MLCEnergyModel
from repro.sim.results import ResultTable

__all__ = ["run"]

_SYMBOLS = ("00", "01", "11", "10")


def run(model: MLCEnergyModel = DEFAULT_MLC_ENERGY) -> ResultTable:
    """Regenerate Table I from the energy model.

    The structural content of the table — unchanged symbols cost nothing,
    new symbols with a right digit of one are "high", everything else is
    "low" — is what every energy experiment depends on; the picojoule
    values are the model's calibration constants.
    """
    table = ResultTable(
        title="Table I — symbol energy transitions (old state -> new state)",
        columns=["old_state", "N(00)", "N(01)", "N(11)", "N(10)"],
        notes=f"low = {model.low_energy_pj} pJ, high = {model.high_energy_pj} pJ",
    )

    def classify(old: int, new: int) -> str:
        if old == new:
            return "-"
        return "high" if (new & 1) else "low"

    for old_label in _SYMBOLS:
        old = int(old_label, 2)
        row = {"old_state": f"O({old_label})"}
        for new_label in _SYMBOLS:
            new = int(new_label, 2)
            row[f"N({new_label})"] = classify(old, new)
        table.append(**row)
    return table
