"""Fig. 8 — SAW cell improvement vs. coset cardinality."""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence, Union

from repro.campaign.engine import ProgressCallback
from repro.campaign.store import ResultStore
from repro.sim.results import ResultTable
from repro.sim.saw_sim import SawStudyConfig, saw_vs_coset_count_study

__all__ = ["run"]


def run(
    coset_counts: Sequence[int] = (32, 64, 128, 256),
    rows: int = 96,
    num_writes: int = 200,
    seed: int = 7,
    jobs: int = 1,
    store_dir: Union[ResultStore, str, Path, None] = None,
    progress: Optional[ProgressCallback] = None,
) -> ResultTable:
    """Regenerate Fig. 8 on a scaled memory snapshot with a 1e-2 fault rate.

    ``jobs`` fans the coset × series cells out over worker processes
    through the campaign engine (rows are bit-identical for any count);
    ``store_dir`` enables cached resume across runs.
    """
    config = SawStudyConfig(rows=rows, num_writes=num_writes, seed=seed)
    return saw_vs_coset_count_study(
        coset_counts=coset_counts,
        config=config,
        jobs=jobs,
        store=store_dir,
        progress=progress,
    )
