"""Fig. 9 — per-benchmark write energy under both cost-function orderings."""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence, Union

from repro.campaign.engine import ProgressCallback
from repro.campaign.store import ResultStore
from repro.sim.energy_sim import DEFAULT_BENCHMARKS, EnergyStudyConfig, benchmark_energy_study
from repro.sim.results import ResultTable

__all__ = ["run"]


def run(
    benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
    num_cosets: int = 256,
    writebacks_per_benchmark: int = 200,
    rows: int = 96,
    seed: int = 2022,
    jobs: int = 1,
    store_dir: Union[ResultStore, str, Path, None] = None,
    progress: Optional[ProgressCallback] = None,
) -> ResultTable:
    """Regenerate Fig. 9 for the synthetic SPEC-like benchmark traces.

    ``jobs`` fans the benchmark × technique cells out over worker
    processes through the campaign engine (rows are bit-identical for
    any count); ``store_dir`` enables cached resume across runs.
    """
    config = EnergyStudyConfig(rows=rows, seed=seed)
    return benchmark_energy_study(
        benchmarks=benchmarks,
        num_cosets=num_cosets,
        writebacks_per_benchmark=writebacks_per_benchmark,
        config=config,
        jobs=jobs,
        store=store_dir,
        progress=progress,
    )
