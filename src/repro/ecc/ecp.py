"""Error-Correcting Pointers (ECP).

ECP (Schechter et al., ISCA 2010) attaches to every memory row ``N`` entries
of ``log2(row_bits)`` pointer bits plus one replacement bit.  When a cell is
found to be stuck, one entry records its position and the value it should
have held; reads patch the row using the stored entries.  ECP-N therefore
tolerates up to ``N`` failed cells anywhere in the row — more flexible than
SECDED for clustered faults, at roughly 10 bits of overhead per corrected
cell.

The class offers both the full entry-management codec (allocate entries as
faults appear, patch reads) and the row-level budget interface used by the
lifetime simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.ecc.base import CorrectionOutcome, ErrorCorrector
from repro.errors import ConfigurationError, UncorrectableError

__all__ = ["ECP", "ECPRowState"]


@dataclass
class ECPRowState:
    """Correction entries allocated for one row: cell position -> value."""

    entries: Dict[int, int] = field(default_factory=dict)

    def used(self) -> int:
        """Number of entries in use."""
        return len(self.entries)


class ECP(ErrorCorrector):
    """ECP-N: up to ``N`` corrected cells per row.

    Parameters
    ----------
    entries_per_row:
        Number of pointer/replacement entries per row (the paper's baseline
        is ECP3 at the iso-area budget of the 8-bit-per-word techniques).
    row_bits:
        Row width in bits (to size the pointers).
    """

    def __init__(self, entries_per_row: int = 3, row_bits: int = 512):
        if entries_per_row < 0:
            raise ConfigurationError("entries_per_row must be non-negative")
        if row_bits <= 0:
            raise ConfigurationError("row_bits must be positive")
        self.entries_per_row = entries_per_row
        self.row_bits = row_bits
        self.pointer_bits = max(1, (row_bits - 1).bit_length())
        self.name = f"ecp{entries_per_row}"
        self._rows: Dict[int, ECPRowState] = {}

    # --------------------------------------------------------- entry mgmt
    def row_state(self, row_index: int) -> ECPRowState:
        """Return (creating if needed) the entry table of ``row_index``."""
        return self._rows.setdefault(row_index, ECPRowState())

    def record_fault(self, row_index: int, cell_position: int, correct_value: int) -> bool:
        """Allocate an entry for a newly-discovered stuck cell.

        Returns True if an entry was available (or the cell already had
        one); False when the row's entries are exhausted.
        """
        if not 0 <= cell_position < self.row_bits:
            raise ConfigurationError(
                f"cell position {cell_position} outside a {self.row_bits}-bit row"
            )
        state = self.row_state(row_index)
        if cell_position in state.entries:
            state.entries[cell_position] = correct_value
            return True
        if state.used() >= self.entries_per_row:
            return False
        state.entries[cell_position] = correct_value
        return True

    def patch_row(self, row_index: int, row_bits_values: Sequence[int]) -> List[int]:
        """Apply the stored corrections to a read row (list of bit values)."""
        values = list(row_bits_values)
        if len(values) != self.row_bits:
            raise ConfigurationError(
                f"expected {self.row_bits} bit values, got {len(values)}"
            )
        state = self._rows.get(row_index)
        if state is None:
            return values
        for position, correct_value in state.entries.items():
            values[position] = correct_value
        return values

    # ----------------------------------------------------------- row policy
    def row_outcome(self, wrong_bits_per_word: Sequence[int]) -> CorrectionOutcome:
        total_wrong = int(sum(wrong_bits_per_word))
        if total_wrong <= self.entries_per_row:
            return CorrectionOutcome(correctable=True, corrected_cells=total_wrong)
        return CorrectionOutcome(correctable=False, corrected_cells=self.entries_per_row)

    @property
    def overhead_bits_per_word(self) -> int:
        # Entries are a per-row cost; expressed per 64-bit word for iso-area
        # comparison (8 words per 512-bit row).
        per_row = self.entries_per_row * (self.pointer_bits + 1)
        words_per_row = max(1, self.row_bits // 64)
        return -(-per_row // words_per_row)
