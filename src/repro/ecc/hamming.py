"""Hamming (72, 64) SECDED code.

Each 64-bit data word is extended with 8 check bits: 7 Hamming parity bits
providing single-error correction plus an overall parity bit upgrading the
code to double-error detection.  This is the ubiquitous main-memory ECC the
paper uses both as a lifetime baseline and as the budget that caps the
auxiliary information of the coset techniques (8 bits per 64-bit word).

The implementation provides the real codec (encode / decode-and-correct)
for word-level use and tests, and the row-level
:class:`~repro.ecc.base.ErrorCorrector` interface used by the lifetime
simulator (a row survives if no word has more than one wrong bit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.ecc.base import CorrectionOutcome, ErrorCorrector
from repro.errors import ConfigurationError, UncorrectableError

__all__ = ["HammingSecded", "SecdedWord"]


@dataclass(frozen=True)
class SecdedWord:
    """A SECDED codeword: 64 data bits plus 8 check bits."""

    data: int
    check: int


class HammingSecded(ErrorCorrector):
    """(72, 64) Hamming single-error-correct / double-error-detect code."""

    name = "secded"

    def __init__(self, data_bits: int = 64):
        if data_bits <= 0:
            raise ConfigurationError("data_bits must be positive")
        self.data_bits = data_bits
        # Number of Hamming parity bits k such that 2^k >= data_bits + k + 1.
        k = 1
        while (1 << k) < data_bits + k + 1:
            k += 1
        self.parity_bits = k
        self.check_bits = k + 1  # + overall parity
        # Pre-compute, for every data-bit index, its position in the
        # Hamming codeword (positions that are not powers of two).
        self._data_positions: List[int] = []
        position = 1
        while len(self._data_positions) < data_bits:
            if position & (position - 1) != 0:  # not a power of two
                self._data_positions.append(position)
            position += 1

    # ------------------------------------------------------------- encoding
    def encode(self, data: int) -> SecdedWord:
        """Compute the check bits for ``data``."""
        self._check_data(data)
        syndrome = 0
        ones = 0
        for bit_index in range(self.data_bits):
            if (data >> bit_index) & 1:
                syndrome ^= self._data_positions[bit_index]
                ones ^= 1
        parity = 0
        for level in range(self.parity_bits):
            parity |= ((syndrome >> level) & 1) << level
        # Overall parity covers data plus the Hamming parity bits.
        overall = ones
        overall ^= bin(parity).count("1") & 1
        check = parity | (overall << self.parity_bits)
        return SecdedWord(data=data, check=check)

    def decode(self, stored_data: int, stored_check: int) -> Tuple[int, int]:
        """Decode a possibly-corrupted codeword.

        Returns
        -------
        tuple
            ``(corrected_data, corrected_errors)`` where ``corrected_errors``
            is 0 (clean) or 1 (single error repaired).

        Raises
        ------
        UncorrectableError
            If a double error is detected.
        """
        self._check_data(stored_data)
        syndrome = 0
        for bit_index in range(self.data_bits):
            if (stored_data >> bit_index) & 1:
                syndrome ^= self._data_positions[bit_index]
        stored_parity = stored_check & ((1 << self.parity_bits) - 1)
        syndrome ^= stored_parity
        overall_expected = (
            bin(stored_data).count("1") + bin(stored_parity).count("1")
        ) & 1
        overall_stored = (stored_check >> self.parity_bits) & 1
        overall_mismatch = overall_expected != overall_stored

        if syndrome == 0 and not overall_mismatch:
            return stored_data, 0
        if syndrome == 0 and overall_mismatch:
            # The overall parity bit itself flipped.
            return stored_data, 1
        if overall_mismatch:
            # Single error at position `syndrome`.
            if syndrome in self._data_positions:
                bit_index = self._data_positions.index(syndrome)
                return stored_data ^ (1 << bit_index), 1
            # The error hit a parity bit; data is intact.
            return stored_data, 1
        raise UncorrectableError(
            "double error detected by SECDED", positions=(syndrome,)
        )

    # ----------------------------------------------------------- row policy
    def row_outcome(self, wrong_bits_per_word: Sequence[int]) -> CorrectionOutcome:
        corrected = 0
        for wrong in wrong_bits_per_word:
            if wrong > 1:
                return CorrectionOutcome(
                    correctable=False, corrected_cells=corrected, detected_only=wrong == 2
                )
            corrected += wrong
        return CorrectionOutcome(correctable=True, corrected_cells=corrected)

    @property
    def overhead_bits_per_word(self) -> int:
        return self.check_bits

    # ------------------------------------------------------------ internals
    def _check_data(self, data: int) -> None:
        if data < 0 or data >= (1 << self.data_bits):
            raise ConfigurationError(
                f"data word does not fit in {self.data_bits} bits"
            )
