"""Error-correction substrates used as lifetime baselines.

The paper compares its coset techniques against the two standard hard-error
protection mechanisms for resistive main memory:

* :class:`~repro.ecc.hamming.HammingSecded` — the (72, 64) single-error-
  correct / double-error-detect Hamming code attached to every 64-bit word;
* :class:`~repro.ecc.ecp.ECP` — error-correcting pointers, which store the
  position and correct value of up to ``N`` failed cells per row.

Both implement the :class:`~repro.ecc.base.ErrorCorrector` interface used
by the lifetime simulator to decide whether a row write with residual
stuck-at-wrong cells is still recoverable.
"""

from repro.ecc.base import CorrectionOutcome, ErrorCorrector
from repro.ecc.ecp import ECP
from repro.ecc.hamming import HammingSecded

__all__ = ["CorrectionOutcome", "ECP", "ErrorCorrector", "HammingSecded"]
