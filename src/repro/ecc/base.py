"""Shared interface of the error-correction substrates."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence

__all__ = ["CorrectionOutcome", "ErrorCorrector"]


@dataclass(frozen=True)
class CorrectionOutcome:
    """Result of asking a corrector whether a set of cell errors is recoverable.

    Attributes
    ----------
    correctable:
        True when the corrector can recover the intended data.
    corrected_cells:
        Number of erroneous cells the corrector repairs.
    detected_only:
        True when the errors are detected but not corrected (e.g. a double
        error under SECDED).
    """

    correctable: bool
    corrected_cells: int = 0
    detected_only: bool = False


class ErrorCorrector(abc.ABC):
    """Decides whether residual stuck-at-wrong cells in a row are recoverable.

    The lifetime simulator expresses a row write's residual errors as the
    per-word counts of wrong cells; each corrector answers whether its
    redundancy can recover the row.  This captures the correction *budget*
    of each scheme (1 bit error per 64-bit word for SECDED, N arbitrary
    cells per row for ECP) without simulating the parity arithmetic on
    every write — the full codec implementations are available for unit
    tests and the encoder-level APIs.
    """

    #: Technique name used in result tables.
    name: str = "corrector"

    @abc.abstractmethod
    def row_outcome(self, wrong_bits_per_word: Sequence[int]) -> CorrectionOutcome:
        """Judge a row write.

        Parameters
        ----------
        wrong_bits_per_word:
            For each word of the row, the number of *bit* errors left after
            any encoding technique has done its best.
        """

    @property
    def overhead_bits_per_word(self) -> int:
        """Storage overhead in bits per 64-bit data word (for iso-area notes)."""
        return 0
