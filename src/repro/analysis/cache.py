"""Content-hash incremental cache for the two-pass analyzer.

The whole-program pass re-reads every module on every run; without a
cache the CI lint gate would pay a full re-parse of the tree even when
one file changed.  The cache (``.repro-analysis-cache.json`` in the
working directory, overridable with ``--cache``) stores, per file:

* the SHA-256 of the file's bytes,
* the module-scope findings (post-waiver, fingerprinted),
* the :class:`~repro.analysis.project.ModuleSummary` the project pass
  consumes,
* the expanded waiver-coverage map (line → waivable codes), so
  project-scope findings anchored in a cached file can still be waived.

Entries are keyed by display path and guarded by a *rule-set signature*
— a hash of the codes and scopes of the rules actually running plus a
format-version salt — so editing a rule, changing ``--select``, or
upgrading the engine invalidates the whole cache rather than serving
stale findings.  Corrupt or unreadable cache files degrade to a cold
run, never to an error: the cache is an accelerator, not a dependency.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.analysis.finding import Finding
from repro.analysis.project import ModuleSummary

__all__ = ["AnalysisCache", "CachedModule", "DEFAULT_CACHE_NAME", "ruleset_signature"]

#: File name the CLI uses in the working directory by default.
DEFAULT_CACHE_NAME = ".repro-analysis-cache.json"

#: Bump to invalidate every existing cache when the engine's extraction
#: or fingerprinting semantics change.
CACHE_FORMAT_VERSION = 1


def ruleset_signature(rule_keys: Sequence[str]) -> str:
    """Hash identifying the exact rule set (codes + scopes) in effect."""
    payload = f"v{CACHE_FORMAT_VERSION}|" + "|".join(sorted(rule_keys))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def file_sha256(data: bytes) -> str:
    """Content hash cache entries are keyed by."""
    return hashlib.sha256(data).hexdigest()


def _finding_from_json(payload: Mapping[str, Any]) -> Finding:
    return Finding(
        rule=str(payload["rule"]),
        path=str(payload["path"]),
        line=int(payload["line"]),
        column=int(payload["column"]),
        message=str(payload["message"]),
        snippet=str(payload["snippet"]),
        fingerprint=str(payload["fingerprint"]),
    )


@dataclass
class CachedModule:
    """Everything one warm file contributes without being re-parsed."""

    sha256: str
    findings: List[Finding]
    summary: ModuleSummary
    #: line → rule codes/families a valid waiver covers on that line.
    waiver_lines: Dict[int, List[str]]

    def to_json(self) -> Dict[str, Any]:
        return {
            "sha256": self.sha256,
            "findings": [finding.to_json() for finding in self.findings],
            "summary": self.summary.to_json(),
            "waiver_lines": {
                str(line): codes for line, codes in sorted(self.waiver_lines.items())
            },
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "CachedModule":
        return cls(
            sha256=str(payload["sha256"]),
            findings=[_finding_from_json(item) for item in payload["findings"]],
            summary=ModuleSummary.from_json(payload["summary"]),
            waiver_lines={
                int(line): [str(code) for code in codes]
                for line, codes in payload["waiver_lines"].items()
            },
        )


@dataclass
class AnalysisCache:
    """On-disk per-file cache of pass-1 results."""

    signature: str
    entries: Dict[str, CachedModule] = field(default_factory=dict)
    #: (hits, misses) of the current run, for the CLI summary and tests.
    hits: int = 0
    misses: int = 0

    def lookup(self, path: str, sha256: str) -> Optional[CachedModule]:
        """The cached entry for ``path`` when its content hash matches."""
        entry = self.entries.get(path)
        if entry is not None and entry.sha256 == sha256:
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def store(self, path: str, entry: CachedModule) -> None:
        self.entries[path] = entry

    def prune(self, live_paths: Sequence[str]) -> None:
        """Drop entries for files no longer under analysis."""
        keep = set(live_paths)
        for path in list(self.entries):
            if path not in keep:
                del self.entries[path]

    # ----------------------------------------------------------------- I/O
    @classmethod
    def load(cls, path: Union[str, Path], signature: str) -> "AnalysisCache":
        """Load a cache file; any mismatch or damage yields an empty cache."""
        file_path = Path(path)
        try:
            payload = json.loads(file_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return cls(signature=signature)
        if (
            not isinstance(payload, dict)
            or payload.get("version") != CACHE_FORMAT_VERSION
            or payload.get("signature") != signature
            or not isinstance(payload.get("files"), dict)
        ):
            return cls(signature=signature)
        entries: Dict[str, CachedModule] = {}
        try:
            for key, item in payload["files"].items():
                entries[str(key)] = CachedModule.from_json(item)
        except (KeyError, TypeError, ValueError):
            return cls(signature=signature)
        return cls(signature=signature, entries=entries)

    def save(self, path: Union[str, Path]) -> None:
        payload = {
            "version": CACHE_FORMAT_VERSION,
            "signature": self.signature,
            "files": {
                key: self.entries[key].to_json() for key in sorted(self.entries)
            },
        }
        Path(path).write_text(json.dumps(payload, indent=1) + "\n", encoding="utf-8")

    def stats(self) -> Tuple[int, int]:
        """(hits, misses) accumulated by :meth:`lookup` this run."""
        return self.hits, self.misses
