"""SARIF 2.1.0 rendering of analyzer findings.

SARIF (Static Analysis Results Interchange Format) is the schema GitHub
code scanning ingests, so CI can upload the analyzer's findings and have
them annotate pull-request diffs inline.  One :func:`sarif_report` call
renders a full run: the driver's rule catalog (every registered rule,
plus the two engine-emitted pseudo-rules ``SYN001``/``WVR001``), the
findings as ``results``, and the baseline split as SARIF
``baselineState`` (``new`` vs ``unchanged``) so dashboards can filter on
exactly the set the exit code gates on.

The report is deterministic: rules sort by code, results keep the
engine's location order, and no timestamps are embedded.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.analysis.finding import Finding
from repro.analysis.registry import rule_specs

__all__ = ["SARIF_SCHEMA", "SARIF_VERSION", "sarif_report"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Rules the engine emits itself (not registered via ``@register_rule``).
_ENGINE_RULES = {
    "SYN001": "file does not parse; nothing else can be checked",
    "WVR001": "waiver comment is missing its mandatory reason string",
}

#: SARIF severity per rule family; anything unlisted reports as warning.
_LEVELS = {"SYN": "error", "WVR": "error"}


def _rule_entries() -> List[Dict[str, Any]]:
    entries: Dict[str, Dict[str, Any]] = {}
    for spec in rule_specs():
        entries[spec.code] = {
            "id": spec.code,
            "shortDescription": {"text": spec.summary},
            "fullDescription": {"text": spec.doc or spec.summary},
            "properties": {"family": spec.family, "scope": spec.scope},
        }
    for code, summary in _ENGINE_RULES.items():
        entries[code] = {
            "id": code,
            "shortDescription": {"text": summary},
            "fullDescription": {"text": summary},
            "properties": {"family": code.rstrip("0123456789"), "scope": "module"},
        }
    return [entries[code] for code in sorted(entries)]


def _result(finding: Finding, rule_index: Dict[str, int], state: str) -> Dict[str, Any]:
    entry: Dict[str, Any] = {
        "ruleId": finding.rule,
        "level": _LEVELS.get(finding.family, "warning"),
        "message": {"text": finding.message},
        "baselineState": state,
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.column + 1,
                    },
                }
            }
        ],
    }
    if finding.fingerprint:
        entry["partialFingerprints"] = {"reproAnalysis/v1": finding.fingerprint}
    index = rule_index.get(finding.rule)
    if index is not None:
        entry["ruleIndex"] = index
    return entry


def sarif_report(
    new: Sequence[Finding], baselined: Sequence[Finding] = ()
) -> Dict[str, Any]:
    """Render findings as one SARIF 2.1.0 log dictionary.

    ``new`` findings carry ``baselineState: "new"`` (these are what the
    CLI's exit code gates on); ``baselined`` ones carry ``"unchanged"``.
    """
    rules = _rule_entries()
    rule_index = {entry["id"]: position for position, entry in enumerate(rules)}
    results = [_result(finding, rule_index, "new") for finding in new]
    results.extend(_result(finding, rule_index, "unchanged") for finding in baselined)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.analysis",
                        "rules": rules,
                    }
                },
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }
