"""Committed baseline of grandfathered findings.

The baseline lets the analyzer gate *new* violations strictly while the
backlog of pre-existing ones is burned down incrementally: a finding whose
fingerprint appears in the baseline is reported as "baselined" and does
not fail the run.  The file is committed at the repository root
(``analysis-baseline.json``) and regenerated with
``python -m repro.analysis src --write-baseline``; a meta-test asserts it
matches a fresh run exactly, so it can neither rot nor hide new findings.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Sequence, Set, Union

from repro.analysis.finding import Finding
from repro.errors import ConfigurationError

__all__ = ["Baseline", "DEFAULT_BASELINE_NAME"]

#: File name the CLI looks for in the working directory by default.
DEFAULT_BASELINE_NAME = "analysis-baseline.json"

_FORMAT_VERSION = 1


@dataclass
class Baseline:
    """The set of grandfathered finding fingerprints."""

    entries: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def __contains__(self, item: Union[str, Finding]) -> bool:
        key = item.fingerprint if isinstance(item, Finding) else str(item)
        return key in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def fingerprints(self) -> Set[str]:
        """All grandfathered fingerprints."""
        return set(self.entries)

    def partition(self, findings: Sequence[Finding]) -> "tuple[List[Finding], List[Finding]]":
        """Split findings into (new, baselined)."""
        new = [finding for finding in findings if finding not in self]
        old = [finding for finding in findings if finding in self]
        return new, old

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        """Baseline grandfathering exactly the given findings."""
        entries = {
            finding.fingerprint: {
                "rule": finding.rule,
                "path": finding.path,
                "message": finding.message,
                "snippet": finding.snippet,
            }
            for finding in findings
        }
        return cls(entries=entries)

    # ----------------------------------------------------------------- I/O
    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        """Load a baseline file, validating its shape."""
        file_path = Path(path)
        try:
            payload = json.loads(file_path.read_text(encoding="utf-8"))
        except OSError as error:
            raise ConfigurationError(f"cannot read baseline {file_path}: {error}") from error
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"baseline {file_path} is not valid JSON: {error}"
            ) from error
        if not isinstance(payload, dict) or "findings" not in payload:
            raise ConfigurationError(
                f"baseline {file_path} must be an object with a 'findings' list"
            )
        entries: Dict[str, Dict[str, Any]] = {}
        for item in payload["findings"]:
            if not isinstance(item, dict) or "fingerprint" not in item:
                raise ConfigurationError(
                    f"baseline {file_path} holds an entry without a fingerprint"
                )
            entries[str(item["fingerprint"])] = {
                key: item[key] for key in ("rule", "path", "message", "snippet") if key in item
            }
        return cls(entries=entries)

    def save(self, path: Union[str, Path]) -> None:
        """Write the baseline (sorted for stable diffs)."""
        records = [
            {"fingerprint": fp, **self.entries[fp]}
            for fp in sorted(
                self.entries,
                key=lambda fp: (
                    self.entries[fp].get("path", ""),
                    self.entries[fp].get("rule", ""),
                    fp,
                ),
            )
        ]
        payload = {"version": _FORMAT_VERSION, "findings": records}
        Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
