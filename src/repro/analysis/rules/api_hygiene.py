"""API — interface hygiene rules.

Blanket exception handlers hide the typed error taxonomy in
:mod:`repro.errors`, mutable default arguments leak state between calls,
and unannotated public functions erode the strict-mypy gate on the core
packages.  Each finding is waivable with a reason where breadth is the
point (e.g. a cancel-and-reraise cleanup handler).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.analysis.engine import ModuleContext
from repro.analysis.finding import Finding
from repro.analysis.registry import register_rule
from repro.analysis.rules.common import call_name, dotted_name

_BROAD_EXCEPTIONS = {"Exception", "BaseException"}

_MUTABLE_FACTORIES = {"list", "dict", "set", "bytearray"}


def _broad_handler_name(handler: ast.ExceptHandler) -> Optional[str]:
    """'bare', 'Exception', or 'BaseException' when the handler is blanket."""
    if handler.type is None:
        return "bare"
    candidates: List[ast.expr] = (
        list(handler.type.elts) if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    for expr in candidates:
        name = dotted_name(expr)
        if name in _BROAD_EXCEPTIONS:
            return name
    return None


@register_rule(
    "API001",
    summary="bare or blanket except Exception handler without a waiver",
)
def check_blanket_except(module: ModuleContext) -> Iterator[Finding]:
    """Flag bare ``except:`` and blanket ``except Exception:`` handlers;
    they swallow the typed error taxonomy (``repro.errors``) that
    callers and the campaign engine dispatch on."""
    for handler in module.walk(ast.ExceptHandler):
        broad = _broad_handler_name(handler)
        if broad is None:
            continue
        what = "bare except:" if broad == "bare" else f"except {broad}:"
        yield module.finding(
            "API001",
            handler,
            f"{what} swallows the typed repro.errors taxonomy; catch the "
            "specific errors, or waive with a reason where breadth is the "
            "point (e.g. catch-cancel-reraise cleanup)",
        )


def _mutable_default(expr: ast.expr) -> bool:
    if isinstance(expr, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call):
        return call_name(expr) in _MUTABLE_FACTORIES
    return False


@register_rule("API002", summary="mutable default argument")
def check_mutable_defaults(module: ModuleContext) -> Iterator[Finding]:
    """Flag mutable default argument values (lists, dicts, sets, ...);
    they alias one instance across calls and across forked workers."""
    for node in module.walk(ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda):
        defaults = list(node.args.defaults) + [
            default for default in node.args.kw_defaults if default is not None
        ]
        for default in defaults:
            if _mutable_default(default):
                label = getattr(node, "name", "<lambda>")
                yield module.finding(
                    "API002",
                    default,
                    f"mutable default argument in {label}; defaults are "
                    "evaluated once and shared across calls — default to "
                    "None (or use dataclasses.field(default_factory=...))",
                )


def _public_functions(
    module: ModuleContext,
) -> Iterator[Tuple[ast.FunctionDef, Optional[ast.ClassDef]]]:
    """Top-level public functions and public methods of public classes."""

    def walk_body(body: List[ast.stmt], owner: Optional[ast.ClassDef]) -> Iterator[
        Tuple[ast.FunctionDef, Optional[ast.ClassDef]]
    ]:
        for item in body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield item, owner
            elif isinstance(item, ast.ClassDef) and owner is None:
                if not item.name.startswith("_"):
                    yield from walk_body(item.body, item)
            elif isinstance(item, (ast.If, ast.Try)):
                # conditional definitions (e.g. version guards) still count
                for sub in ast.iter_child_nodes(item):
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        yield sub, owner

    yield from walk_body(module.tree.body, None)


@register_rule(
    "API003",
    summary="public function missing parameter or return annotations",
)
def check_public_annotations(module: ModuleContext) -> Iterator[Finding]:
    """Require parameter and return annotations on public module-level
    functions and public methods; the typed surface is what the
    strict-mypy packages and downstream callers build against."""
    for function, owner in _public_functions(module):
        if function.name.startswith("_"):
            continue
        where = f"{owner.name}.{function.name}" if owner is not None else function.name
        args = function.args
        positional = args.posonlyargs + args.args
        missing = [
            arg.arg
            for index, arg in enumerate(positional + args.kwonlyargs)
            if arg.annotation is None
            and not (index == 0 and arg.arg in ("self", "cls"))
        ]
        if missing:
            yield module.finding(
                "API003",
                function,
                f"public function {where} has unannotated parameter(s) "
                f"{', '.join(missing)}; the strict-mypy gate needs full "
                "signatures on public APIs",
            )
        if function.returns is None:
            yield module.finding(
                "API003",
                function,
                f"public function {where} is missing its return annotation",
            )
