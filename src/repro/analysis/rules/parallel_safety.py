"""PAR — parallel-safety rules (project scope).

The campaign engine fans tasks out over worker processes, and the
ROADMAP's two big open items — parallel-scaling fixes and the sharded
multi-bank memory service — multiply the state crossing that boundary.
These rules see the whole program (call graph, import bindings,
global-mutation summaries from :mod:`repro.analysis.project`) and catch
the hazard classes the per-module pass is structurally blind to:

* ``PAR001`` — a registered task kind transitively mutates module-level
  state.  Under ``fork`` the mutation lands in a copy-on-write clone and
  silently diverges from the coordinator; under ``spawn`` it lands in a
  freshly-imported module and diverges *differently*.  The sanctioned
  exception is the ``_OBS_*`` metric/span registry handles, whose
  per-task snapshots are merged explicitly by the executor.
* ``PAR002`` — a closure, lambda, or bound method handed to an executor
  fan-out call.  ``spawn`` pickles the callable: lambdas and nested
  functions fail outright, bound methods drag their whole instance —
  including any unpicklable or mutable-global state it holds — across
  the process boundary.
* ``PAR003`` — an RNG object created at module level and reached from a
  worker-side function.  Cross-process generator sharing breaks the
  "bit-identical at any ``--jobs``" determinism contract: each fork
  advances its own copy of the stream.
* ``PAR004`` — module-level mutable state in ``repro.memctrl`` /
  ``repro.campaign`` written outside a sanctioned setter.  This is the
  invariant the sharded-bank refactor must not erode: those packages'
  globals are either import-time constants, ``_OBS_*`` handles, or
  mutated only through named setters (``register_*`` / ``reset_*`` /
  ``_set_*`` / ``_ensure_builtins``) that the executor protocol accounts
  for.

Findings anchor at the *write/submit/binding site*, so one waiver next
to an idempotent lazy-registry write excuses every task kind that
reaches it.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.analysis.finding import Finding
from repro.analysis.project import (
    FunctionSummary,
    ModuleSummary,
    ProjectContext,
    WriteSite,
)
from repro.analysis.registry import register_rule

#: Module-global name prefixes PAR001 treats as sanctioned worker-side
#: mutation targets (the executor merges their per-task snapshots).
_SANCTIONED_GLOBAL_PREFIXES = ("_OBS_",)

#: Packages PAR004 holds to the sanctioned-setter discipline.
_GUARDED_PACKAGES = ("repro.memctrl", "repro.campaign")

#: Outermost function-name patterns PAR004 accepts as sanctioned setters.
_SANCTIONED_SETTER_PREFIXES = (
    "register_",
    "unregister_",
    "reset_",
    "_reset_",
    "set_",
    "_set_",
    "configure_",
    "_configure_",
)
_SANCTIONED_SETTER_NAMES = ("__init__", "_ensure_builtins")


def _sanctioned_global(name: str) -> bool:
    return name.startswith(_SANCTIONED_GLOBAL_PREFIXES)


def _sanctioned_setter(outer_name: str) -> bool:
    return outer_name in _SANCTIONED_SETTER_NAMES or outer_name.startswith(
        _SANCTIONED_SETTER_PREFIXES
    )


def _site_finding(
    rule: str, summary: ModuleSummary, lineno: int, snippet: str, message: str
) -> Finding:
    return Finding(
        rule=rule,
        path=summary.path,
        line=lineno,
        column=0,
        message=message,
        snippet=snippet,
    )


def _chain_text(chain: Tuple[str, ...]) -> str:
    names = [qualname.split(":", 1)[1] for qualname in chain]
    return " -> ".join(names)


@register_rule(
    "PAR001",
    summary="@register_task function transitively mutates module globals "
    "(diverges under spawn vs fork); _OBS_* handles are sanctioned",
    scope="project",
)
def check_task_global_mutation(project: ProjectContext) -> Iterator[Finding]:
    """Walk the call graph from every registered task kind and flag each
    reachable write to a module-level name, excluding the ``_OBS_*``
    telemetry handles whose snapshots the executor merges explicitly.
    Anchored at the write site so one waiver covers all reaching tasks."""
    reaching: Dict[Tuple[str, str, int], Tuple[ModuleSummary, WriteSite, Tuple[str, ...], List[str]]] = {}
    for task in project.task_functions():
        for module_name, site, chain in project.transitive_writes(task):
            if _sanctioned_global(site.name):
                continue
            summary = project.modules.get(module_name)
            if summary is None:
                continue
            key = (module_name, site.name, site.lineno)
            if key not in reaching:
                reaching[key] = (summary, site, chain, [])
            kinds = reaching[key][3]
            if task.task_kind is not None and task.task_kind not in kinds:
                kinds.append(task.task_kind)
    for key in sorted(reaching):
        summary, site, chain, kinds = reaching[key]
        shown = ", ".join(sorted(kinds)[:3])
        extra = len(kinds) - 3
        if extra > 0:
            shown += f" (+{extra} more)"
        via = f" via {_chain_text(chain)}" if len(chain) > 1 else ""
        yield _site_finding(
            "PAR001",
            summary,
            site.lineno,
            site.snippet,
            f"module global '{site.name}' is mutated ({site.kind}) on a path "
            f"reachable from task kind(s) {shown}{via}; worker-side mutation "
            "silently diverges under spawn vs fork — return state through "
            "task rows, use an _OBS_* handle, or waive if the write is "
            "idempotent (e.g. lazy registry import)",
        )


@register_rule(
    "PAR002",
    summary="lambda/closure/bound method submitted to an executor "
    "(unpicklable under spawn, drags captured state)",
    scope="project",
)
def check_executor_capture(project: ProjectContext) -> Iterator[Finding]:
    """Flag executor fan-out calls (``submit``, pool ``map``/``apply_async``)
    whose callable is a lambda, a function nested in the submitting scope,
    or a bound method: spawn must pickle the callable, and each of those
    either fails to pickle or captures mutable state by reference."""
    explanations = {
        "lambda": "a lambda cannot be pickled by the spawn start method",
        "nested-function": "a nested function (closure) cannot be pickled by "
        "the spawn start method and captures enclosing state by reference",
        "bound-method": "a bound method pickles its whole instance, dragging "
        "any unpicklable or mutable-global state it holds into the worker",
    }
    for function in project.functions():
        summary = project.modules[function.module]
        for site in function.submits:
            explanation = explanations.get(site.callable_kind)
            if explanation is None:
                continue
            label = site.callable_name or site.callable_kind
            yield _site_finding(
                "PAR002",
                summary,
                site.lineno,
                site.snippet,
                f"{site.receiver}.{site.method}() is handed '{label}' — "
                f"{explanation}; submit a module-level function and pass "
                "state through its arguments",
            )


@register_rule(
    "PAR003",
    summary="module-level RNG reached from worker-side code "
    "(cross-process generator sharing breaks determinism)",
    scope="project",
)
def check_shared_rng(project: ProjectContext) -> Iterator[Finding]:
    """Find module-level names bound to RNG constructors (``make_rng``,
    ``default_rng``, ...) that a task-kind function — or a function
    submitted to an executor — transitively reads.  Each worker advances
    its own copy-on-write clone of such a generator, so results stop
    being a pure function of the seed; anchored at the binding."""
    entry_points: List[FunctionSummary] = list(project.task_functions())
    for function in project.functions():
        for site in function.submits:
            if site.callable_kind != "name":
                continue
            target = project.modules[function.module].functions.get(site.callable_name)
            if target is not None and target not in entry_points:
                entry_points.append(target)
    reported: set = set()
    for entry in entry_points:
        for module_name, name in sorted(project.transitive_reads(entry)):
            summary = project.modules.get(module_name)
            if summary is None:
                continue
            binding = summary.globals_.get(name)
            if binding is None or not binding.is_rng:
                continue
            key = (module_name, name)
            if key in reported:
                continue
            reported.add(key)
            yield _site_finding(
                "PAR003",
                summary,
                binding.lineno,
                binding.snippet,
                f"module-level RNG '{name}' is reached from worker-side "
                f"code ({entry.name}); every worker process advances its own "
                "copy of the stream, breaking the bit-identical-at-any-jobs "
                "contract — derive a per-task generator from an explicit "
                "seed (repro.utils.rng.derive_seed) instead",
            )


@register_rule(
    "PAR004",
    summary="module-level mutable state in repro.memctrl/repro.campaign "
    "written outside a sanctioned setter",
    scope="project",
)
def check_guarded_package_state(project: ProjectContext) -> Iterator[Finding]:
    """In the packages the sharded-bank refactor will rework
    (``repro.memctrl``, ``repro.campaign``), every write to module-level
    state must come from a sanctioned setter (``register_*`` /
    ``unregister_*`` / ``reset_*`` / ``set_*`` / ``_set_*`` /
    ``configure_*`` / ``_ensure_builtins`` / ``__init__``) or target an
    ``_OBS_*`` handle; anything else is a finding at the write site."""
    for module_name in sorted(project.modules):
        if not module_name.startswith(_GUARDED_PACKAGES):
            continue
        summary = project.modules[module_name]
        for function_name in sorted(summary.functions):
            function = summary.functions[function_name]
            if _sanctioned_setter(function.outer_name):
                continue
            for site in function.global_writes:
                if _sanctioned_global(site.name):
                    continue
                if site.kind in ("subscript", "attribute", "mutate-call", "delete"):
                    if site.name not in summary.globals_:
                        continue
                elif site.name not in summary.globals_ and site.kind not in (
                    "rebind",
                    "augment",
                ):
                    continue
                yield _site_finding(
                    "PAR004",
                    summary,
                    site.lineno,
                    site.snippet,
                    f"{function.name} writes module-level state "
                    f"'{site.name}' ({site.kind}) in guarded package "
                    f"{module_name.split('.')[0]}.{module_name.split('.')[1]}; "
                    "the sharded-bank/warm-worker rework relies on these "
                    "modules holding no ad-hoc global mutation — move the "
                    "write into a sanctioned setter (register_*/reset_*/"
                    "_set_*) or an _OBS_* handle",
                )
