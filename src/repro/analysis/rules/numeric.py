"""NUM — numeric-safety rules.

The batched kernels must match the scalar oracle *bit for bit*; PR 5
established that the layout of a gather decides whether numpy's pairwise
reductions accumulate in the same order as the reference path (a single
non-contiguous advanced-indexing gather flipped RCC's coset sums by
1 ulp — see ``src/repro/coding/rcc.py``).  These rules freeze that lesson
and two adjacent hazards into lint-time checks.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.engine import ModuleContext
from repro.analysis.finding import Finding
from repro.analysis.registry import register_rule
from repro.analysis.rules.common import call_name

#: Reductions whose accumulation order (and therefore last-ulp value)
#: depends on the memory layout of their operand.
_PAIRWISE_REDUCTIONS = {"sum", "mean"}


def _is_advanced_index(index: ast.expr) -> bool:
    """True when a subscript index triggers numpy advanced indexing.

    Plain integers, slices, and tuples of those keep the result a view (or
    a trivially contiguous copy); names, calls, and array expressions are
    gather indices.
    """
    if isinstance(index, ast.Tuple):
        return any(_is_advanced_index(element) for element in index.elts)
    if isinstance(index, (ast.Slice, ast.Constant)):
        return False
    if isinstance(index, ast.UnaryOp) and isinstance(index.operand, ast.Constant):
        return False  # negative literal index
    return isinstance(index, (ast.Name, ast.Attribute, ast.Call, ast.List, ast.Compare))


def _reduced_operand(node: ast.Call) -> Optional[ast.expr]:
    """The array expression a sum/mean-style call reduces, if recognisable."""
    # The module-function form must win over the generic attribute form:
    # for np.sum(x) the attribute branch would report the operand as the
    # module object `np` rather than the reduced argument.
    name = call_name(node)
    if name in {"np.sum", "numpy.sum", "np.mean", "numpy.mean"}:
        return node.args[0] if node.args else None
    if isinstance(node.func, ast.Attribute) and node.func.attr in _PAIRWISE_REDUCTIONS:
        return node.func.value
    return None


def _has_dtype_kw(node: ast.Call) -> bool:
    return any(kw.arg == "dtype" for kw in node.keywords)


@register_rule(
    "NUM001",
    summary="advanced-indexing gather feeding a pairwise reduction "
    "(use contiguous np.take; 1-ulp hazard)",
)
def check_gather_reduction(module: ModuleContext) -> Iterator[Finding]:
    """Flag pairwise reductions (``sum``/``dot``/...) applied directly to
    an advanced-indexing gather; re-association across the gather
    cost PR 5 a 1-ulp oracle mismatch — reduce over a contiguous
    intermediate instead."""
    for node in module.walk(ast.Call):
        operand = _reduced_operand(node)
        if (
            operand is not None
            and isinstance(operand, ast.Subscript)
            and _is_advanced_index(operand.slice)
        ):
            yield module.finding(
                "NUM001",
                node,
                "advanced-indexing gather feeds a pairwise sum/mean; its "
                "layout is not guaranteed contiguous, so the reduction order "
                "— and the last ulp — can differ from the scalar oracle. "
                "Gather with np.take (C-contiguous result) instead",
            )


@register_rule(
    "NUM002",
    summary="boolean .sum() without an explicit dtype "
    "(platform-dependent accumulator width)",
)
def check_bool_sum_dtype(module: ModuleContext) -> Iterator[Finding]:
    """Flag ``sum()`` reductions over boolean masks without an explicit
    ``dtype=``; platform-dependent accumulator widths change
    overflow behaviour silently."""
    for node in module.walk(ast.Call):
        operand = _reduced_operand(node)
        if operand is None or _has_dtype_kw(node):
            continue
        if isinstance(operand, (ast.Compare, ast.BoolOp)) or (
            isinstance(operand, ast.UnaryOp) and isinstance(operand.op, ast.Not)
        ):
            yield module.finding(
                "NUM002",
                node,
                "summing a boolean expression without dtype= uses the "
                "platform default integer width; pass an explicit dtype "
                "(e.g. dtype=np.int64) so counts are identical everywhere",
            )


@register_rule(
    "NUM003",
    summary="float literal compared with == / != (cost comparisons must use "
    "exact integers or explicit tolerances)",
)
def check_float_equality(module: ModuleContext) -> Iterator[Finding]:
    """Flag ``==``/``!=`` comparisons against float literals; rounding
    makes exact float equality order- and platform-dependent — use
    ``math.isclose``/``np.isclose`` or compare integers."""
    for node in module.walk(ast.Compare):
        operands = [node.left, *node.comparators]
        has_float_literal = any(
            isinstance(operand, ast.Constant) and isinstance(operand.value, float)
            for operand in operands
        )
        if not has_float_literal:
            continue
        for op in node.ops:
            if isinstance(op, (ast.Eq, ast.NotEq)):
                yield module.finding(
                    "NUM003",
                    node,
                    "== / != against a float literal is a last-ulp trap in "
                    "cost paths; compare exact integer costs, or use "
                    "math.isclose / np.isclose with explicit tolerances",
                )
                break
