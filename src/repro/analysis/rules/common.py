"""Small AST helpers shared by the builtin rule modules."""

from __future__ import annotations

import ast
from typing import Optional

__all__ = [
    "call_name",
    "decorator_name",
    "dotted_name",
    "is_none",
    "is_set_expression",
]


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render a ``Name`` / ``Attribute`` chain as ``a.b.c`` (else ``None``)."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """Dotted name of a call's function, when statically nameable."""
    return dotted_name(node.func)


def decorator_name(node: ast.expr) -> Optional[str]:
    """Name of a decorator, unwrapping a decorator-factory call."""
    if isinstance(node, ast.Call):
        return dotted_name(node.func)
    return dotted_name(node)


def is_none(node: Optional[ast.expr]) -> bool:
    """True for a literal ``None`` expression."""
    return isinstance(node, ast.Constant) and node.value is None


def is_set_expression(node: ast.expr) -> bool:
    """True for expressions that statically produce an (unordered) set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = call_name(node)
        return name in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # Set algebra (a | b, a - b, ...) is only flagged when a side is
        # itself statically a set; plain integer arithmetic must not match.
        return is_set_expression(node.left) or is_set_expression(node.right)
    return False
