"""RES — campaign-resilience rules.

The retry/timeout/degradation machinery in :mod:`repro.campaign.executor`
exists precisely so that nobody hand-rolls recovery loops around the
executors.  A hand-rolled loop almost always gets the bounding wrong:
``while True: pool.submit(...)`` with a ``time.sleep`` and no attempt
counter retries a permanently-failing task forever, turning one bad
parameter point into a hung sweep.

RES001 flags unbounded retry loops: a ``while True`` / ``while 1`` loop
whose body both re-submits work (an executor ``submit``/``run``/
``run_task`` call) or backs off (``time.sleep``) *and* never mentions an
attempt-budget name (``attempt`` / ``retries`` / ``tries`` / ``budget``
/ ``deadline``).  Loops bounded by a real condition (``while queue or
in_flight``) or iterating ``for attempt in range(retries + 1)`` — the
shapes the executors themselves use — are not flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import ModuleContext
from repro.analysis.finding import Finding
from repro.analysis.registry import register_rule
from repro.analysis.rules.common import call_name

#: Identifier fragments that signal the loop carries an attempt budget.
_BUDGET_NAME_FRAGMENTS = ("attempt", "retr", "tries", "budget", "deadline")

#: Call names (suffixes) that mean "this loop re-submits or paces work".
_RESUBMIT_SUFFIXES = (".submit", ".run", ".map")
_RESUBMIT_NAMES = ("time.sleep", "sleep", "run_task")


def _is_while_true(node: ast.While) -> bool:
    test = node.test
    return isinstance(test, ast.Constant) and bool(test.value) and test.value in (True, 1)


def _mentions_budget(node: ast.While) -> bool:
    for inner in ast.walk(node):
        if isinstance(inner, ast.Name) and any(
            fragment in inner.id.lower() for fragment in _BUDGET_NAME_FRAGMENTS
        ):
            return True
        if isinstance(inner, ast.Attribute) and any(
            fragment in inner.attr.lower() for fragment in _BUDGET_NAME_FRAGMENTS
        ):
            return True
    return False


def _resubmits_work(node: ast.While) -> bool:
    for inner in ast.walk(node):
        if not isinstance(inner, ast.Call):
            continue
        name = call_name(inner)
        if name is None:
            continue
        if name in _RESUBMIT_NAMES or name.endswith(_RESUBMIT_SUFFIXES):
            return True
    return False


@register_rule(
    "RES001",
    summary="unbounded retry loop (while True around submit/sleep with no "
    "attempt budget) — use the executor retries/backoff knobs",
)
def check_unbounded_retry_loop(module: ModuleContext) -> Iterator[Finding]:
    """Flag ``while True`` loops that re-submit work or back off with
    ``time.sleep`` without ever consulting an attempt/retry budget; the
    campaign executors provide bounded retry with backoff for exactly
    this, and an unbounded loop hangs the sweep on a permanent failure."""
    for node in module.walk(ast.While):
        if not _is_while_true(node):
            continue
        if not _resubmits_work(node):
            continue
        if _mentions_budget(node):
            continue
        yield module.finding(
            "RES001",
            node,
            "while-True loop re-submits work (or sleeps between attempts) "
            "with no attempt budget in sight; a permanently-failing task "
            "spins here forever — bound it (for attempt in range(retries "
            "+ 1)) or use the executor's retries/backoff_s/task_timeout_s "
            "knobs instead",
        )
