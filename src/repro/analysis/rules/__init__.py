"""Builtin rule families.

* :mod:`repro.analysis.rules.determinism` — ``DET``: unseeded randomness,
  time-derived values, unordered-set iteration.
* :mod:`repro.analysis.rules.numeric` — ``NUM``: gather/reduction ulp
  hazards, boolean accumulations without a dtype, float ``==``.
* :mod:`repro.analysis.rules.registry_contracts` — ``REG``: encoder and
  task-kind registry contracts.
* :mod:`repro.analysis.rules.api_hygiene` — ``API``: blanket exception
  handlers, mutable defaults, missing public type hints.
* :mod:`repro.analysis.rules.observability` — ``OBS``: raw stopwatch
  pairs that belong in ``repro.obs`` spans.
* :mod:`repro.analysis.rules.parallel_safety` — ``PAR`` (project scope):
  worker-side global mutation, unpicklable executor callables, shared
  module-level RNGs, unsanctioned writes to guarded package state.
* :mod:`repro.analysis.rules.imports` — ``IMP`` (project scope):
  module-level import cycles.
* :mod:`repro.analysis.rules.resilience` — ``RES``: unbounded retry
  loops that bypass the executor's bounded retry/backoff machinery.

Each module registers its rules on import via
:func:`repro.analysis.registry.register_rule`; the registry imports them
lazily on first resolution.  ``scope="module"`` checks receive a
:class:`~repro.analysis.engine.ModuleContext`, ``scope="project"`` checks
a :class:`~repro.analysis.project.ProjectContext`.
"""
