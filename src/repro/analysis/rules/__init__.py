"""Builtin rule families.

* :mod:`repro.analysis.rules.determinism` — ``DET``: unseeded randomness,
  time-derived values, unordered-set iteration.
* :mod:`repro.analysis.rules.numeric` — ``NUM``: gather/reduction ulp
  hazards, boolean accumulations without a dtype, float ``==``.
* :mod:`repro.analysis.rules.registry_contracts` — ``REG``: encoder and
  task-kind registry contracts.
* :mod:`repro.analysis.rules.api_hygiene` — ``API``: blanket exception
  handlers, mutable defaults, missing public type hints.

Each module registers its rules on import via
:func:`repro.analysis.registry.register_rule`; the registry imports them
lazily on first resolution.
"""
