"""IMP — import-graph rules (project scope).

Built on the module-level import graph the project pass assembles
(:class:`repro.analysis.project.ProjectContext`).  Lazy in-function
imports — the registry modules' sanctioned cycle-breaking idiom — and
``if TYPE_CHECKING:`` imports are excluded from the graph, so a cycle
reported here is one the interpreter actually executes at import time:
whether it works depends on statement order inside ``__init__`` modules,
and the next re-ordering breaks it.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.finding import Finding
from repro.analysis.project import ProjectContext
from repro.analysis.registry import register_rule


@register_rule(
    "IMP001",
    summary="module-level import cycle (order-dependent; break it with a "
    "lazy in-function import or an interface module)",
    scope="project",
)
def check_import_cycles(project: ProjectContext) -> Iterator[Finding]:
    """Report each strongly-connected component of the module-level
    import graph (TYPE_CHECKING and in-function imports excluded) as one
    finding, anchored at the first module's import of the next member."""
    for cycle in project.import_cycles():
        first = project.modules[cycle[0]]
        successor = cycle[1] if len(cycle) > 1 else cycle[0]
        anchor = None
        for record in first.imports:
            resolved = project.resolve_module(record.target)
            if resolved == successor:
                anchor = record
                break
        if anchor is None and first.imports:
            anchor = first.imports[0]
        lineno = anchor.lineno if anchor is not None else 1
        snippet = anchor.snippet if anchor is not None else ""
        chain = " -> ".join(cycle + [cycle[0]])
        yield Finding(
            rule="IMP001",
            path=first.path,
            line=lineno,
            column=0,
            message=f"module-level import cycle: {chain}; import order now "
            "decides whether this tree loads — break the cycle with a lazy "
            "in-function import (the registry idiom) or by importing from "
            "the defining submodule instead of the package __init__",
            snippet=snippet,
        )
