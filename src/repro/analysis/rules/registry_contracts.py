"""REG — registry contract rules.

The encoder registry (:func:`repro.coding.registry.register_encoder`) and
the campaign task registry (:func:`repro.campaign.tasks.register_task`)
are the repository's plugin seams; both have contracts the runtime only
checks partially:

* a registered encoder *class* is expected to override the batched line
  APIs (``encode_line`` / ``encode_lines``) — a missing override silently
  falls back to the scalar reference loop and costs 3-15x throughput —
  and any override must keep the base-class signature so the wave-replay
  engine can call it positionally;
* a registered task kind must be resolvable and replayable from its
  content address: a literal kind name (the SHA-256 canonical form hashes
  ``kind`` + ``params`` + ``TASK_SCHEMA_VERSION``) and a single ``params``
  mapping argument (``run_task`` calls ``function(dict(task.params))``).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional

from repro.analysis.engine import ModuleContext
from repro.analysis.finding import Finding
from repro.analysis.registry import register_rule
from repro.analysis.rules.common import decorator_name, dotted_name

#: Base-class signatures from repro/coding/base.py (positional arg names,
#: excluding ``self``).  Overrides must match so batch drivers can call
#: them uniformly.
_ENCODER_SIGNATURES: Dict[str, List[str]] = {
    "encode_line": ["words", "context"],
    "encode_lines": ["words_matrix", "contexts"],
    "decode_line": ["codewords", "auxes"],
}

#: Overrides required when a class derives straight from the abstract
#: ``Encoder`` base: without them the batched paths silently degrade to
#: the scalar per-word loop.
_REQUIRED_OVERRIDES = ("encode_line", "encode_lines")


def _registered_with(node: ast.AST, decorator: str) -> Optional[ast.expr]:
    """The matching decorator expression, when ``node`` is decorated."""
    for dec in getattr(node, "decorator_list", []):
        if decorator_name(dec) == decorator:
            return dec
    return None


def _method_defs(node: ast.ClassDef) -> Dict[str, ast.FunctionDef]:
    return {
        item.name: item
        for item in node.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _positional_args(function: ast.FunctionDef) -> List[str]:
    names = [arg.arg for arg in function.args.posonlyargs + function.args.args]
    return names[1:] if names and names[0] in ("self", "cls") else names


@register_rule(
    "REG001",
    summary="@register_encoder class missing/mismatching the batched "
    "encode_line/encode_lines/decode_line contract",
)
def check_encoder_contract(module: ModuleContext) -> Iterator[Finding]:
    """Check every ``@register_encoder`` class against the
    ``coding/base.py`` contract: required methods present, batched
    overrides paired with their scalar oracles, signatures matching."""
    for node in module.walk(ast.ClassDef):
        if _registered_with(node, "register_encoder") is None:
            continue
        methods = _method_defs(node)
        # Signature drift: any override of the three batched APIs must keep
        # the base-class positional names (callers pass positionally, but
        # keyword call sites and docs rely on the shared vocabulary).
        for name, expected in _ENCODER_SIGNATURES.items():
            function = methods.get(name)
            if function is None:
                continue
            actual = _positional_args(function)
            if actual != expected:
                yield module.finding(
                    "REG001",
                    function,
                    f"{node.name}.{name} signature ({', '.join(actual)}) does "
                    f"not match repro/coding/base.py ({', '.join(expected)})",
                )
        # Missing batch overrides only matter for classes deriving straight
        # from the abstract base; subclasses of a concrete encoder (e.g.
        # DBI/BCC on FNW) inherit the vectorised paths.
        base_names = [dotted_name(base) for base in node.bases]
        derives_from_abstract_base_only = base_names == ["Encoder"]
        if derives_from_abstract_base_only:
            for name in _REQUIRED_OVERRIDES:
                if name not in methods:
                    yield module.finding(
                        "REG001",
                        node,
                        f"{node.name} is registered but does not override "
                        f"{name}; the batched replay path would fall back to "
                        "the scalar reference loop (override it, or inherit "
                        "from a concrete encoder that does)",
                    )


@register_rule(
    "REG002",
    summary="@register_task kind must use a literal name and a single "
    "params argument (content-addressing contract)",
)
def check_task_contract(module: ModuleContext) -> Iterator[Finding]:
    """Check every ``@register_task`` function: a literal task-kind name
    (content-addressable store keys must not be computed) and the
    task-callable signature the campaign executor expects."""
    for node in module.walk(ast.FunctionDef, ast.AsyncFunctionDef):
        dec = _registered_with(node, "register_task")
        if dec is None:
            continue
        if isinstance(dec, ast.Call):
            name_arg = dec.args[0] if dec.args else None
            if name_arg is None:
                kw = next((kw for kw in dec.keywords if kw.arg == "name"), None)
                name_arg = kw.value if kw is not None else None
            if not (isinstance(name_arg, ast.Constant) and isinstance(name_arg.value, str)):
                yield module.finding(
                    "REG002",
                    dec,
                    "task kind name must be a string literal: the kind is "
                    "hashed into every task's content address alongside "
                    "TASK_SCHEMA_VERSION, so it must be stable and greppable",
                )
        else:
            yield module.finding(
                "REG002",
                node,
                "@register_task must be called with a literal kind name "
                "(bare decoration leaves the kind unnamed)",
            )
        args = node.args
        positional = args.posonlyargs + args.args
        extras = bool(args.vararg or args.kwarg or args.kwonlyargs)
        if len(positional) != 1 or extras:
            yield module.finding(
                "REG002",
                node,
                f"task function {node.name} must accept exactly one "
                "positional params mapping — run_task calls it as "
                "function(dict(task.params))",
            )
