"""DET — determinism rules.

Every result table in this repository must be a pure function of its
seeds: bit-identical at any ``--jobs``, on any platform, across cached
resumes.  These rules catch the ways that invariant silently breaks —
unseeded generators, the stdlib's global ``random`` state, wall-clock
values, and iteration over unordered sets — at lint time instead of in a
flaky parity test.

The deterministic-RNG helpers in ``repro/utils/rng.py`` are the one
sanctioned home of ``np.random.default_rng``; the module is whitelisted
here and everything else must route through :func:`repro.utils.rng.make_rng`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import ModuleContext
from repro.analysis.finding import Finding
from repro.analysis.registry import register_rule
from repro.analysis.rules.common import call_name, is_none, is_set_expression

#: The one module allowed to touch numpy's generator constructors directly.
_RNG_WHITELIST = ("repro/utils/rng.py", "utils/rng.py")

#: numpy.random attributes that are fine to call anywhere (they construct
#: or derive explicitly-seeded state rather than drawing from global state).
_NUMPY_RANDOM_OK = {"default_rng", "Generator", "SeedSequence", "PCG64", "Philox"}

#: Wall-clock and process-clock calls; any value derived from them differs
#: between runs and must never reach a result row or a seed.
_TIME_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "date.today",
}

#: Builtins whose call materialises an iteration order from their operand.
_ORDER_MATERIALISERS = {"list", "tuple", "enumerate", "iter"}


def _is_whitelisted_rng_module(module: ModuleContext) -> bool:
    return module.in_path(*_RNG_WHITELIST)


@register_rule(
    "DET001",
    summary="unseeded numpy generator or legacy global numpy.random state "
    "outside utils/rng.py",
)
def check_unseeded_numpy(module: ModuleContext) -> Iterator[Finding]:
    """Flag ``np.random.*`` legacy-global calls and ``default_rng()``
    without a seed outside the whitelisted ``repro/utils/rng.py``;
    unseeded generators make results non-reproducible."""
    if _is_whitelisted_rng_module(module):
        return
    for node in module.walk(ast.Call):
        name = call_name(node)
        if name is None:
            continue
        head, _, tail = name.rpartition(".")
        if tail == "default_rng" and (head in ("", "np.random", "numpy.random")):
            unseeded = not node.args or is_none(node.args[0])
            seed_kw = next((kw for kw in node.keywords if kw.arg == "seed"), None)
            if seed_kw is not None:
                unseeded = is_none(seed_kw.value)
            if unseeded:
                yield module.finding(
                    "DET001",
                    node,
                    "unseeded default_rng(); derive a seeded generator via "
                    "repro.utils.rng.make_rng(seed, label)",
                )
        elif head in ("np.random", "numpy.random") and tail not in _NUMPY_RANDOM_OK:
            yield module.finding(
                "DET001",
                node,
                f"legacy global numpy.random.{tail}() draws from hidden global "
                "state; use a Generator from repro.utils.rng.make_rng",
            )


@register_rule(
    "DET002",
    summary="stdlib `random` module (global, platform-dependent state) "
    "outside utils/rng.py",
)
def check_stdlib_random(module: ModuleContext) -> Iterator[Finding]:
    """Flag imports of the stdlib ``random`` module outside the
    whitelisted RNG module; its global state is process-wide and
    invisible to the seed-derivation scheme."""
    if _is_whitelisted_rng_module(module):
        return
    for node in module.walk(ast.Import):
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                yield module.finding(
                    "DET002",
                    node,
                    "stdlib random uses hidden global state; use "
                    "repro.utils.rng.make_rng instead",
                )
    for node in module.walk(ast.ImportFrom):
        if node.module == "random":
            yield module.finding(
                "DET002",
                node,
                "stdlib random uses hidden global state; use "
                "repro.utils.rng.make_rng instead",
            )


@register_rule(
    "DET003",
    summary="wall-clock / process-clock value in library code (results must "
    "be a pure function of the seed)",
)
def check_time_derived(module: ModuleContext) -> Iterator[Finding]:
    """Flag wall-clock reads (``time.time``, ``datetime.now``, ...) whose
    values could leak into results; sanctioned timing goes through
    ``repro.obs`` spans and counters."""
    for node in module.walk(ast.Call):
        name = call_name(node)
        if name in _TIME_CALLS:
            yield module.finding(
                "DET003",
                node,
                f"{name}() is run-dependent; results and seeds must derive "
                "only from explicit parameters (waive with a reason for "
                "pure reporting/benchmark paths)",
            )


@register_rule(
    "DET004",
    summary="iteration over an unordered set feeding ordered results "
    "(wrap in sorted())",
)
def check_set_iteration(module: ModuleContext) -> Iterator[Finding]:
    """Flag direct iteration over set literals/comprehensions and
    ``set(...)`` calls; iteration order varies with hash seeding, so
    anything order-sensitive must go through ``sorted()``."""
    message = (
        "iteration order over a set is unspecified and varies with hash "
        "seeding across processes; wrap in sorted() before it can reach "
        "ordered results"
    )
    for node in module.walk(ast.For):
        if is_set_expression(node.iter):
            yield module.finding("DET004", node.iter, message)
    for comp in module.walk(ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp):
        for generator in comp.generators:
            if is_set_expression(generator.iter):
                yield module.finding("DET004", generator.iter, message)
    for node in module.walk(ast.Call):
        name = call_name(node)
        if (
            name in _ORDER_MATERIALISERS
            and node.args
            and is_set_expression(node.args[0])
        ):
            yield module.finding("DET004", node, message)


@register_rule(
    "DET005",
    summary="make_rng() without an explicit seed in experiment/campaign code",
)
def check_unseeded_make_rng(module: ModuleContext) -> Iterator[Finding]:
    """In experiment and campaign code, require every ``make_rng()`` call
    to pass an explicit seed; entry points own the seed so that
    results are a pure function of it."""
    if not module.in_path("repro/experiments/", "repro/campaign/"):
        return
    for node in module.walk(ast.Call):
        name = call_name(node)
        if name is None or name.rpartition(".")[2] != "make_rng":
            continue
        unseeded = not node.args or is_none(node.args[0])
        seed_kw = next((kw for kw in node.keywords if kw.arg == "seed"), None)
        if seed_kw is not None:
            unseeded = is_none(seed_kw.value)
        if unseeded:
            yield module.finding(
                "DET005",
                node,
                "experiment and campaign paths must pass an explicit seed to "
                "make_rng (derive per-task seeds with derive_seed)",
            )
