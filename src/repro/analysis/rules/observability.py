"""OBS — observability rules.

:mod:`repro.obs` is the sanctioned home of every timing measurement in
library code: its clock feeds the span tracer and the ``timed``
histograms, so a duration measured through it automatically aggregates
into run reports and ``BENCH_*.json`` metric snapshots.  An ad-hoc
``time.perf_counter()`` delta, by contrast, is invisible to the
telemetry layer — it can only be printed or, worse, leak into a result.

OBS001 therefore flags direct stopwatch-clock calls in ``src/repro``.
The sanctioned exceptions carry inline waivers: ``repro/obs/clock.py``
(the one wrapper the layer itself is built on) and standalone reporting
paths such as the benchmark writers.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import ModuleContext
from repro.analysis.finding import Finding
from repro.analysis.registry import register_rule
from repro.analysis.rules.common import call_name

#: Stopwatch clocks: monotonic/process clocks used to measure durations.
#: (Calendar clocks like ``time.time`` are DET003's concern — a direct
#: duration measurement is an observability escape, not just a
#: determinism hazard.)
_STOPWATCH_CALLS = {
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
}


@register_rule(
    "OBS001",
    summary="direct stopwatch clock call bypassing repro.obs (time through "
    "obs.monotonic / obs.span / obs.timed)",
)
def check_direct_stopwatch(module: ModuleContext) -> Iterator[Finding]:
    """Flag raw ``time.perf_counter()``/``monotonic()`` stopwatch pairs in
    library code; timing belongs in ``repro.obs`` spans so reports
    aggregate it (benchmark harnesses waive this)."""
    for node in module.walk(ast.Call):
        name = call_name(node)
        if name in _STOPWATCH_CALLS:
            yield module.finding(
                "OBS001",
                node,
                f"{name}() bypasses the telemetry layer; measure through "
                "repro.obs (obs.monotonic for stamps, obs.span for traced "
                "regions, obs.timed for call histograms) so the value lands "
                "in run reports — waive with a reason only inside repro.obs "
                "itself or in standalone reporting paths",
            )
