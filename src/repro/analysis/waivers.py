"""Inline waiver comments: ``# repro: allow[RULE] reason=...``.

A waiver suppresses findings of the named rule(s) on its own line, or —
when the comment stands alone — on the next code line.  The reason string
is **mandatory**: a waiver without one does not suppress anything and is
itself reported under ``WVR001``, so every suppressed finding carries a
human-readable justification next to the code it excuses.

Syntax (one comment, one or more comma-separated codes)::

    x = risky()  # repro: allow[DET001] reason=exploratory tool, not an experiment

    # repro: allow[API001,API003] reason=cleanup handler must catch everything
    except Exception:
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

__all__ = ["Waiver", "WaiverTable", "parse_waivers"]

#: Matches a waiver comment anywhere in a line; the reason runs to the end
#: of the line (it is prose, not code).
_WAIVER_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<codes>[A-Za-z0-9_,\s]+)\]\s*(?:reason\s*=\s*(?P<reason>.*))?"
)


@dataclass(frozen=True)
class Waiver:
    """One parsed waiver comment."""

    line: int
    codes: Tuple[str, ...]
    reason: str

    @property
    def valid(self) -> bool:
        """True when the mandatory reason string is present and non-empty."""
        return bool(self.reason.strip())

    def covers(self, rule: str) -> bool:
        """True when this waiver names ``rule`` or its whole family."""
        family = rule.rstrip("0123456789")
        return any(code in (rule, family) for code in self.codes)


class WaiverTable:
    """All waivers of one module, indexed by the line(s) they cover."""

    def __init__(self, waivers: Sequence[Waiver], code_lines: Sequence[int]):
        self.waivers: List[Waiver] = list(waivers)
        #: line -> waivers covering findings on that line.  A waiver on a
        #: comment-only line forwards to the next line holding code.
        self._by_line: Dict[int, List[Waiver]] = {}
        code_set = set(code_lines)
        for waiver in self.waivers:
            if not waiver.valid:
                continue
            lines = [waiver.line]
            if waiver.line not in code_set:
                following = [line for line in code_set if line > waiver.line]
                if following:
                    lines.append(min(following))
            for line in lines:
                self._by_line.setdefault(line, []).append(waiver)

    def waives(self, rule: str, line: int) -> bool:
        """True when a valid waiver covers ``rule`` at ``line``."""
        return any(waiver.covers(rule) for waiver in self._by_line.get(line, ()))

    def invalid(self) -> List[Waiver]:
        """Waivers missing their mandatory reason string."""
        return [waiver for waiver in self.waivers if not waiver.valid]


def parse_waivers(lines: Sequence[str]) -> List[Waiver]:
    """Extract every waiver comment from a module's source lines."""
    waivers: List[Waiver] = []
    for number, text in enumerate(lines, start=1):
        if "repro:" not in text:
            continue
        match = _WAIVER_RE.search(text)
        if match is None:
            continue
        codes = tuple(
            code.strip().upper() for code in match.group("codes").split(",") if code.strip()
        )
        reason = (match.group("reason") or "").strip()
        waivers.append(Waiver(line=number, codes=codes, reason=reason))
    return waivers
