"""Inline waiver comments: ``# repro: allow[RULE] reason=...``.

A waiver suppresses findings of the named rule(s) on its own line, or —
when the comment stands alone — on the next code line.  The reason string
is **mandatory**: a waiver without one does not suppress anything and is
itself reported under ``WVR001``, so every suppressed finding carries a
human-readable justification next to the code it excuses.

Syntax (one comment, one or more comma-separated codes)::

    x = risky()  # repro: allow[DET001] reason=exploratory tool, not an experiment

    # repro: allow[API001,API003] reason=cleanup handler must catch everything
    except Exception:
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["Waiver", "WaiverTable", "parse_waivers"]

#: Matches a waiver comment anywhere in a line; the reason runs to the end
#: of the line (it is prose, not code).
_WAIVER_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<codes>[A-Za-z0-9_,\s]+)\]\s*(?:reason\s*=\s*(?P<reason>.*))?"
)


@dataclass(frozen=True)
class Waiver:
    """One parsed waiver comment."""

    line: int
    codes: Tuple[str, ...]
    reason: str

    @property
    def valid(self) -> bool:
        """True when the mandatory reason string is present and non-empty."""
        return bool(self.reason.strip())

    def covers(self, rule: str) -> bool:
        """True when this waiver names ``rule`` or its whole family."""
        family = rule.rstrip("0123456789")
        return any(code in (rule, family) for code in self.codes)


class WaiverTable:
    """All waivers of one module, indexed by the line(s) they cover.

    Coverage forwards in two ways beyond the waiver's own line:

    * a waiver on a comment-only line covers the next line holding code;
    * when the covered code line is a decorator (``@...``), coverage
      extends through any further decorator lines to the decorated
      ``def``/``class`` line — so a waiver above ``@register_task(...)``
      still excuses a finding anchored at the function definition.
    """

    def __init__(
        self,
        waivers: Sequence[Waiver],
        code_lines: Sequence[int],
        source_lines: Optional[Sequence[str]] = None,
    ):
        self.waivers: List[Waiver] = list(waivers)
        #: line -> waivers covering findings on that line.
        self._by_line: Dict[int, List[Waiver]] = {}
        code_sorted = sorted(code_lines)
        code_set = set(code_sorted)

        def stripped(line: int) -> str:
            if source_lines is not None and 1 <= line <= len(source_lines):
                return source_lines[line - 1].strip()
            return ""

        def forward(line: int) -> List[int]:
            """Lines covered downstream of ``line`` (decorator chains)."""
            covered: List[int] = []
            current = line
            while stripped(current).startswith("@"):
                following = [number for number in code_sorted if number > current]
                if not following:
                    break
                current = following[0]
                covered.append(current)
            return covered

        for waiver in self.waivers:
            if not waiver.valid:
                continue
            lines = [waiver.line]
            anchor = waiver.line
            if waiver.line not in code_set:
                following = [number for number in code_sorted if number > waiver.line]
                if following:
                    anchor = following[0]
                    lines.append(anchor)
            lines.extend(forward(anchor))
            for line in lines:
                self._by_line.setdefault(line, []).append(waiver)

    def waives(self, rule: str, line: int) -> bool:
        """True when a valid waiver covers ``rule`` at ``line``."""
        return any(waiver.covers(rule) for waiver in self._by_line.get(line, ()))

    def covered_codes_by_line(self) -> Dict[int, List[str]]:
        """line → waiver codes (rules or families) valid on that line.

        This is the serialisable form the incremental cache stores so
        project-scope findings anchored in a cached (un-parsed) file can
        still be waived.
        """
        return {
            line: sorted({code for waiver in waivers for code in waiver.codes})
            for line, waivers in self._by_line.items()
        }

    def invalid(self) -> List[Waiver]:
        """Waivers missing their mandatory reason string."""
        return [waiver for waiver in self.waivers if not waiver.valid]


def parse_waivers(lines: Sequence[str]) -> List[Waiver]:
    """Extract every waiver comment from a module's source lines."""
    waivers: List[Waiver] = []
    for number, text in enumerate(lines, start=1):
        if "repro:" not in text:
            continue
        match = _WAIVER_RE.search(text)
        if match is None:
            continue
        codes = tuple(
            code.strip().upper() for code in match.group("codes").split(",") if code.strip()
        )
        reason = (match.group("reason") or "").strip()
        waivers.append(Waiver(line=number, codes=codes, reason=reason))
    return waivers
