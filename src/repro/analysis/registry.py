"""Decorator-driven registry of analysis rules.

Mirrors the encoder registry (:mod:`repro.coding.registry`) and the task
registry (:mod:`repro.campaign.tasks`): a rule registers itself by
decorating its check function, builtin rule modules are imported lazily
on first resolution, and everything resolves by code::

    from repro.analysis.registry import register_rule

    @register_rule("DET009", summary="forbid frobnication")
    def check_frobnication(module):
        for node in module.walk(ast.Call):
            ...
            yield module.finding("DET009", node, "do not frobnicate")

A check function receives one :class:`repro.analysis.engine.ModuleContext`
and yields :class:`repro.analysis.finding.Finding` objects; the engine
handles waivers, baselines, and ordering.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.analysis.finding import Finding
from repro.errors import ConfigurationError

__all__ = [
    "RuleSpec",
    "available_rules",
    "get_rule",
    "register_rule",
    "rule_specs",
    "unregister_rule",
]

#: Modules whose import registers the builtin rules (lazily, mirroring the
#: encoder and task-kind registries).
_BUILTIN_MODULES = (
    "repro.analysis.rules.determinism",
    "repro.analysis.rules.numeric",
    "repro.analysis.rules.registry_contracts",
    "repro.analysis.rules.api_hygiene",
    "repro.analysis.rules.observability",
    "repro.analysis.rules.parallel_safety",
    "repro.analysis.rules.imports",
    "repro.analysis.rules.resilience",
)

#: Valid values for a rule's ``scope``.
RULE_SCOPES = ("module", "project")

_builtins_loaded = False

CheckFunction = Callable[[Any], Iterable[Finding]]


@dataclass(frozen=True)
class RuleSpec:
    """One registered analysis rule.

    Attributes
    ----------
    code:
        Rule code, e.g. ``DET001``; the leading letters are the family.
    summary:
        One-line description shown by ``--list-rules`` and the catalog.
    check:
        For ``scope="module"`` rules, a function mapping a
        :class:`~repro.analysis.engine.ModuleContext` to findings; for
        ``scope="project"`` rules, one mapping a
        :class:`~repro.analysis.project.ProjectContext` to findings.
    scope:
        ``"module"`` (pass 1, one file at a time — the default) or
        ``"project"`` (pass 2, receives the whole-program context).
    doc:
        Longer description rendered by ``python -m repro.analysis rules``;
        defaults to the check function's docstring.
    """

    code: str
    summary: str
    check: CheckFunction
    scope: str = "module"
    doc: str = ""

    @property
    def family(self) -> str:
        """The rule family prefix (letters before the rule number)."""
        return self.code.rstrip("0123456789")

    @property
    def cache_key(self) -> str:
        """Identity the incremental cache signs the rule set with."""
        return f"{self.code}:{self.scope}"


_RULES: Dict[str, RuleSpec] = {}


def register_rule(
    code: str, *, summary: str = "", scope: str = "module"
) -> Callable[[CheckFunction], CheckFunction]:
    """Function decorator registering an analysis rule under ``code``."""
    key = code.upper()
    if not key or not key[0].isalpha():
        raise ConfigurationError(f"rule code {code!r} must start with a family letter")
    if scope not in RULE_SCOPES:
        raise ConfigurationError(
            f"rule scope {scope!r} must be one of {', '.join(RULE_SCOPES)}"
        )

    def decorator(check: CheckFunction) -> CheckFunction:
        if key in _RULES:
            raise ConfigurationError(f"rule {key!r} is already registered")
        doc = (check.__doc__ or "").strip()
        _RULES[key] = RuleSpec(code=key, summary=summary, check=check, scope=scope, doc=doc)
        return check

    return decorator


def unregister_rule(code: str) -> None:
    """Remove a rule (for tests and plugin replacement)."""
    _ensure_builtins()
    key = code.upper()
    if key not in _RULES:
        raise ConfigurationError(f"unknown rule {code!r}")
    del _RULES[key]


def _ensure_builtins() -> None:
    global _builtins_loaded
    if _builtins_loaded:
        return
    for module in _BUILTIN_MODULES:
        importlib.import_module(module)
    _builtins_loaded = True


def rule_specs() -> List[RuleSpec]:
    """All registered rules, sorted by code."""
    _ensure_builtins()
    return [_RULES[code] for code in sorted(_RULES)]


def available_rules() -> List[str]:
    """Codes of every registered rule, sorted."""
    return [spec.code for spec in rule_specs()]


def get_rule(code: str) -> RuleSpec:
    """Resolve a (case-insensitive) rule code."""
    _ensure_builtins()
    spec = _RULES.get(code.upper())
    if spec is None:
        raise ConfigurationError(
            f"unknown rule {code!r}; available: {', '.join(available_rules())}"
        )
    return spec


def select_rules(
    select: Optional[Sequence[str]] = None, ignore: Optional[Sequence[str]] = None
) -> List[RuleSpec]:
    """Resolve ``--select`` / ``--ignore`` tokens to the rules to run.

    Tokens are full codes (``DET001``) or family prefixes (``DET``),
    case-insensitive.  ``select`` defaults to every registered rule;
    ``ignore`` wins over ``select``.  Unknown tokens raise so typos do not
    silently disable a gate.
    """
    specs = rule_specs()
    known = {spec.code for spec in specs} | {spec.family for spec in specs}

    def check_tokens(tokens: Sequence[str], flag: str) -> List[str]:
        upper = [token.upper() for token in tokens]
        unknown = [token for token in upper if token not in known]
        if unknown:
            raise ConfigurationError(
                f"unknown {flag} token(s) {', '.join(unknown)}; "
                f"expected rule codes or families from: {', '.join(sorted(known))}"
            )
        return upper

    selected = check_tokens(list(select), "--select") if select else None
    ignored = check_tokens(list(ignore), "--ignore") if ignore else []

    def matches(spec: RuleSpec, tokens: Sequence[str]) -> bool:
        return any(token in (spec.code, spec.family) for token in tokens)

    return [
        spec
        for spec in specs
        if (selected is None or matches(spec, selected)) and not matches(spec, ignored)
    ]
