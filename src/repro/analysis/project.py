"""Whole-program model for the project-scope analysis pass.

Pass 1 of the engine distils every module into a :class:`ModuleSummary` —
its import bindings, module-level state, and one :class:`FunctionSummary`
per function (which module globals it reads and writes, what it calls,
whether it is a registered task kind, what it submits to executors).
Pass 2 assembles the summaries into a :class:`ProjectContext`: an import
graph, a conservative call graph over statically-resolvable ``repro.*``
calls, and transitive global-mutation closures, which the project-scope
rules (the ``PAR`` and ``IMP`` families) consume.

Summaries are deliberately plain data — every record serialises to JSON
and back — so the incremental cache (:mod:`repro.analysis.cache`) can
skip re-parsing unchanged files while the project pass still sees the
whole program.

The call graph is *conservative in the practical sense*: an edge exists
only when the callee is statically nameable and resolves to a function in
an analyzed module (a local ``def``, an imported name, or a dotted
``module.function`` reference, with re-exports chased through package
``__init__`` bindings).  Method calls on objects are not resolved; the
PAR rules are therefore under- rather than over-approximate, which is the
right trade for a lint gate.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.rules.common import call_name, decorator_name, dotted_name

__all__ = [
    "FunctionSummary",
    "GlobalBinding",
    "ImportRecord",
    "ModuleSummary",
    "ProjectContext",
    "SubmitSite",
    "WriteSite",
    "module_name_for_path",
    "summarize_module",
]

#: Methods whose call mutates their receiver in place.  Deliberately broad
#: — a false "mutation" on an immutable receiver costs nothing, a missed
#: one hides a cross-process hazard.
_MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "clear",
        "remove",
        "discard",
        "increment",
        "observe",
        "set",
        "reset",
        "merge",
        "push",
        "write",
        "register",
        "unregister",
    }
)

#: Call tails that construct a random-number generator object.
_RNG_CONSTRUCTORS = frozenset({"make_rng", "default_rng", "Generator", "RandomState"})

#: Executor fan-out methods.  ``submit`` is distinctive on its own;
#: the map/apply family only counts on a pool/executor-named receiver.
_SUBMIT_METHODS = frozenset({"submit"})
_MAP_METHODS = frozenset({"map", "starmap", "apply_async", "imap", "imap_unordered"})
_EXECUTOR_RECEIVER_HINTS = ("pool", "executor", "exec")


def module_name_for_path(relpath: str) -> str:
    """Dotted module name for a repository-relative path.

    ``src/repro/coding/base.py`` → ``repro.coding.base``;
    ``src/repro/analysis/__init__.py`` → ``repro.analysis``;
    ``benchmarks/bench_x.py`` → ``benchmarks.bench_x``.
    """
    normalised = relpath.replace("\\", "/")
    if normalised.startswith("src/"):
        normalised = normalised[len("src/") :]
    if normalised.endswith(".py"):
        normalised = normalised[: -len(".py")]
    dotted = normalised.strip("/").replace("/", ".")
    if dotted.endswith(".__init__"):
        dotted = dotted[: -len(".__init__")]
    return dotted


@dataclass(frozen=True)
class ImportRecord:
    """One module-level import edge (lazy in-function imports excluded)."""

    target: str
    lineno: int
    snippet: str

    def to_json(self) -> Dict[str, Any]:
        return {"target": self.target, "lineno": self.lineno, "snippet": self.snippet}

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "ImportRecord":
        return cls(
            target=str(payload["target"]),
            lineno=int(payload["lineno"]),
            snippet=str(payload["snippet"]),
        )


@dataclass(frozen=True)
class GlobalBinding:
    """One module-level name binding."""

    name: str
    lineno: int
    snippet: str
    mutable: bool
    is_rng: bool

    def to_json(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "lineno": self.lineno,
            "snippet": self.snippet,
            "mutable": self.mutable,
            "is_rng": self.is_rng,
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "GlobalBinding":
        return cls(
            name=str(payload["name"]),
            lineno=int(payload["lineno"]),
            snippet=str(payload["snippet"]),
            mutable=bool(payload["mutable"]),
            is_rng=bool(payload["is_rng"]),
        )


@dataclass(frozen=True)
class WriteSite:
    """One direct write to a module-level name inside a function body."""

    name: str
    lineno: int
    snippet: str
    kind: str  # rebind | augment | mutate-call | subscript | attribute | delete

    def to_json(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "lineno": self.lineno,
            "snippet": self.snippet,
            "kind": self.kind,
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "WriteSite":
        return cls(
            name=str(payload["name"]),
            lineno=int(payload["lineno"]),
            snippet=str(payload["snippet"]),
            kind=str(payload["kind"]),
        )


@dataclass(frozen=True)
class SubmitSite:
    """One call handing a callable to an executor/pool fan-out method."""

    lineno: int
    snippet: str
    method: str
    receiver: str
    callable_kind: str  # lambda | nested-function | bound-method | name | unknown
    callable_name: str

    def to_json(self) -> Dict[str, Any]:
        return {
            "lineno": self.lineno,
            "snippet": self.snippet,
            "method": self.method,
            "receiver": self.receiver,
            "callable_kind": self.callable_kind,
            "callable_name": self.callable_name,
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "SubmitSite":
        return cls(
            lineno=int(payload["lineno"]),
            snippet=str(payload["snippet"]),
            method=str(payload["method"]),
            receiver=str(payload["receiver"]),
            callable_kind=str(payload["callable_kind"]),
            callable_name=str(payload["callable_name"]),
        )


@dataclass(frozen=True)
class FunctionSummary:
    """Flattened facts about one top-level function or method.

    Nested functions (closures, decorator factories) fold into their
    enclosing top-level definition: their reads, writes, and calls are
    attributed to the outermost ``def`` so call-graph propagation and the
    sanctioned-setter check both key off the name a reader sees.
    """

    name: str  # local qualname, e.g. "run_campaign" or "Engine.run"
    module: str
    lineno: int
    snippet: str
    decorators: Tuple[str, ...]
    task_kind: Optional[str]
    global_reads: FrozenSet[str]
    global_writes: Tuple[WriteSite, ...]
    calls: Tuple[str, ...]
    submits: Tuple[SubmitSite, ...]
    nested_names: FrozenSet[str]

    @property
    def qualname(self) -> str:
        """Project-wide identity: ``module:local_qualname``."""
        return f"{self.module}:{self.name}"

    @property
    def outer_name(self) -> str:
        """Name of the outermost definition (sanction checks key on it)."""
        return self.name.split(".", 1)[0]

    def to_json(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "module": self.module,
            "lineno": self.lineno,
            "snippet": self.snippet,
            "decorators": list(self.decorators),
            "task_kind": self.task_kind,
            "global_reads": sorted(self.global_reads),
            "global_writes": [site.to_json() for site in self.global_writes],
            "calls": list(self.calls),
            "submits": [site.to_json() for site in self.submits],
            "nested_names": sorted(self.nested_names),
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "FunctionSummary":
        return cls(
            name=str(payload["name"]),
            module=str(payload["module"]),
            lineno=int(payload["lineno"]),
            snippet=str(payload["snippet"]),
            decorators=tuple(str(item) for item in payload["decorators"]),
            task_kind=(
                str(payload["task_kind"]) if payload["task_kind"] is not None else None
            ),
            global_reads=frozenset(str(item) for item in payload["global_reads"]),
            global_writes=tuple(
                WriteSite.from_json(item) for item in payload["global_writes"]
            ),
            calls=tuple(str(item) for item in payload["calls"]),
            submits=tuple(SubmitSite.from_json(item) for item in payload["submits"]),
            nested_names=frozenset(str(item) for item in payload["nested_names"]),
        )


@dataclass
class ModuleSummary:
    """Everything the project pass needs to know about one module."""

    module: str
    path: str
    imports: List[ImportRecord] = field(default_factory=list)
    import_bindings: Dict[str, str] = field(default_factory=dict)
    globals_: Dict[str, GlobalBinding] = field(default_factory=dict)
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        return {
            "module": self.module,
            "path": self.path,
            "imports": [record.to_json() for record in self.imports],
            "import_bindings": dict(self.import_bindings),
            "globals": {
                name: binding.to_json() for name, binding in self.globals_.items()
            },
            "functions": {
                name: summary.to_json() for name, summary in self.functions.items()
            },
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "ModuleSummary":
        return cls(
            module=str(payload["module"]),
            path=str(payload["path"]),
            imports=[ImportRecord.from_json(item) for item in payload["imports"]],
            import_bindings={
                str(key): str(value)
                for key, value in payload["import_bindings"].items()
            },
            globals_={
                str(name): GlobalBinding.from_json(item)
                for name, item in payload["globals"].items()
            },
            functions={
                str(name): FunctionSummary.from_json(item)
                for name, item in payload["functions"].items()
            },
        )


# --------------------------------------------------------------- extraction


def _line_text(lines: Sequence[str], lineno: int) -> str:
    if 1 <= lineno <= len(lines):
        return lines[lineno - 1].strip()
    return ""


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = call_name(node)
        if name in ("list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter"):
            return True
        # A call to a CamelCase constructor yields an object with state;
        # treat it as mutable unless it is an obvious value constructor.
        tail = (name or "").rpartition(".")[2]
        if tail[:1].isupper() and tail not in ("True", "False", "None"):
            return True
    return False


def _is_rng_constructor(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = call_name(node)
    if name is None:
        return False
    return name.rpartition(".")[2] in _RNG_CONSTRUCTORS


def _literal_task_kind(decorators: Sequence[ast.expr]) -> Optional[str]:
    """The literal kind name when decorated with ``@register_task("kind")``."""
    for dec in decorators:
        if decorator_name(dec) != "register_task":
            continue
        if isinstance(dec, ast.Call):
            name_arg: Optional[ast.expr] = dec.args[0] if dec.args else None
            if name_arg is None:
                keyword = next((kw for kw in dec.keywords if kw.arg == "name"), None)
                name_arg = keyword.value if keyword is not None else None
            if isinstance(name_arg, ast.Constant) and isinstance(name_arg.value, str):
                return name_arg.value
        return "<unnamed>"
    return None


def _toplevel_import_records(
    tree: ast.Module, lines: Sequence[str]
) -> Tuple[List[ImportRecord], Dict[str, str]]:
    """Module-level imports and the local-name → dotted-target bindings.

    Imports guarded by ``if TYPE_CHECKING:`` are excluded from the edge
    list (they never execute, so they cannot create a runtime cycle) but
    still contribute name bindings for call resolution.
    """
    records: List[ImportRecord] = []
    bindings: Dict[str, str] = {}

    def visit(body: Sequence[ast.stmt], runtime: bool) -> None:
        for statement in body:
            if isinstance(statement, ast.Import):
                for alias in statement.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    bindings[local] = alias.name if alias.asname else local
                    if runtime:
                        records.append(
                            ImportRecord(
                                target=alias.name,
                                lineno=statement.lineno,
                                snippet=_line_text(lines, statement.lineno),
                            )
                        )
            elif isinstance(statement, ast.ImportFrom):
                if statement.module is None or statement.level:
                    continue  # relative imports stay un-modelled (none in-tree)
                for alias in statement.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    bindings[local] = f"{statement.module}.{alias.name}"
                if runtime:
                    records.append(
                        ImportRecord(
                            target=statement.module,
                            lineno=statement.lineno,
                            snippet=_line_text(lines, statement.lineno),
                        )
                    )
            elif isinstance(statement, ast.If):
                test_src = ast.dump(statement.test)
                type_checking = "TYPE_CHECKING" in test_src
                visit(statement.body, runtime and not type_checking)
                visit(statement.orelse, runtime)
            elif isinstance(statement, ast.Try):
                visit(statement.body, runtime)
                for handler in statement.handlers:
                    visit(handler.body, runtime)
                visit(statement.orelse, runtime)
                visit(statement.finalbody, runtime)

    visit(tree.body, True)
    return records, bindings


def _target_names(target: ast.expr) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)


def _module_globals(tree: ast.Module, lines: Sequence[str]) -> Dict[str, GlobalBinding]:
    """Module-level name bindings (first binding wins for the location)."""
    out: Dict[str, GlobalBinding] = {}

    def record(name: str, lineno: int, value: Optional[ast.expr]) -> None:
        if name in out:
            return
        out[name] = GlobalBinding(
            name=name,
            lineno=lineno,
            snippet=_line_text(lines, lineno),
            mutable=_is_mutable_literal(value) if value is not None else False,
            is_rng=_is_rng_constructor(value) if value is not None else False,
        )

    for statement in tree.body:
        if isinstance(statement, ast.Assign):
            for target in statement.targets:
                for name in _target_names(target):
                    record(name, statement.lineno, statement.value)
        elif isinstance(statement, ast.AnnAssign) and isinstance(statement.target, ast.Name):
            record(statement.target.id, statement.lineno, statement.value)
        elif isinstance(statement, ast.AugAssign) and isinstance(statement.target, ast.Name):
            record(statement.target.id, statement.lineno, None)
    return out


class _FunctionVisitor(ast.NodeVisitor):
    """Collect reads/writes/calls of one function, nested defs flattened."""

    def __init__(self, lines: Sequence[str]):
        self.lines = lines
        self.declared_global: Set[str] = set()
        self.local_names: Set[str] = set()
        self.nested_names: Set[str] = set()
        self.reads: Set[str] = set()
        self.writes: List[WriteSite] = []
        self.calls: List[str] = []
        self.submits: List[SubmitSite] = []

    # -- helpers
    def _write(self, name: str, node: ast.AST, kind: str) -> None:
        lineno = getattr(node, "lineno", 1)
        self.writes.append(
            WriteSite(
                name=name,
                lineno=lineno,
                snippet=_line_text(self.lines, lineno),
                kind=kind,
            )
        )

    def _record_target(self, target: ast.expr, node: ast.AST, kind: str) -> None:
        if isinstance(target, ast.Name):
            if target.id in self.declared_global:
                self._write(target.id, node, kind)
            else:
                self.local_names.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_target(element, node, kind)
        elif isinstance(target, ast.Subscript):
            base = _root_name(target.value)
            if base is not None and base not in self.local_names:
                self._write(base, node, "subscript")
        elif isinstance(target, ast.Attribute):
            base = _root_name(target.value)
            if base is not None and base not in self.local_names and base not in ("self", "cls"):
                self._write(base, node, "attribute")

    # -- visitors
    def visit_Global(self, node: ast.Global) -> None:
        self.declared_global.update(node.names)

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        self.local_names.update(node.names)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_target(target, node, "rebind")
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._record_target(node.target, node, "rebind")
        if node.value is not None:
            self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_target(node.target, node, "augment")
        self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                base = _root_name(target.value)
                if base is not None and base not in self.local_names:
                    self._write(base, node, "delete")
            elif isinstance(target, ast.Name) and target.id in self.declared_global:
                self._write(target.id, node, "delete")

    def visit_For(self, node: ast.For) -> None:
        self._record_target(node.target, node, "rebind")
        self.visit(node.iter)
        for statement in node.body + node.orelse:
            self.visit(statement)

    def visit_withitem(self, node: ast.withitem) -> None:
        self.visit(node.context_expr)
        if node.optional_vars is not None:
            self._record_target(node.optional_vars, node.context_expr, "rebind")

    def visit_NamedExpr(self, node: ast.NamedExpr) -> None:
        self._record_target(node.target, node, "rebind")
        self.visit(node.value)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._nested(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._nested(node)

    def _nested(self, node: ast.AST) -> None:
        name = getattr(node, "name", "<lambda>")
        self.local_names.add(name)
        self.nested_names.add(name)
        for arg in _all_args(node):
            self.local_names.add(arg)
        for statement in getattr(node, "body", []):
            self.visit(statement)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        for arg in _all_args(node):
            self.local_names.add(arg)
        self.visit(node.body)

    def visit_Call(self, node: ast.Call) -> None:
        name = call_name(node)
        if name is not None:
            self.calls.append(name)
            root, _, method = name.rpartition(".")
            base = root.rpartition(".")[2] if root else ""
            if root and method in _MUTATING_METHODS:
                receiver_root = _root_name(node.func.value) if isinstance(
                    node.func, ast.Attribute
                ) else base
                if (
                    receiver_root is not None
                    and receiver_root not in self.local_names
                    and receiver_root not in ("self", "cls")
                ):
                    self._write(receiver_root, node, "mutate-call")
            self._maybe_submit(node, name)
        self.generic_visit(node)

    def _maybe_submit(self, node: ast.Call, name: str) -> None:
        receiver, _, method = name.rpartition(".")
        if not receiver:
            return
        receiver_tail = receiver.rpartition(".")[2].lower()
        is_submit = method in _SUBMIT_METHODS
        is_map = method in _MAP_METHODS and any(
            hint in receiver_tail for hint in _EXECUTOR_RECEIVER_HINTS
        )
        if not (is_submit or is_map):
            return
        target = node.args[0] if node.args else None
        kind, callable_name = "unknown", ""
        if isinstance(target, ast.Lambda):
            kind, callable_name = "lambda", "<lambda>"
        elif isinstance(target, ast.Name):
            callable_name = target.id
            kind = "nested-function" if target.id in self.nested_names else "name"
        elif isinstance(target, ast.Attribute):
            callable_name = dotted_name(target) or target.attr
            kind = "bound-method"
        self.submits.append(
            SubmitSite(
                lineno=node.lineno,
                snippet=_line_text(self.lines, node.lineno),
                method=method,
                receiver=receiver,
                callable_kind=kind,
                callable_name=callable_name,
            )
        )

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load) and node.id not in self.local_names:
            self.reads.add(node.id)


def _all_args(node: ast.AST) -> List[str]:
    args = getattr(node, "args", None)
    if not isinstance(args, ast.arguments):
        return []
    names = [
        arg.arg
        for arg in args.posonlyargs + args.args + args.kwonlyargs
    ]
    if args.vararg is not None:
        names.append(args.vararg.arg)
    if args.kwarg is not None:
        names.append(args.kwarg.arg)
    return names


def _root_name(node: ast.expr) -> Optional[str]:
    """The leftmost name of a Name/Attribute/Subscript chain."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _summarize_function(
    node: ast.AST,
    qualname: str,
    module: str,
    lines: Sequence[str],
) -> FunctionSummary:
    visitor = _FunctionVisitor(lines)
    for arg in _all_args(node):
        visitor.local_names.add(arg)
    for statement in getattr(node, "body", []):
        visitor.visit(statement)
    decorators = tuple(
        name
        for name in (
            decorator_name(dec) for dec in getattr(node, "decorator_list", [])
        )
        if name is not None
    )
    lineno = getattr(node, "lineno", 1)
    return FunctionSummary(
        name=qualname,
        module=module,
        lineno=lineno,
        snippet=_line_text(lines, lineno),
        decorators=decorators,
        task_kind=_literal_task_kind(getattr(node, "decorator_list", [])),
        global_reads=frozenset(visitor.reads),
        global_writes=tuple(visitor.writes),
        calls=tuple(visitor.calls),
        submits=tuple(visitor.submits),
        nested_names=frozenset(visitor.nested_names),
    )


def summarize_module(relpath: str, tree: ast.Module, lines: Sequence[str]) -> ModuleSummary:
    """Distil one parsed module into its project-pass summary."""
    module = module_name_for_path(relpath)
    imports, bindings = _toplevel_import_records(tree, lines)
    summary = ModuleSummary(
        module=module,
        path=relpath,
        imports=imports,
        import_bindings=bindings,
        globals_=_module_globals(tree, lines),
    )
    for statement in tree.body:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            summary.functions[statement.name] = _summarize_function(
                statement, statement.name, module, lines
            )
        elif isinstance(statement, ast.ClassDef):
            for item in statement.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{statement.name}.{item.name}"
                    summary.functions[qualname] = _summarize_function(
                        item, qualname, module, lines
                    )
    return summary


# ------------------------------------------------------------ project view


class ProjectContext:
    """The assembled whole-program view handed to project-scope rules."""

    def __init__(self, summaries: Sequence[ModuleSummary]):
        self.modules: Dict[str, ModuleSummary] = {}
        for summary in summaries:
            self.modules[summary.module] = summary
        #: module → set of imported modules that are themselves analyzed.
        self.import_graph: Dict[str, Set[str]] = {}
        for summary in self.modules.values():
            edges = set()
            for record in summary.imports:
                resolved = self.resolve_module(record.target)
                if resolved is not None and resolved != summary.module:
                    edges.add(resolved)
            self.import_graph[summary.module] = edges
        self._call_edges: Dict[str, Tuple[str, ...]] = {}
        self._transitive_writes: Dict[str, Tuple[Tuple[str, WriteSite, Tuple[str, ...]], ...]] = {}
        self._transitive_reads: Dict[str, FrozenSet[Tuple[str, str]]] = {}

    # -- module helpers
    def resolve_module(self, dotted: str) -> Optional[str]:
        """Longest analyzed-module prefix of a dotted import target."""
        parts = dotted.split(".")
        for length in range(len(parts), 0, -1):
            candidate = ".".join(parts[:length])
            if candidate in self.modules:
                return candidate
        return None

    def function(self, qualname: str) -> Optional[FunctionSummary]:
        """Look up a function by its ``module:name`` qualname."""
        module, _, name = qualname.partition(":")
        summary = self.modules.get(module)
        if summary is None:
            return None
        return summary.functions.get(name)

    def functions(self) -> Iterator[FunctionSummary]:
        """Every function of every analyzed module, in stable order."""
        for module in sorted(self.modules):
            summary = self.modules[module]
            for name in sorted(summary.functions):
                yield summary.functions[name]

    def task_functions(self) -> Iterator[FunctionSummary]:
        """Functions registered as campaign task kinds."""
        for function in self.functions():
            if function.task_kind is not None:
                yield function

    # -- call graph
    def _chase_reexport(self, dotted: str, hops: int = 3) -> str:
        """Follow package ``__init__`` re-export bindings to the definition."""
        current = dotted
        for _ in range(hops):
            module, _, name = current.rpartition(".")
            summary = self.modules.get(module)
            if summary is None or not name:
                return current
            if name in summary.functions:
                return current
            binding = summary.import_bindings.get(name)
            if binding is None or binding == current:
                return current
            current = binding
        return current

    def resolve_call(self, caller: FunctionSummary, raw: str) -> Optional[str]:
        """Resolve one raw call name to a ``module:function`` qualname."""
        summary = self.modules.get(caller.module)
        if summary is None:
            return None
        head, _, tail = raw.rpartition(".")
        if not head:
            # Bare name: a sibling top-level function, or an imported one.
            if raw in summary.functions:
                return f"{caller.module}:{raw}"
            binding = summary.import_bindings.get(raw)
            if binding is not None:
                return self._qualname_for(binding)
            return None
        # Dotted: resolve the root through the import bindings, then look
        # the full chain up as module.attr.
        root = raw.split(".", 1)[0]
        binding = summary.import_bindings.get(root)
        if binding is None:
            return None
        dotted = binding + raw[len(root) :]
        return self._qualname_for(dotted)

    def _qualname_for(self, dotted: str) -> Optional[str]:
        dotted = self._chase_reexport(dotted)
        module, _, name = dotted.rpartition(".")
        summary = self.modules.get(module)
        if summary is None or not name:
            return None
        if name in summary.functions:
            return f"{module}:{name}"
        return None

    def call_edges(self, function: FunctionSummary) -> Tuple[str, ...]:
        """Resolved callee qualnames of one function (memoised)."""
        cached = self._call_edges.get(function.qualname)
        if cached is not None:
            return cached
        seen: List[str] = []
        for raw in function.calls:
            resolved = self.resolve_call(function, raw)
            if resolved is not None and resolved not in seen:
                seen.append(resolved)
        edges = tuple(seen)
        self._call_edges[function.qualname] = edges
        return edges

    def transitive_writes(
        self, function: FunctionSummary
    ) -> Tuple[Tuple[str, WriteSite, Tuple[str, ...]], ...]:
        """Every module-global write reachable from ``function``.

        Returns ``(module, site, chain)`` triples where ``chain`` is the
        call path from ``function`` to the writer (inclusive), and the
        write targets a *module-level binding* of the writer's module.
        """
        cached = self._transitive_writes.get(function.qualname)
        if cached is not None:
            return cached
        out: List[Tuple[str, WriteSite, Tuple[str, ...]]] = []
        seen_sites: Set[Tuple[str, str, int]] = set()
        visited: Set[str] = set()

        def visit(current: FunctionSummary, chain: Tuple[str, ...]) -> None:
            if current.qualname in visited:
                return
            visited.add(current.qualname)
            module_globals = self.modules[current.module].globals_ if (
                current.module in self.modules
            ) else {}
            for site in current.global_writes:
                if site.name not in module_globals and site.kind in (
                    "subscript",
                    "attribute",
                    "mutate-call",
                    "delete",
                ):
                    # Mutation through a name that is not module-level
                    # state of the writer's module (e.g. a parameter that
                    # shadows nothing) — not a global write.
                    continue
                key = (current.module, site.name, site.lineno)
                if key in seen_sites:
                    continue
                seen_sites.add(key)
                out.append((current.module, site, chain))
            for callee in self.call_edges(current):
                target = self.function(callee)
                if target is not None:
                    visit(target, chain + (target.qualname,))

        visit(function, (function.qualname,))
        result = tuple(out)
        self._transitive_writes[function.qualname] = result
        return result

    def transitive_reads(self, function: FunctionSummary) -> FrozenSet[Tuple[str, str]]:
        """``(module, name)`` pairs of module-level bindings read
        (transitively) from ``function``."""
        cached = self._transitive_reads.get(function.qualname)
        if cached is not None:
            return cached
        out: Set[Tuple[str, str]] = set()
        visited: Set[str] = set()

        def visit(current: FunctionSummary) -> None:
            if current.qualname in visited:
                return
            visited.add(current.qualname)
            summary = self.modules.get(current.module)
            if summary is not None:
                for name in current.global_reads:
                    if name in summary.globals_:
                        out.add((current.module, name))
            for callee in self.call_edges(current):
                target = self.function(callee)
                if target is not None:
                    visit(target)

        visit(function)
        result = frozenset(out)
        self._transitive_reads[function.qualname] = result
        return result

    # -- import cycles
    def import_cycles(self) -> List[List[str]]:
        """Strongly-connected components of size > 1 (plus self-loops),
        each rotated to start at its lexicographically-first module."""
        index_counter = [0]
        stack: List[str] = []
        lowlink: Dict[str, int] = {}
        index: Dict[str, int] = {}
        on_stack: Set[str] = set()
        components: List[List[str]] = []

        def strongconnect(node: str) -> None:
            index[node] = lowlink[node] = index_counter[0]
            index_counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            for neighbour in sorted(self.import_graph.get(node, ())):
                if neighbour not in index:
                    strongconnect(neighbour)
                    lowlink[node] = min(lowlink[node], lowlink[neighbour])
                elif neighbour in on_stack:
                    lowlink[node] = min(lowlink[node], index[neighbour])
            if lowlink[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1 or node in self.import_graph.get(node, ()):
                    components.append(component)

        for node in sorted(self.import_graph):
            if node not in index:
                strongconnect(node)

        cycles: List[List[str]] = []
        for component in components:
            first = min(component)
            pivot = component.index(first)
            cycles.append(component[pivot:] + component[:pivot])
        return sorted(cycles)
