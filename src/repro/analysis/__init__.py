"""Static analysis for the repro codebase: determinism, numeric safety,
registry contracts, and API hygiene — enforced at lint time.

Every result table in this repository must be bit-identical at any
``--jobs``, across cached resumes, and between the batched kernels and
their scalar oracles.  The test suite can only spot-check those
invariants dynamically; this subsystem enforces their preconditions
statically, before the code runs:

* ``DET`` — unseeded randomness, stdlib ``random``, wall-clock values,
  unordered-set iteration (``repro/utils/rng.py`` is the whitelisted home
  of generator construction);
* ``NUM`` — advanced-indexing gathers feeding pairwise reductions (the
  PR-5 1-ulp lesson, now a rule instead of a comment), boolean sums
  without an explicit dtype, float ``==``;
* ``REG`` — the encoder and task-kind registry contracts (batched
  overrides present, signatures matching ``coding/base.py``, literal
  content-addressable task names);
* ``API`` — blanket ``except Exception``, mutable defaults, missing type
  hints on public functions;
* ``PAR`` — parallel-safety hazards only a whole-program view can see:
  task kinds transitively mutating module globals, closures handed to
  executors, module-level RNGs reached from workers, unsanctioned writes
  to guarded ``repro.memctrl``/``repro.campaign`` state;
* ``IMP`` — module-level import cycles (order-dependent package loads).

The engine runs two passes: per-module AST rules first, then the
project-scope ``PAR``/``IMP`` rules over a
:class:`~repro.analysis.project.ProjectContext` assembled from every
module's summary (symbol tables, import graph, conservative call graph,
transitive global-mutation closure).  Repeat runs are incremental — a
content-hash cache skips re-parsing unchanged files.

Rules register through the same decorator idiom as encoders and task
kinds (:func:`register_rule`, with ``scope="module"`` or
``scope="project"``); findings are suppressed per line with
``# repro: allow[RULE] reason=...`` (the reason is mandatory) or
grandfathered in the committed ``analysis-baseline.json``.  The CLI is
``python -m repro.analysis`` — see :mod:`repro.analysis.cli`.
"""

from repro.analysis.baseline import Baseline
from repro.analysis.cli import main
from repro.analysis.engine import (
    AnalysisReport,
    AnalysisStats,
    ModuleContext,
    analyze_file,
    analyze_paths,
    analyze_source,
    analyze_sources,
    run_analysis,
)
from repro.analysis.finding import Finding
from repro.analysis.project import ProjectContext
from repro.analysis.registry import (
    RuleSpec,
    available_rules,
    register_rule,
    rule_specs,
    unregister_rule,
)
from repro.analysis.sarif import sarif_report

__all__ = [
    "AnalysisReport",
    "AnalysisStats",
    "Baseline",
    "Finding",
    "ModuleContext",
    "ProjectContext",
    "RuleSpec",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "analyze_sources",
    "available_rules",
    "main",
    "register_rule",
    "rule_specs",
    "run_analysis",
    "sarif_report",
    "unregister_rule",
]
