"""``python -m repro.analysis`` — the static-analysis command line.

Usage::

    python -m repro.analysis src                   # gate against the baseline
    python -m repro.analysis src --format json     # machine-readable findings
    python -m repro.analysis src --format sarif    # SARIF 2.1.0 log
    python -m repro.analysis src --select DET NUM  # only two rule families
    python -m repro.analysis src --write-baseline  # regenerate the baseline
    python -m repro.analysis rules                 # the rule catalog
    python -m repro.analysis --list-rules

Exit codes: 0 — no new findings; 1 — at least one finding not covered by
the baseline; 2 — configuration error (unknown rule, unreadable path).

The baseline (``analysis-baseline.json`` in the working directory, or
``--baseline PATH``) grandfathers pre-existing findings; ``--output``
writes the findings JSON and ``--sarif`` the SARIF log to files
regardless of the terminal format, so CI can upload both as artifacts
while still gating on the exit code.

Repeat runs are incremental: pass-1 results are cached per file in
``.repro-analysis-cache.json`` keyed by content hash and rule-set
version, so only changed files are re-parsed (``--no-cache`` opts out,
``--cache PATH`` relocates the file).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.analysis.cache import DEFAULT_CACHE_NAME
from repro.analysis.engine import AnalysisStats, run_analysis
from repro.analysis.finding import Finding
from repro.analysis.registry import RuleSpec, rule_specs, select_rules
from repro.analysis.sarif import sarif_report
from repro.errors import ConfigurationError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The analyzer's argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Determinism-, numeric- and parallel-safety static analysis "
        "for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze ('rules' prints the rule catalog)",
    )
    parser.add_argument(
        "--select",
        nargs="+",
        metavar="RULE",
        help="only run these rule codes or families (e.g. DET NUM PAR001)",
    )
    parser.add_argument(
        "--ignore",
        nargs="+",
        metavar="RULE",
        help="skip these rule codes or families (wins over --select)",
    )
    parser.add_argument(
        "--format",
        "--output-format",
        dest="format",
        choices=("text", "json", "sarif"),
        default="text",
        help="terminal output format (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="PATH",
        help="also write the findings JSON to PATH (for CI artifacts)",
    )
    parser.add_argument(
        "--sarif",
        metavar="PATH",
        help="also write a SARIF 2.1.0 log to PATH (for code-scanning upload)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help=f"baseline file of grandfathered findings (default: ./{DEFAULT_BASELINE_NAME} "
        "when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding as new",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--cache",
        metavar="PATH",
        help=f"incremental cache file (default: ./{DEFAULT_CACHE_NAME})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="re-parse every file; neither read nor write the cache",
    )
    parser.add_argument(
        "--root",
        metavar="DIR",
        help="directory paths are reported relative to (default: cwd)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list registered rules and exit"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-finding lines; print the summary only"
    )
    return parser


def _list_rules() -> int:
    for spec in rule_specs():
        print(f"{spec.code}  {spec.summary}")
    return 0


def _rule_catalog_entry(spec: RuleSpec) -> Dict[str, Any]:
    doc_line = (spec.doc or spec.summary).strip().splitlines()[0].strip()
    return {
        "code": spec.code,
        "family": spec.family,
        "scope": spec.scope,
        "summary": spec.summary,
        "doc": doc_line,
        "waiver": f"# repro: allow[{spec.code}] reason=<why this site is exempt>",
    }


def _render_rules(output_format: str) -> int:
    """The ``rules`` subcommand: the full catalog, one entry per rule."""
    entries = [_rule_catalog_entry(spec) for spec in rule_specs()]
    if output_format == "json":
        print(json.dumps({"version": 1, "rules": entries}, indent=2))
        return 0
    for entry in entries:
        print(f"{entry['code']}  [{entry['family']}, {entry['scope']} scope]")
        print(f"    {entry['doc']}")
        print(f"    waive with: {entry['waiver']}")
    print(f"{len(entries)} rule(s) registered")
    return 0


def _resolve_baseline_path(args: argparse.Namespace) -> Optional[Path]:
    if args.no_baseline:
        return None
    if args.baseline:
        return Path(args.baseline)
    default = Path(DEFAULT_BASELINE_NAME)
    if default.is_file() or args.write_baseline:
        return default
    return None


def _resolve_cache_path(args: argparse.Namespace) -> Optional[Path]:
    if args.no_cache:
        return None
    if args.cache:
        return Path(args.cache)
    return Path(DEFAULT_CACHE_NAME)


def _report_json(
    findings: Sequence[Finding],
    new: Sequence[Finding],
    baselined: Sequence[Finding],
    stats: AnalysisStats,
) -> Dict[str, Any]:
    return {
        "version": 1,
        "counts": {
            "total": len(findings),
            "new": len(new),
            "baselined": len(baselined),
        },
        "stats": {
            "files": stats.files,
            "parsed": stats.parsed,
            "cache_hits": stats.cache_hits,
        },
        "findings": [finding.to_json() for finding in new],
        "baselined": [finding.to_json() for finding in baselined],
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        return _list_rules()
    if args.paths and args.paths[0] == "rules":
        if len(args.paths) > 1:
            print("error: 'rules' takes no path arguments", file=sys.stderr)
            return 2
        return _render_rules(args.format)
    if not args.paths:
        parser.print_usage(sys.stderr)
        print(
            "error: at least one path (or 'rules', or --list-rules) is required",
            file=sys.stderr,
        )
        return 2

    try:
        # Validate selection tokens up front so typos exit 2, not "0 findings".
        select_rules(args.select, args.ignore)
        report = run_analysis(
            args.paths,
            root=args.root,
            select=args.select,
            ignore=args.ignore,
            cache_path=_resolve_cache_path(args),
        )
        findings, stats = report.findings, report.stats
        baseline_path = _resolve_baseline_path(args)

        if args.write_baseline:
            if baseline_path is None:  # pragma: no cover - argparse guarantees a default
                raise ConfigurationError("--write-baseline needs a baseline path")
            Baseline.from_findings(findings).save(baseline_path)
            print(f"wrote {len(findings)} finding(s) to {baseline_path}")
            return 0

        baseline = (
            Baseline.load(baseline_path)
            if baseline_path is not None and baseline_path.is_file()
            else Baseline()
        )
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    new, baselined = baseline.partition(findings)
    json_report = _report_json(findings, new, baselined, stats)

    if args.output:
        Path(args.output).write_text(
            json.dumps(json_report, indent=2) + "\n", encoding="utf-8"
        )
    if args.sarif:
        Path(args.sarif).write_text(
            json.dumps(sarif_report(new, baselined), indent=2) + "\n", encoding="utf-8"
        )

    if args.format == "json":
        print(json.dumps(json_report, indent=2))
    elif args.format == "sarif":
        print(json.dumps(sarif_report(new, baselined), indent=2))
    else:
        if not args.quiet:
            for finding in new:
                print(finding.render())
        print(
            f"repro.analysis: {len(new)} new finding(s), "
            f"{len(baselined)} baselined, over {len(findings)} total "
            f"({stats.cache_hits}/{stats.files} cached, {stats.parsed} parsed)"
        )
    return 1 if new else 0
