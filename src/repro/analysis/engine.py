"""The analysis engine: parse modules, run rules, apply waivers.

The engine runs in two passes.  Pass 1 parses each module, runs the
``scope="module"`` rules, applies inline waivers, and distils the module
into a :class:`~repro.analysis.project.ModuleSummary`.  Pass 2 assembles
every summary into a :class:`~repro.analysis.project.ProjectContext` and
runs the ``scope="project"`` rules (the ``PAR``/``IMP`` families), whose
findings are waived through the same per-module waiver tables.

Public entry points: :func:`analyze_source` (one in-memory module, what
the per-rule test fixtures use; module scope only), :func:`analyze_file`,
:func:`analyze_sources` (an in-memory *set* of modules, both passes),
:func:`analyze_paths` (recursive over directories), and
:func:`run_analysis` (what the CLI uses — adds the incremental cache and
returns cache statistics).  All report :class:`~repro.analysis.finding.Finding`
lists sorted by location; baseline filtering happens one layer up
(:mod:`repro.analysis.cli`) so the API always reports the full picture.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.analysis.cache import AnalysisCache, CachedModule, file_sha256, ruleset_signature
from repro.analysis.finding import Finding, fingerprint
from repro.analysis.project import ModuleSummary, ProjectContext, summarize_module
from repro.analysis.registry import RuleSpec, select_rules
from repro.analysis.waivers import WaiverTable, parse_waivers
from repro.errors import ConfigurationError

__all__ = [
    "AnalysisReport",
    "AnalysisStats",
    "ModuleContext",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "analyze_sources",
    "iter_python_files",
    "run_analysis",
]

#: Rule code used for files the parser rejects; never waivable or baselined
#: away silently (a file that does not parse cannot be analyzed at all).
PARSE_RULE = "SYN001"

#: Rule code for malformed waivers (missing reason); emitted by the engine
#: itself so a reasonless waiver can never be excused by another waiver.
WAIVER_RULE = "WVR001"

@dataclass
class ModuleContext:
    """Everything a module-scope rule needs to know about one module.

    Attributes
    ----------
    path:
        Display path of the module (POSIX-style, relative to the analysis
        root when possible); used in findings and fingerprints.
    relpath:
        Same as ``path`` — kept separate so path-scoped rules (e.g. the
        ``utils/rng.py`` whitelist) match on a normalised value even if
        display conventions change.
    source:
        Full module source text.
    tree:
        Parsed AST of the module.
    lines:
        Source split into lines (1-based indexing via ``line_text``).
    """

    path: str
    relpath: str
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    def line_text(self, line: int) -> str:
        """The stripped source text of 1-based ``line`` ('' out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def walk(self, *types: type) -> Iterator[Any]:
        """Walk the AST yielding nodes of the requested types.

        Typed ``Iterator[Any]`` deliberately: callers pass several node
        classes at once (``walk(ast.FunctionDef, ast.Lambda)``) and read
        their shared-but-unrelated attributes, which no common AST base
        class can express.
        """
        for node in ast.walk(self.tree):
            if isinstance(node, tuple(types)):
                yield node

    def finding(
        self, rule: str, node: Union[ast.AST, int], message: str
    ) -> Finding:
        """Build a finding anchored at ``node`` (an AST node or line number)."""
        if isinstance(node, ast.AST):
            line = getattr(node, "lineno", 1)
            column = getattr(node, "col_offset", 0)
        else:
            line, column = int(node), 0
        return Finding(
            rule=rule.upper(),
            path=self.path,
            line=line,
            column=column,
            message=message,
            snippet=self.line_text(line),
        )

    def in_path(self, *fragments: str) -> bool:
        """True when the module lives under any of the given path fragments.

        Fragments are POSIX-style and match against the module's relative
        path (``module.in_path("repro/experiments/")``).
        """
        normalised = self.relpath.replace("\\", "/")
        return any(fragment in normalised for fragment in fragments)


@dataclass
class AnalysisStats:
    """How much work a :func:`run_analysis` call actually did."""

    files: int = 0
    parsed: int = 0
    cache_hits: int = 0


@dataclass
class AnalysisReport:
    """Findings plus the work statistics of one analyzer run."""

    findings: List[Finding]
    stats: AnalysisStats = field(default_factory=AnalysisStats)


def _code_lines(lines: Sequence[str]) -> List[int]:
    """1-based numbers of lines holding code (non-blank, not pure comment)."""
    return [
        number
        for number, text in enumerate(lines, start=1)
        if text.strip() and not text.strip().startswith("#")
    ]


def _assign_fingerprints(findings: List[Finding]) -> List[Finding]:
    """Fill in baseline fingerprints, indexing duplicate snippets per file."""
    counts: Dict[Tuple[str, str, str], int] = {}
    out: List[Finding] = []
    for item in sorted(findings, key=lambda f: (f.path, f.line, f.column, f.rule)):
        key = (item.rule, item.path, item.snippet.strip())
        index = counts.get(key, 0)
        counts[key] = index + 1
        out.append(
            Finding(
                rule=item.rule,
                path=item.path,
                line=item.line,
                column=item.column,
                message=item.message,
                snippet=item.snippet,
                fingerprint=fingerprint(item.rule, item.path, item.snippet, index),
            )
        )
    return out


def _split_scopes(specs: Sequence[RuleSpec]) -> Tuple[List[RuleSpec], List[RuleSpec]]:
    module_specs = [spec for spec in specs if spec.scope == "module"]
    project_specs = [spec for spec in specs if spec.scope == "project"]
    return module_specs, project_specs


def _parse_module(source: str, path: str) -> Union[ModuleContext, Finding]:
    """Parse one module, or the SYN001 finding when it does not parse."""
    lines = source.splitlines()
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        return Finding(
            rule=PARSE_RULE,
            path=path,
            line=error.lineno or 1,
            column=(error.offset or 1) - 1,
            message=f"file does not parse: {error.msg}",
            snippet=(error.text or "").strip(),
        )
    return ModuleContext(path=path, relpath=path, source=source, tree=tree, lines=lines)


def _pass1(
    module: ModuleContext, module_specs: Sequence[RuleSpec]
) -> Tuple[List[Finding], WaiverTable]:
    """Run the module-scope rules and build the module's waiver table."""
    table = WaiverTable(
        parse_waivers(module.lines), _code_lines(module.lines), module.lines
    )
    findings: List[Finding] = []
    for spec in module_specs:
        for item in spec.check(module):
            if not table.waives(item.rule, item.line):
                findings.append(item)
    for waiver in table.invalid():
        findings.append(
            module.finding(
                WAIVER_RULE,
                waiver.line,
                "waiver is missing its mandatory reason "
                "(write `# repro: allow[RULE] reason=...`)",
            )
        )
    return findings, table


def _pass2(
    summaries: Sequence[ModuleSummary],
    project_specs: Sequence[RuleSpec],
    waiver_maps: Mapping[str, Mapping[int, Sequence[str]]],
) -> List[Finding]:
    """Run the project-scope rules over the assembled whole-program view."""
    if not project_specs:
        return []
    project = ProjectContext(summaries)
    findings: List[Finding] = []
    for spec in project_specs:
        for item in spec.check(project):
            covered = waiver_maps.get(item.path, {}).get(item.line, ())
            family = item.rule.rstrip("0123456789")
            if any(code in (item.rule, family) for code in covered):
                continue
            findings.append(item)
    return findings


def analyze_source(
    source: str,
    path: str = "<string>",
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Analyze one module given as source text (module-scope rules only).

    Runs the selected rules, drops findings covered by a valid inline
    waiver, reports reasonless waivers under ``WVR001``, and returns the
    remaining findings sorted by location with fingerprints assigned.
    Project-scope rules need a whole program — use :func:`analyze_sources`
    or :func:`analyze_paths` for those.
    """
    parsed = _parse_module(source, path)
    if isinstance(parsed, Finding):
        return _assign_fingerprints([parsed])
    module_specs, _ = _split_scopes(select_rules(select, ignore))
    findings, _table = _pass1(parsed, module_specs)
    return _assign_fingerprints(findings)


def analyze_sources(
    sources: Mapping[str, str],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Analyze an in-memory set of modules with both passes.

    ``sources`` maps display paths (used for module-name derivation, e.g.
    ``"src/mypkg/worker.py"``) to module source text.  This is how the
    project-rule tests seed synthetic packages without touching disk.
    """
    module_specs, project_specs = _split_scopes(select_rules(select, ignore))
    findings: List[Finding] = []
    summaries: List[ModuleSummary] = []
    waiver_maps: Dict[str, Dict[int, List[str]]] = {}
    for path in sorted(sources):
        parsed = _parse_module(sources[path], path)
        if isinstance(parsed, Finding):
            findings.extend(_assign_fingerprints([parsed]))
            continue
        module_findings, table = _pass1(parsed, module_specs)
        findings.extend(_assign_fingerprints(module_findings))
        summaries.append(summarize_module(parsed.relpath, parsed.tree, parsed.lines))
        waiver_maps[path] = table.covered_codes_by_line()
    findings.extend(_assign_fingerprints(_pass2(summaries, project_specs, waiver_maps)))
    return sorted(findings, key=lambda f: (f.path, f.line, f.column, f.rule))


def analyze_file(
    path: Union[str, Path],
    root: Optional[Path] = None,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Analyze one file on disk (module scope), reporting paths
    relative to ``root``."""
    file_path = Path(path)
    try:
        source = file_path.read_text(encoding="utf-8")
    except OSError as error:
        raise ConfigurationError(f"cannot read {file_path}: {error}") from error
    return analyze_source(
        source, path=_display_path(file_path, root), select=select, ignore=ignore
    )


def _display_path(path: Path, root: Optional[Path]) -> str:
    """POSIX-style path relative to ``root`` when possible."""
    resolved = path.resolve()
    if root is not None:
        try:
            return resolved.relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    return path.as_posix()


def iter_python_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Expand files/directories into the sorted list of ``.py`` files."""
    files: List[Path] = []
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            files.append(path)
        else:
            raise ConfigurationError(f"no such file or directory: {path}")
    unique: List[Path] = []
    seen = set()
    for path in files:
        key = path.resolve()
        if key not in seen:
            seen.add(key)
            unique.append(path)
    return unique


def run_analysis(
    paths: Sequence[Union[str, Path]],
    root: Optional[Union[str, Path]] = None,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    cache_path: Optional[Union[str, Path]] = None,
) -> AnalysisReport:
    """Analyze every ``.py`` file under ``paths`` with both passes.

    ``root`` (default: the current working directory) anchors the relative
    paths used in reports and baseline fingerprints.  When ``cache_path``
    is given, pass-1 results for files whose content hash matches the
    cache are reused without re-parsing, and the cache file is rewritten
    at the end of the run; the project pass always runs (it is summary-
    based and cheap) so cross-module findings stay correct.
    """
    base = Path(root) if root is not None else Path.cwd()
    specs = select_rules(select, ignore)
    module_specs, project_specs = _split_scopes(specs)

    cache: Optional[AnalysisCache] = None
    if cache_path is not None:
        cache = AnalysisCache.load(
            cache_path, ruleset_signature([spec.cache_key for spec in specs])
        )

    stats = AnalysisStats()
    findings: List[Finding] = []
    summaries: List[ModuleSummary] = []
    waiver_maps: Dict[str, Dict[int, List[str]]] = {}
    live_paths: List[str] = []

    for file_path in iter_python_files(paths):
        stats.files += 1
        display = _display_path(file_path, base)
        live_paths.append(display)
        try:
            data = file_path.read_bytes()
        except OSError as error:
            raise ConfigurationError(f"cannot read {file_path}: {error}") from error
        sha = file_sha256(data)

        if cache is not None:
            cached = cache.lookup(display, sha)
            if cached is not None:
                stats.cache_hits += 1
                findings.extend(cached.findings)
                summaries.append(cached.summary)
                waiver_maps[display] = {
                    line: list(codes) for line, codes in cached.waiver_lines.items()
                }
                continue

        stats.parsed += 1
        source = data.decode("utf-8")
        parsed = _parse_module(source, display)
        if isinstance(parsed, Finding):
            file_findings = _assign_fingerprints([parsed])
            findings.extend(file_findings)
            # A non-parsing file still occupies a cache slot so a warm run
            # does not re-raise the same SyntaxError parse.
            if cache is not None:
                cache.store(
                    display,
                    CachedModule(
                        sha256=sha,
                        findings=file_findings,
                        summary=ModuleSummary(module="", path=display),
                        waiver_lines={},
                    ),
                )
            continue
        module_findings, table = _pass1(parsed, module_specs)
        file_findings = _assign_fingerprints(module_findings)
        findings.extend(file_findings)
        summary = summarize_module(parsed.relpath, parsed.tree, parsed.lines)
        summaries.append(summary)
        waiver_map = table.covered_codes_by_line()
        waiver_maps[display] = waiver_map
        if cache is not None:
            cache.store(
                display,
                CachedModule(
                    sha256=sha,
                    findings=file_findings,
                    summary=summary,
                    waiver_lines=waiver_map,
                ),
            )

    real_summaries = [summary for summary in summaries if summary.module]
    findings.extend(
        _assign_fingerprints(_pass2(real_summaries, project_specs, waiver_maps))
    )

    if cache is not None and cache_path is not None:
        cache.prune(live_paths)
        try:
            cache.save(cache_path)
        except OSError:
            pass  # the cache is an accelerator; failing to persist it is not an error

    return AnalysisReport(
        findings=sorted(findings, key=lambda f: (f.path, f.line, f.column, f.rule)),
        stats=stats,
    )


def analyze_paths(
    paths: Sequence[Union[str, Path]],
    root: Optional[Union[str, Path]] = None,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Analyze every ``.py`` file under ``paths`` (both passes, no cache)."""
    return run_analysis(paths, root=root, select=select, ignore=ignore).findings
