"""The analysis engine: parse modules, run rules, apply waivers.

The public entry points are :func:`analyze_source` (one in-memory module,
what the test fixtures use), :func:`analyze_file`, and
:func:`analyze_paths` (recursive over directories, what the CLI uses).
All three return :class:`~repro.analysis.finding.Finding` lists sorted by
location; baseline filtering happens one layer up (:mod:`repro.analysis.cli`)
so the API always reports the full picture.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Type, TypeVar, Union

from repro.analysis.finding import Finding, fingerprint
from repro.analysis.registry import select_rules
from repro.analysis.waivers import WaiverTable, parse_waivers
from repro.errors import ConfigurationError

__all__ = [
    "ModuleContext",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "iter_python_files",
]

#: Rule code used for files the parser rejects; never waivable or baselined
#: away silently (a file that does not parse cannot be analyzed at all).
PARSE_RULE = "SYN001"

#: Rule code for malformed waivers (missing reason); emitted by the engine
#: itself so a reasonless waiver can never be excused by another waiver.
WAIVER_RULE = "WVR001"

_NodeT = TypeVar("_NodeT", bound=ast.AST)


@dataclass
class ModuleContext:
    """Everything a rule needs to know about one module under analysis.

    Attributes
    ----------
    path:
        Display path of the module (POSIX-style, relative to the analysis
        root when possible); used in findings and fingerprints.
    relpath:
        Same as ``path`` — kept separate so path-scoped rules (e.g. the
        ``utils/rng.py`` whitelist) match on a normalised value even if
        display conventions change.
    source:
        Full module source text.
    tree:
        Parsed AST of the module.
    lines:
        Source split into lines (1-based indexing via ``line_text``).
    """

    path: str
    relpath: str
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    def line_text(self, line: int) -> str:
        """The stripped source text of 1-based ``line`` ('' out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def walk(self, *types: Type[_NodeT]) -> Iterator[_NodeT]:
        """Walk the AST yielding nodes of the requested types."""
        for node in ast.walk(self.tree):
            if isinstance(node, types):
                yield node

    def finding(
        self, rule: str, node: Union[ast.AST, int], message: str
    ) -> Finding:
        """Build a finding anchored at ``node`` (an AST node or line number)."""
        if isinstance(node, ast.AST):
            line = getattr(node, "lineno", 1)
            column = getattr(node, "col_offset", 0)
        else:
            line, column = int(node), 0
        return Finding(
            rule=rule.upper(),
            path=self.path,
            line=line,
            column=column,
            message=message,
            snippet=self.line_text(line),
        )

    def in_path(self, *fragments: str) -> bool:
        """True when the module lives under any of the given path fragments.

        Fragments are POSIX-style and match against the module's relative
        path (``module.in_path("repro/experiments/")``).
        """
        normalised = self.relpath.replace("\\", "/")
        return any(fragment in normalised for fragment in fragments)


def _code_lines(lines: Sequence[str]) -> List[int]:
    """1-based numbers of lines holding code (non-blank, not pure comment)."""
    return [
        number
        for number, text in enumerate(lines, start=1)
        if text.strip() and not text.strip().startswith("#")
    ]


def _assign_fingerprints(findings: List[Finding]) -> List[Finding]:
    """Fill in baseline fingerprints, indexing duplicate snippets per file."""
    counts: dict = {}
    out: List[Finding] = []
    for item in sorted(findings, key=lambda f: (f.path, f.line, f.column, f.rule)):
        key = (item.rule, item.path, item.snippet.strip())
        index = counts.get(key, 0)
        counts[key] = index + 1
        out.append(
            Finding(
                rule=item.rule,
                path=item.path,
                line=item.line,
                column=item.column,
                message=item.message,
                snippet=item.snippet,
                fingerprint=fingerprint(item.rule, item.path, item.snippet, index),
            )
        )
    return out


def analyze_source(
    source: str,
    path: str = "<string>",
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Analyze one module given as source text.

    Runs the selected rules, drops findings covered by a valid inline
    waiver, reports reasonless waivers under ``WVR001``, and returns the
    remaining findings sorted by location with fingerprints assigned.
    """
    lines = source.splitlines()
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        bad = Finding(
            rule=PARSE_RULE,
            path=path,
            line=error.lineno or 1,
            column=(error.offset or 1) - 1,
            message=f"file does not parse: {error.msg}",
            snippet=(error.text or "").strip(),
        )
        return _assign_fingerprints([bad])

    module = ModuleContext(
        path=path, relpath=path, source=source, tree=tree, lines=lines
    )
    table = WaiverTable(parse_waivers(lines), _code_lines(lines))

    findings: List[Finding] = []
    for spec in select_rules(select, ignore):
        for item in spec.check(module):
            if not table.waives(item.rule, item.line):
                findings.append(item)
    for waiver in table.invalid():
        findings.append(
            module.finding(
                WAIVER_RULE,
                waiver.line,
                "waiver is missing its mandatory reason "
                "(write `# repro: allow[RULE] reason=...`)",
            )
        )
    return _assign_fingerprints(findings)


def analyze_file(
    path: Union[str, Path],
    root: Optional[Path] = None,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Analyze one file on disk, reporting paths relative to ``root``."""
    file_path = Path(path)
    try:
        source = file_path.read_text(encoding="utf-8")
    except OSError as error:
        raise ConfigurationError(f"cannot read {file_path}: {error}") from error
    return analyze_source(
        source, path=_display_path(file_path, root), select=select, ignore=ignore
    )


def _display_path(path: Path, root: Optional[Path]) -> str:
    """POSIX-style path relative to ``root`` when possible."""
    resolved = path.resolve()
    if root is not None:
        try:
            return resolved.relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    return path.as_posix()


def iter_python_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Expand files/directories into the sorted list of ``.py`` files."""
    files: List[Path] = []
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            files.append(path)
        else:
            raise ConfigurationError(f"no such file or directory: {path}")
    unique: List[Path] = []
    seen = set()
    for path in files:
        key = path.resolve()
        if key not in seen:
            seen.add(key)
            unique.append(path)
    return unique


def analyze_paths(
    paths: Sequence[Union[str, Path]],
    root: Optional[Union[str, Path]] = None,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Analyze every ``.py`` file under ``paths``.

    ``root`` (default: the current working directory) anchors the relative
    paths used in reports and baseline fingerprints.
    """
    base = Path(root) if root is not None else Path.cwd()
    findings: List[Finding] = []
    for file_path in iter_python_files(paths):
        findings.extend(analyze_file(file_path, root=base, select=select, ignore=ignore))
    return sorted(findings, key=lambda f: (f.path, f.line, f.column, f.rule))
