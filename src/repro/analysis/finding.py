"""The :class:`Finding` record produced by every analysis rule.

A finding pins one rule violation to one source location.  Its
``fingerprint`` — a content hash of the rule, the file, and the offending
source line (plus an occurrence index for duplicates) — deliberately
excludes the line *number*, so unrelated edits above a grandfathered
finding do not invalidate the committed baseline.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict

__all__ = ["Finding", "fingerprint"]


def fingerprint(rule: str, relpath: str, snippet: str, index: int) -> str:
    """Stable identity of a finding for baseline matching.

    ``index`` disambiguates identical snippets violating the same rule in
    the same file (0 for the first occurrence in line order).
    """
    digest = hashlib.sha256(
        f"{rule}|{relpath}|{snippet.strip()}|{index}".encode("utf-8")
    ).hexdigest()
    return digest[:16]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes
    ----------
    rule:
        Rule code (e.g. ``DET001``); the leading letters name the family.
    path:
        Path of the analyzed file as reported to the user (POSIX-style,
        relative to the analysis root whenever possible).
    line, column:
        1-based line and 0-based column of the violating node.
    message:
        Human-readable description of the violation and the expected fix.
    snippet:
        The stripped source line the finding points at.
    fingerprint:
        Baseline identity (see :func:`fingerprint`); filled in by the
        engine once per-file occurrence indices are known.
    """

    rule: str
    path: str
    line: int
    column: int
    message: str
    snippet: str = ""
    fingerprint: str = ""

    @property
    def family(self) -> str:
        """The rule family prefix (letters before the rule number)."""
        return self.rule.rstrip("0123456789")

    def to_json(self) -> Dict[str, Any]:
        """JSON-serialisable representation used by the CLI and baseline."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        """One-line ``path:line:col CODE message`` text rendering."""
        return f"{self.path}:{self.line}:{self.column} {self.rule} {self.message}"
