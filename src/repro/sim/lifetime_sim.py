"""Memory-lifetime studies with accumulated wear (Figs. 11 and 12).

Every cell receives an endurance sampled from the process-variation
distribution; each state-changing write increments the cell's wear, and a
worn-out cell becomes stuck at its current value.  The workload trace is
replayed repeatedly through the memory controller until the memory *fails*,
defined (as in the paper) as the moment the fourth distinct row can no
longer be written correctly:

* coset techniques (Unencoded, DBI/FNW, Flipcy, BCC, RCC, VCC) fail a row
  when a write leaves at least one stuck-at-wrong bit that the encoding
  could not mask;
* SECDED fails a row when any 64-bit word of the write has more than one
  wrong bit;
* ECP-3 fails a row when the write leaves more than three wrong bits in
  the row.

Lifetime is reported as the number of row (line) writes performed before
failure.  The paper's 2 GB memory and 1e8-write mean endurance are scaled
down (see DESIGN.md) so the study runs in pure Python; results are always
interpreted relative to the unencoded baseline, which the scaling
preserves.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.campaign.engine import ProgressCallback, run_campaign
from repro.campaign.spec import Task
from repro.campaign.store import ResultStore
from repro.campaign.tasks import register_task
from repro.errors import ConfigurationError, SimulationError
from repro.pcm.cell import CellTechnology
from repro.pcm.endurance import EnduranceModel
from repro.sim.harness import TechniqueSpec, build_controller, make_read_corrector
from repro.sim.repetition import kaplan_meier_mean
from repro.sim.results import ResultTable
from repro.traces.synthetic import generate_trace
from repro.utils.rng import derive_seed

__all__ = [
    "LifetimeOutcome",
    "LifetimeStudyConfig",
    "DEFAULT_LIFETIME_TECHNIQUES",
    "lifetime_study",
    "lifetime_study_tasks",
    "mean_lifetime_by_coset_count",
    "mean_lifetime_tasks",
    "simulate_lifetime",
]

#: The Fig. 11 technique line-up.  The "VCC" series uses stored kernels over
#: the full word (see DESIGN.md): the generated-kernel variant cannot touch
#: the left digit and therefore cannot reach the paper's masking coverage.
DEFAULT_LIFETIME_TECHNIQUES = (
    TechniqueSpec(encoder="unencoded", cost="saw-then-energy", label="Unencoded"),
    TechniqueSpec(encoder="unencoded", cost="saw-then-energy", label="SECDED", corrector="secded"),
    TechniqueSpec(encoder="unencoded", cost="saw-then-energy", label="ECP3", corrector="ecp3"),
    TechniqueSpec(encoder="flipcy", cost="saw-then-energy", label="Flipcy"),
    TechniqueSpec(encoder="dbi/fnw", cost="saw-then-energy", label="DBI/FNW"),
    TechniqueSpec(encoder="vcc-stored", cost="saw-then-energy", label="VCC"),
    TechniqueSpec(encoder="rcc", cost="saw-then-energy", label="RCC"),
)

DEFAULT_BENCHMARKS = ("lbm", "mcf", "bwaves", "xalancbmk")


@dataclass(frozen=True)
class LifetimeStudyConfig:
    """Shared knobs of the lifetime studies (scaled down from the paper)."""

    rows: int = 48
    word_bits: int = 64
    line_bits: int = 512
    technology: CellTechnology = CellTechnology.MLC
    mean_endurance_writes: float = 64.0
    endurance_cov: float = 0.2
    failed_rows_limit: int = 4
    max_line_writes: int = 200_000
    trace_writebacks: int = 400
    seed: int = 11


def _row_failure(spec: TechniqueSpec, saw_bits_per_word: Sequence[int], line_bits: int) -> bool:
    """Decide whether a row write with residual wrong bits is fatal."""
    if spec.corrector is None:
        return any(saw_bits_per_word)
    try:
        corrector = make_read_corrector(spec.corrector, line_bits)
    except ConfigurationError as error:
        raise SimulationError(str(error)) from error
    assert corrector is not None
    return not corrector.row_outcome(saw_bits_per_word).correctable


@dataclass(frozen=True)
class LifetimeOutcome:
    """Result of one lifetime cell: writes-to-failure plus censoring.

    Attributes
    ----------
    writes:
        Line writes completed when the simulation ended.
    censored:
        True when the memory outlived ``max_line_writes`` — ``writes`` is
        then a lower bound on the true lifetime, not a failure time.
    """

    writes: int
    censored: bool


def simulate_lifetime(
    spec: TechniqueSpec,
    benchmark: str,
    config: LifetimeStudyConfig = LifetimeStudyConfig(),
    seed_offset: int = 0,
) -> LifetimeOutcome:
    """Writes-to-failure of one technique on one benchmark.

    Returns a :class:`LifetimeOutcome`: the number of line writes
    completed before the ``failed_rows_limit``-th distinct row failed,
    with ``censored=True`` when the memory instead outlived the
    ``max_line_writes`` simulation cap (so callers can report the
    censoring instead of treating the cap as a failure time).

    The seed depends on the benchmark and the repetition, but *not* on the
    technique, so every technique faces the identical endurance landscape,
    trace, and encryption pads — the comparison is paired, as in the paper
    where all techniques replay the same captured trace.

    The replay runs through the batched
    :meth:`~repro.memctrl.controller.MemoryController.replay_trace` engine
    with an early-stop predicate, so the write sequence (and therefore the
    lifetime) is bit-identical to the historical scalar loop while only
    the writes actually needed are paid for.
    """
    seed = derive_seed(config.seed + seed_offset, f"lifetime-{benchmark}")
    endurance = EnduranceModel(
        mean_writes=config.mean_endurance_writes,
        coefficient_of_variation=config.endurance_cov,
    )
    controller = build_controller(
        spec,
        rows=config.rows,
        technology=config.technology,
        word_bits=config.word_bits,
        line_bits=config.line_bits,
        endurance_model=endurance,
        seed=seed,
        encrypt=True,
    )
    trace = generate_trace(
        benchmark,
        num_writebacks=config.trace_writebacks,
        memory_lines=config.rows,
        line_bits=config.line_bits,
        word_bits=config.word_bits,
        seed=derive_seed(seed, "trace"),
    )
    if len(trace) == 0:
        raise SimulationError("lifetime simulation needs a non-empty trace")

    failed_rows: set = set()
    limit = config.failed_rows_limit
    line_bits = config.line_bits

    def stop(index: int, row_index: int, saw_cells: int, saw_bits_per_word) -> bool:
        # A write with no residual wrong bits can never fail a row under
        # any of the correctors, so the predicate short-circuits on the
        # saw-cell count the replay engine already has at hand.
        if saw_cells == 0 or row_index in failed_rows:
            return False
        if _row_failure(spec, saw_bits_per_word, line_bits):
            failed_rows.add(row_index)
            return len(failed_rows) >= limit
        return False

    repetitions = -(-config.max_line_writes // len(trace))
    replay = controller.replay_trace(
        trace,
        repetitions=repetitions,
        stop=stop,
        max_writes=config.max_line_writes,
    )
    return LifetimeOutcome(writes=replay.writes, censored=not replay.stopped_early)


@register_task(
    "fig11-lifetime-cell",
    description="writes-to-failure of one technique × benchmark × repetition (Fig. 11 cell)",
)
def _fig11_lifetime_cell(params: Dict[str, Any]) -> List[Dict[str, Any]]:
    """One (benchmark × technique × repetition) cell of the Fig. 11 sweep."""
    spec = TechniqueSpec(
        encoder=params["encoder"],
        cost=params["cost"],
        num_cosets=params["num_cosets"],
        label=params["label"],
        corrector=params["corrector"],
        fault_model=params.get("fault_model"),
    )
    config = LifetimeStudyConfig(
        rows=params["rows"],
        word_bits=params["word_bits"],
        line_bits=params["line_bits"],
        technology=CellTechnology(params["technology"]),
        mean_endurance_writes=params["mean_endurance_writes"],
        endurance_cov=params["endurance_cov"],
        failed_rows_limit=params["failed_rows_limit"],
        max_line_writes=params["max_line_writes"],
        trace_writebacks=params["trace_writebacks"],
        seed=params["seed"],
    )
    outcome = simulate_lifetime(spec, params["benchmark"], config, seed_offset=params["rep"])
    return [
        {
            "benchmark": params["benchmark"],
            "technique": spec.display_name(),
            "rep": params["rep"],
            "writes_to_failure": int(outcome.writes),
            "censored": bool(outcome.censored),
        }
    ]


def lifetime_study_tasks(
    benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
    techniques: Sequence[TechniqueSpec] = DEFAULT_LIFETIME_TECHNIQUES,
    num_cosets: int = 256,
    config: LifetimeStudyConfig = LifetimeStudyConfig(),
    repetitions: int = 1,
    fault_model: Optional[str] = None,
) -> List[Task]:
    """The Fig. 11 sweep as campaign tasks (benchmark × technique × rep).

    ``fault_model`` (or a per-spec ``TechniqueSpec.fault_model``) selects
    a :mod:`repro.faults` model; ``None`` keeps the historical behaviour
    and the historical task hashes.
    """
    base = {
        "num_cosets": num_cosets,
        "rows": config.rows,
        "word_bits": config.word_bits,
        "line_bits": config.line_bits,
        "technology": config.technology.value,
        "mean_endurance_writes": config.mean_endurance_writes,
        "endurance_cov": config.endurance_cov,
        "failed_rows_limit": config.failed_rows_limit,
        "max_line_writes": config.max_line_writes,
        "trace_writebacks": config.trace_writebacks,
        "seed": config.seed,
    }
    tasks: List[Task] = []
    for benchmark in benchmarks:
        for spec in techniques:
            for rep in range(repetitions):
                params = dict(base)
                params.update(
                    benchmark=benchmark,
                    encoder=spec.encoder,
                    cost=spec.cost,
                    label=spec.label,
                    corrector=spec.corrector,
                    rep=rep,
                )
                model = fault_model or spec.fault_model
                if model is not None:
                    params["fault_model"] = model
                tasks.append(Task(kind="fig11-lifetime-cell", params=params))
    return tasks


def lifetime_study(
    benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
    techniques: Sequence[TechniqueSpec] = DEFAULT_LIFETIME_TECHNIQUES,
    num_cosets: int = 256,
    config: LifetimeStudyConfig = LifetimeStudyConfig(),
    repetitions: int = 1,
    jobs: int = 1,
    store: Union[ResultStore, str, Path, None] = None,
    progress: Optional[ProgressCallback] = None,
    fault_model: Optional[str] = None,
) -> ResultTable:
    """Fig. 11: per-benchmark writes-to-failure for every technique.

    The (benchmark × technique × repetition) cross-product runs through
    the campaign engine: ``jobs`` worker processes (bit-identical rows for
    any count) with optional result caching and resume via ``store``.
    ``fault_model`` runs the whole line-up under one :mod:`repro.faults`
    model.
    """
    tasks = lifetime_study_tasks(
        benchmarks, techniques, num_cosets, config, repetitions, fault_model=fault_model
    )
    result = run_campaign(tasks, store=store, jobs=jobs, progress=progress)
    values_by_cell: Dict[Tuple[str, str], List[Tuple[int, bool]]] = {}
    censored_cells = 0
    for row in result.rows():
        values_by_cell.setdefault((row["benchmark"], row["technique"]), []).append(
            (row["writes_to_failure"], bool(row.get("censored")))
        )
        censored_cells += bool(row.get("censored"))
    notes = (
        f"{num_cosets} cosets for coset techniques; memory and endurance are scaled "
        "down so absolute counts are not comparable to the paper, ratios are"
    )
    if censored_cells:
        notes += _censoring_note(censored_cells, len(tasks), config.max_line_writes)
    table = ResultTable(
        title="Fig. 11 — writes to failure per benchmark (scaled memory)",
        columns=["benchmark", "technique", "writes_to_failure", "improvement_vs_unencoded"],
        notes=notes,
    )
    for benchmark in benchmarks:
        lifetimes: Dict[str, float] = {
            spec.display_name(): _survival_mean(
                values_by_cell[(benchmark, spec.display_name())]
            )
            for spec in techniques
        }
        baseline = lifetimes.get("Unencoded", 0.0)
        for spec in techniques:
            lifetime = lifetimes[spec.display_name()]
            improvement = (lifetime / baseline - 1.0) * 100.0 if baseline else 0.0
            table.append(
                benchmark=benchmark,
                technique=spec.display_name(),
                writes_to_failure=lifetime,
                improvement_vs_unencoded=improvement,
            )
    return table


def _survival_mean(outcomes: Sequence[Tuple[int, bool]]) -> float:
    """Kaplan–Meier (restricted) mean of ``(writes, censored)`` repetitions.

    Censored repetitions keep the survival curve up instead of entering
    the average as failure times; with no censoring this is the ordinary
    sample mean the figures always reported.
    """
    durations = [writes for writes, _ in outcomes]
    flags = [flag for _, flag in outcomes]
    return kaplan_meier_mean(durations, flags).mean


def _censoring_note(censored: int, total: int, cap: int) -> str:
    """Shared phrasing for censored-cell reporting in the lifetime tables."""
    return (
        f"; {censored} of {total} cells censored at the {cap}-write cap "
        "(means are Kaplan-Meier restricted means, lower bounds there)"
    )


@register_task(
    "fig12-lifetime-cell",
    description="writes-to-failure at one coset count × technique × benchmark × repetition (Fig. 12 cell)",
)
def _fig12_lifetime_cell(params: Dict[str, Any]) -> List[Dict[str, Any]]:
    """One (coset count × technique × benchmark × repetition) Fig. 12 cell.

    Seed derivation matches :func:`simulate_lifetime` exactly (benchmark
    and repetition only), so rows are bit-identical to the serial path and
    repetitions are paired across techniques like the Fig. 11 sweep.
    """
    spec = TechniqueSpec(
        encoder=params["encoder"],
        cost=params["cost"],
        num_cosets=params["cosets"],
        label=params["label"],
        corrector=params["corrector"],
        fault_model=params.get("fault_model"),
    )
    config = LifetimeStudyConfig(
        rows=params["rows"],
        word_bits=params["word_bits"],
        line_bits=params["line_bits"],
        technology=CellTechnology(params["technology"]),
        mean_endurance_writes=params["mean_endurance_writes"],
        endurance_cov=params["endurance_cov"],
        failed_rows_limit=params["failed_rows_limit"],
        max_line_writes=params["max_line_writes"],
        trace_writebacks=params["trace_writebacks"],
        seed=params["seed"],
    )
    outcome = simulate_lifetime(spec, params["benchmark"], config, seed_offset=params["rep"])
    return [
        {
            "cosets": params["cosets"],
            "benchmark": params["benchmark"],
            "technique": spec.display_name(),
            "rep": params["rep"],
            "writes_to_failure": int(outcome.writes),
            "censored": bool(outcome.censored),
        }
    ]


def mean_lifetime_tasks(
    coset_counts: Sequence[int] = (32, 64, 128, 256),
    benchmarks: Sequence[str] = ("lbm", "mcf"),
    techniques: Sequence[TechniqueSpec] = DEFAULT_LIFETIME_TECHNIQUES,
    config: LifetimeStudyConfig = LifetimeStudyConfig(),
    repetitions: int = 1,
    fault_model: Optional[str] = None,
) -> List[Task]:
    """The Fig. 12 sweep as campaign tasks (cosets × technique × benchmark × rep)."""
    base = {
        "rows": config.rows,
        "word_bits": config.word_bits,
        "line_bits": config.line_bits,
        "technology": config.technology.value,
        "mean_endurance_writes": config.mean_endurance_writes,
        "endurance_cov": config.endurance_cov,
        "failed_rows_limit": config.failed_rows_limit,
        "max_line_writes": config.max_line_writes,
        "trace_writebacks": config.trace_writebacks,
        "seed": config.seed,
    }
    tasks: List[Task] = []
    for cosets in coset_counts:
        for spec in techniques:
            for benchmark in benchmarks:
                for rep in range(repetitions):
                    params = dict(base)
                    params.update(
                        cosets=cosets,
                        encoder=spec.encoder,
                        cost=spec.cost,
                        label=spec.label,
                        corrector=spec.corrector,
                        benchmark=benchmark,
                        rep=rep,
                    )
                    model = fault_model or spec.fault_model
                    if model is not None:
                        params["fault_model"] = model
                    tasks.append(Task(kind="fig12-lifetime-cell", params=params))
    return tasks


def mean_lifetime_by_coset_count(
    coset_counts: Sequence[int] = (32, 64, 128, 256),
    benchmarks: Sequence[str] = ("lbm", "mcf"),
    techniques: Sequence[TechniqueSpec] = DEFAULT_LIFETIME_TECHNIQUES,
    config: LifetimeStudyConfig = LifetimeStudyConfig(),
    repetitions: int = 1,
    jobs: int = 1,
    store: Union[ResultStore, str, Path, None] = None,
    progress: Optional[ProgressCallback] = None,
    fault_model: Optional[str] = None,
) -> ResultTable:
    """Fig. 12: mean writes-to-failure across benchmarks vs. coset count.

    Techniques that do not depend on the coset count (Unencoded, SECDED,
    ECP3, Flipcy, DBI/FNW) are still re-simulated per count so every column
    of the paper's figure is present.

    The (cosets × technique × benchmark × repetition) cross-product runs
    through the campaign engine exactly like the Fig. 11 sweep: ``jobs``
    worker processes produce bit-identical rows at any count, ``store``
    enables cached resume, and ``repetitions`` adds paired seeds (the
    repetition offsets the seed identically for every technique).
    Censored cells enter the means through the Kaplan–Meier estimator
    (:func:`repro.sim.repetition.kaplan_meier_mean`) rather than being
    silently averaged in as failure times, and are counted in the notes.
    """
    tasks = mean_lifetime_tasks(
        coset_counts, benchmarks, techniques, config, repetitions, fault_model=fault_model
    )
    result = run_campaign(tasks, store=store, jobs=jobs, progress=progress)
    values_by_cell: Dict[Tuple[int, str], List[Tuple[int, bool]]] = {}
    censored_cells = 0
    for row in result.rows():
        values_by_cell.setdefault((row["cosets"], row["technique"]), []).append(
            (row["writes_to_failure"], bool(row.get("censored")))
        )
        censored_cells += bool(row.get("censored"))
    notes = "mean across " + ", ".join(benchmarks)
    if censored_cells:
        notes += _censoring_note(censored_cells, len(tasks), config.max_line_writes)
    table = ResultTable(
        title="Fig. 12 — mean writes to failure vs. coset count (scaled memory)",
        columns=["cosets", "technique", "mean_writes_to_failure"],
        notes=notes,
    )
    for cosets in coset_counts:
        for spec in techniques:
            outcomes = values_by_cell[(cosets, spec.display_name())]
            table.append(
                cosets=cosets,
                technique=spec.display_name(),
                mean_writes_to_failure=_survival_mean(outcomes),
            )
    return table
