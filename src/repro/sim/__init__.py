"""Experiment simulators.

Each module drives the memory-controller pipeline against the PCM array
model for one family of experiments:

* :mod:`repro.sim.energy_sim` — dynamic write energy (Figs. 7 and 9);
* :mod:`repro.sim.saw_sim` — stuck-at-wrong mitigation against a fixed
  fault-map snapshot (Figs. 2, 8, 10);
* :mod:`repro.sim.lifetime_sim` — wear-out lifetime with per-cell
  endurance (Figs. 11 and 12);
* :mod:`repro.sim.results` — the result containers and table formatting
  shared by the experiment entry points and the benchmark harness.
"""

from repro.sim.results import ResultTable
from repro.sim.energy_sim import (
    EnergyStudyConfig,
    benchmark_energy_study,
    benchmark_energy_tasks,
    random_data_energy_study,
)
from repro.sim.saw_sim import (
    SawStudyConfig,
    benchmark_saw_study,
    benchmark_saw_tasks,
    fault_masking_study,
    saw_vs_coset_count_study,
)
from repro.sim.lifetime_sim import (
    LifetimeStudyConfig,
    lifetime_study,
    lifetime_study_tasks,
    mean_lifetime_by_coset_count,
)
from repro.sim.repetition import RepeatedMetric, aggregate_columns, repeat_metric

__all__ = [
    "EnergyStudyConfig",
    "LifetimeStudyConfig",
    "RepeatedMetric",
    "ResultTable",
    "SawStudyConfig",
    "aggregate_columns",
    "repeat_metric",
    "benchmark_energy_study",
    "benchmark_energy_tasks",
    "benchmark_saw_study",
    "benchmark_saw_tasks",
    "fault_masking_study",
    "lifetime_study",
    "lifetime_study_tasks",
    "mean_lifetime_by_coset_count",
    "random_data_energy_study",
    "saw_vs_coset_count_study",
]
