"""Repetition / aggregation helpers for stochastic experiments.

The paper reports every simulated number as the average of five runs with
distinct fault-map or endurance permutations.  This module provides the
equivalent machinery for the repository's experiments: run a seeded
experiment callable several times, collect a named metric, and report the
mean, standard deviation, and a normal-approximation confidence interval.

The lifetime studies additionally produce *right-censored* observations —
a memory that outlives the ``max_line_writes`` simulation cap reports a
lower bound, not a failure time.  :func:`kaplan_meier_mean` computes the
(restricted) mean survival time of such samples with the Kaplan–Meier
product-limit estimator, so censored cells raise the survival curve
instead of being silently averaged in as failures; with no censoring it
reduces to the ordinary sample mean.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import SimulationError

__all__ = [
    "KaplanMeierEstimate",
    "RepeatedMetric",
    "aggregate_columns",
    "kaplan_meier_mean",
    "repeat_metric",
]


@dataclass(frozen=True)
class RepeatedMetric:
    """Summary statistics of one metric across experiment repetitions."""

    name: str
    values: tuple
    mean: float
    std: float
    ci95_low: float
    ci95_high: float

    @property
    def repetitions(self) -> int:
        """Number of repetitions aggregated."""
        return len(self.values)


def _summarise(name: str, values: Sequence[float]) -> RepeatedMetric:
    if not values:
        raise SimulationError("cannot summarise an empty set of repetitions")
    count = len(values)
    mean = sum(values) / count
    if count > 1:
        variance = sum((v - mean) ** 2 for v in values) / (count - 1)
        std = math.sqrt(variance)
        half_width = 1.96 * std / math.sqrt(count)
    else:
        std = 0.0
        half_width = 0.0
    return RepeatedMetric(
        name=name,
        values=tuple(float(v) for v in values),
        mean=mean,
        std=std,
        ci95_low=mean - half_width,
        ci95_high=mean + half_width,
    )


@dataclass(frozen=True)
class KaplanMeierEstimate:
    """Kaplan–Meier survival summary of right-censored durations.

    Attributes
    ----------
    mean:
        Area under the product-limit survival curve up to the largest
        observation — the restricted mean survival time.  Equal to the
        sample mean when nothing is censored.
    events:
        Number of observed failures.
    censored:
        Number of censored observations (lower bounds).
    restricted:
        True when the survival curve does not reach zero (the largest
        observation is censored), in which case ``mean`` is a lower bound
        on the true mean lifetime.
    """

    mean: float
    events: int
    censored: int
    restricted: bool


def kaplan_meier_mean(
    durations: Sequence[float], censored: Optional[Sequence[bool]] = None
) -> KaplanMeierEstimate:
    """Restricted mean survival time of right-censored durations.

    Parameters
    ----------
    durations:
        Observed durations (e.g. writes-to-failure per repetition).
    censored:
        Parallel flags; True marks a duration that is a lower bound (the
        subject survived past it) rather than an observed failure.
        Defaults to all-False, in which case the result's ``mean`` is the
        ordinary sample mean.

    The estimator follows the usual convention that failures at a time
    precede censorings at the same time (the censored subject was still at
    risk when the failures happened).
    """
    values = [float(duration) for duration in durations]
    if not values:
        raise SimulationError("cannot estimate survival from zero observations")
    if any(value < 0 for value in values):
        raise SimulationError("durations must be non-negative")
    if censored is None:
        flags = [False] * len(values)
    else:
        flags = [bool(flag) for flag in censored]
        if len(flags) != len(values):
            raise SimulationError("censored flags must parallel the durations")

    order = sorted(range(len(values)), key=lambda i: (values[i], flags[i]))
    at_risk = len(values)
    survival = 1.0
    mean = 0.0
    previous_time = 0.0
    events = 0
    position = 0
    while position < len(order):
        time = values[order[position]]
        deaths = 0
        removed = 0
        while position < len(order) and values[order[position]] == time:
            removed += 1
            deaths += not flags[order[position]]
            position += 1
        mean += survival * (time - previous_time)
        previous_time = time
        if deaths:
            survival *= 1.0 - deaths / at_risk
            events += deaths
        at_risk -= removed
    return KaplanMeierEstimate(
        mean=mean,
        events=events,
        censored=len(values) - events,
        restricted=survival > 0.0,
    )


def repeat_metric(
    experiment: Callable[[int], float],
    repetitions: int = 5,
    base_seed: int = 0,
    name: str = "metric",
) -> RepeatedMetric:
    """Run ``experiment(seed)`` for several seeds and summarise its result.

    Parameters
    ----------
    experiment:
        Callable mapping a seed to a scalar metric (e.g. total energy,
        writes-to-failure).
    repetitions:
        Number of independent runs (the paper uses five).
    base_seed:
        First seed; runs use ``base_seed, base_seed + 1, ...``.
    name:
        Metric name recorded in the summary.
    """
    if repetitions <= 0:
        raise SimulationError("repetitions must be positive")
    values = [float(experiment(base_seed + index)) for index in range(repetitions)]
    return _summarise(name, values)


def aggregate_columns(rows: Sequence[Dict[str, float]], columns: Sequence[str]) -> Dict[str, RepeatedMetric]:
    """Summarise selected numeric columns across a list of result rows.

    Useful for collapsing per-benchmark rows of a
    :class:`repro.sim.results.ResultTable` into the per-technique means the
    paper quotes in its text (e.g. "22-28 % average energy saving").
    """
    summaries: Dict[str, RepeatedMetric] = {}
    for column in columns:
        values: List[float] = []
        for row in rows:
            if column not in row:
                raise SimulationError(f"row is missing column {column!r}")
            values.append(float(row[column]))
        summaries[column] = _summarise(column, values)
    return summaries
