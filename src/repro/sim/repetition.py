"""Repetition / aggregation helpers for stochastic experiments.

The paper reports every simulated number as the average of five runs with
distinct fault-map or endurance permutations.  This module provides the
equivalent machinery for the repository's experiments: run a seeded
experiment callable several times, collect a named metric, and report the
mean, standard deviation, and a normal-approximation confidence interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.errors import SimulationError

__all__ = ["RepeatedMetric", "repeat_metric", "aggregate_columns"]


@dataclass(frozen=True)
class RepeatedMetric:
    """Summary statistics of one metric across experiment repetitions."""

    name: str
    values: tuple
    mean: float
    std: float
    ci95_low: float
    ci95_high: float

    @property
    def repetitions(self) -> int:
        """Number of repetitions aggregated."""
        return len(self.values)


def _summarise(name: str, values: Sequence[float]) -> RepeatedMetric:
    if not values:
        raise SimulationError("cannot summarise an empty set of repetitions")
    count = len(values)
    mean = sum(values) / count
    if count > 1:
        variance = sum((v - mean) ** 2 for v in values) / (count - 1)
        std = math.sqrt(variance)
        half_width = 1.96 * std / math.sqrt(count)
    else:
        std = 0.0
        half_width = 0.0
    return RepeatedMetric(
        name=name,
        values=tuple(float(v) for v in values),
        mean=mean,
        std=std,
        ci95_low=mean - half_width,
        ci95_high=mean + half_width,
    )


def repeat_metric(
    experiment: Callable[[int], float],
    repetitions: int = 5,
    base_seed: int = 0,
    name: str = "metric",
) -> RepeatedMetric:
    """Run ``experiment(seed)`` for several seeds and summarise its result.

    Parameters
    ----------
    experiment:
        Callable mapping a seed to a scalar metric (e.g. total energy,
        writes-to-failure).
    repetitions:
        Number of independent runs (the paper uses five).
    base_seed:
        First seed; runs use ``base_seed, base_seed + 1, ...``.
    name:
        Metric name recorded in the summary.
    """
    if repetitions <= 0:
        raise SimulationError("repetitions must be positive")
    values = [float(experiment(base_seed + index)) for index in range(repetitions)]
    return _summarise(name, values)


def aggregate_columns(rows: Sequence[Dict[str, float]], columns: Sequence[str]) -> Dict[str, RepeatedMetric]:
    """Summarise selected numeric columns across a list of result rows.

    Useful for collapsing per-benchmark rows of a
    :class:`repro.sim.results.ResultTable` into the per-technique means the
    paper quotes in its text (e.g. "22-28 % average energy saving").
    """
    summaries: Dict[str, RepeatedMetric] = {}
    for column in columns:
        values: List[float] = []
        for row in rows:
            if column not in row:
                raise SimulationError(f"row is missing column {column!r}")
            values.append(float(row[column]))
        summaries[column] = _summarise(column, values)
    return summaries
