"""Dynamic write-energy studies (Figs. 7 and 9).

Two experiments share this module:

* :func:`random_data_energy_study` — the preliminary study of Section V-B
  (Fig. 7): uniformly random data is written repeatedly to a small MLC
  memory and the total write energy of RCC, VCC with generated kernels,
  VCC with stored kernels, and the unencoded baseline is compared across
  coset counts.
* :func:`benchmark_energy_study` — the full evaluation of Section VI-B
  (Fig. 9): encrypted writeback traces of the SPEC-like benchmarks are
  written to a memory with a fixed 1e-2 stuck-at fault snapshot, and the
  write energy of VCC / RCC under both cost-function orderings
  ("Opt. Energy" = energy first, SAW second; "Opt. SAW" = the reverse) is
  compared with the unencoded baseline.  Energy accounting includes the
  auxiliary bits, as in the paper.

Both run through the campaign engine as grids of per-cell task kinds
(``fig7-energy-cell``, ``fig9-energy-cell``): ``jobs`` worker processes
produce bit-identical rows at any count, and a ``store`` enables cached
resume.  The Fig. 7 cells drive the batched
:meth:`~repro.memctrl.controller.MemoryController.write_random_lines`
engine, whose accounting is bit-identical to the scalar ``write_line``
loop the study historically ran.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.campaign.engine import ProgressCallback, run_campaign
from repro.campaign.spec import Task
from repro.campaign.store import ResultStore
from repro.campaign.tasks import register_task
from repro.pcm.cell import CellTechnology
from repro.sim.harness import (
    TechniqueSpec,
    build_controller,
    cached_fault_map,
    cached_trace,
    checked_coset_counts,
    drive_random_lines,
    drive_trace,
)
from repro.sim.results import ResultTable
from repro.traces.spec import list_benchmarks
from repro.utils.rng import derive_seed

__all__ = [
    "EnergyStudyConfig",
    "random_data_energy_study",
    "random_energy_tasks",
    "benchmark_energy_study",
    "benchmark_energy_tasks",
]

#: Benchmarks used by default in the per-benchmark studies (a subset keeps
#: pure-Python runtimes reasonable; pass ``benchmarks=list_benchmarks()``
#: for the full suite).
DEFAULT_BENCHMARKS = ("lbm", "mcf", "bwaves", "fotonik3d", "xalancbmk", "xz")


@dataclass(frozen=True)
class EnergyStudyConfig:
    """Shared knobs of the energy studies (scaled down from the paper).

    The paper writes 100,000 random lines to a 2 GB memory; the defaults
    here use a far smaller memory and write count so the study runs in
    seconds of pure Python while preserving the relative energy savings.
    """

    rows: int = 128
    num_writes: int = 400
    word_bits: int = 64
    line_bits: int = 512
    technology: CellTechnology = CellTechnology.MLC
    fault_rate: float = 1e-2
    seed: int = 2022


#: The Fig. 7 technique line-up, in table order (the unencoded baseline
#: leads so aggregation can normalise the coset techniques against it).
_FIG7_TECHNIQUES = (
    ("unencoded", "Unencoded"),
    ("rcc", "RCC"),
    ("vcc", "VCC-Generated"),
    ("vcc-stored", "VCC-Stored"),
)


@register_task(
    "fig7-energy-cell",
    description="random-data write energy of one technique at one coset count (Fig. 7 cell)",
)
def _fig7_energy_cell(params: Dict[str, Any]) -> List[Dict[str, Any]]:
    """One (coset count × technique) cell of the Fig. 7 sweep.

    Seed derivation labels (``fig7-{label}-{cosets}`` for the stack,
    ``fig7-writes-{cosets}`` for the random lines) match the historical
    serial study exactly, so campaign rows are bit-identical to the
    in-process loop.  The random lines run through the batched
    :meth:`~repro.memctrl.controller.MemoryController.write_random_lines`
    driver (accounting bit-identical to the scalar ``write_line`` loop).
    """
    cosets = params["cosets"]
    seed = params["seed"]
    spec = TechniqueSpec(
        encoder=params["encoder"], cost=params["cost"], num_cosets=cosets, label=params["label"]
    )
    controller = build_controller(
        spec,
        rows=params["rows"],
        technology=CellTechnology(params["technology"]),
        word_bits=params["word_bits"],
        line_bits=params["line_bits"],
        seed=derive_seed(seed, f"fig7-{spec.label}-{cosets}"),
        encrypt=True,
    )
    stats = drive_random_lines(
        controller,
        params["num_writes"],
        seed=derive_seed(seed, f"fig7-writes-{cosets}"),
    )
    return [
        {
            "cosets": cosets,
            "technique": spec.label,
            "encoder": spec.encoder,
            "total_energy_pj": float(stats.total_energy_pj),
        }
    ]


def random_energy_tasks(
    coset_counts: Sequence[int] = (32, 64, 128, 256),
    config: EnergyStudyConfig = EnergyStudyConfig(),
) -> List[Task]:
    """The Fig. 7 sweep as campaign tasks, one per coset count × technique."""
    base = {
        "rows": config.rows,
        "num_writes": config.num_writes,
        "word_bits": config.word_bits,
        "line_bits": config.line_bits,
        "technology": config.technology.value,
        "seed": config.seed,
    }
    tasks: List[Task] = []
    for cosets in checked_coset_counts(coset_counts, minimum=2):
        for encoder, label in _FIG7_TECHNIQUES:
            params = dict(base)
            params.update(cosets=cosets, encoder=encoder, cost="energy", label=label)
            tasks.append(Task(kind="fig7-energy-cell", params=params))
    return tasks


def random_data_energy_study(
    coset_counts: Sequence[int] = (32, 64, 128, 256),
    config: EnergyStudyConfig = EnergyStudyConfig(),
    jobs: int = 1,
    store: Union[ResultStore, str, Path, None] = None,
    progress: Optional[ProgressCallback] = None,
) -> ResultTable:
    """Fig. 7: write energy of RCC / VCC-generated / VCC-stored / unencoded.

    Returns a table with one row per (coset count, technique) holding the
    total write energy (data + auxiliary bits) and the saving relative to
    the unencoded baseline.

    The (coset count × technique) cells run through the campaign engine:
    ``jobs`` worker processes (bit-identical rows for any count) with
    optional result caching and resume via ``store``.
    """
    tasks = random_energy_tasks(coset_counts, config)
    result = run_campaign(tasks, store=store, jobs=jobs, progress=progress)
    energy_by_cell: Dict[Any, float] = {
        (row["cosets"], row["technique"]): row["total_energy_pj"] for row in result.rows()
    }
    table = ResultTable(
        title="Fig. 7 — write energy vs. coset count (random data, MLC PCM)",
        columns=["cosets", "technique", "total_energy_pj", "saving_percent"],
        notes="scaled-down memory/write count; savings are relative to unencoded",
    )
    for cosets in checked_coset_counts(coset_counts, minimum=2):
        baseline_energy = energy_by_cell[(cosets, "Unencoded")]
        for _, label in _FIG7_TECHNIQUES:
            energy = energy_by_cell[(cosets, label)]
            saving = (
                0.0
                if label == "Unencoded" or baseline_energy == 0.0  # repro: allow[NUM003] reason=exact-zero guard against division by zero, not a cost comparison
                else 100.0 * (baseline_energy - energy) / baseline_energy
            )
            table.append(
                cosets=cosets,
                technique=label,
                total_energy_pj=energy,
                saving_percent=saving,
            )
    return table


def _fig9_techniques(num_cosets: int) -> List[TechniqueSpec]:
    """The Fig. 9 technique line-up, in table order."""
    return [
        TechniqueSpec(encoder="unencoded", cost="energy", label="Unencoded"),
        TechniqueSpec(encoder="vcc", cost="energy-then-saw", num_cosets=num_cosets, label="VCC Opt. Energy"),
        TechniqueSpec(encoder="vcc", cost="saw-then-energy", num_cosets=num_cosets, label="VCC Opt. SAW"),
        TechniqueSpec(encoder="rcc", cost="energy-then-saw", num_cosets=num_cosets, label="RCC Opt. Energy"),
        TechniqueSpec(encoder="rcc", cost="saw-then-energy", num_cosets=num_cosets, label="RCC Opt. SAW"),
    ]


@register_task(
    "fig9-energy-cell",
    description="total write energy of one technique on one benchmark trace (Fig. 9 cell)",
)
def _fig9_energy_cell(params: Dict[str, Any]) -> List[Dict[str, Any]]:
    """One (benchmark × technique) cell of the Fig. 9 sweep.

    All randomness (trace, fault snapshot, encryption pads, kernels)
    derives from ``params['seed']`` with the same labels the serial study
    always used, so the cell computes identical energies whether it runs
    in-process, on a worker, or from a previous campaign's cache.
    """
    benchmark = params["benchmark"]
    seed = params["seed"]
    technology = CellTechnology(params["technology"])
    spec = TechniqueSpec(
        encoder=params["encoder"],
        cost=params["cost"],
        num_cosets=params["num_cosets"],
        label=params["label"],
    )
    trace = cached_trace(
        benchmark,
        num_writebacks=params["writebacks"],
        memory_lines=params["rows"],
        line_bits=params["line_bits"],
        word_bits=params["word_bits"],
        seed=derive_seed(seed, f"fig9-trace-{benchmark}"),
    )
    fault_map = cached_fault_map(
        rows=params["rows"],
        cells_per_row=params["line_bits"] // technology.bits_per_cell,
        technology=technology,
        fault_rate=params["fault_rate"],
        seed=derive_seed(seed, f"fig9-faults-{benchmark}"),
    )
    controller = build_controller(
        spec,
        rows=params["rows"],
        technology=technology,
        word_bits=params["word_bits"],
        line_bits=params["line_bits"],
        fault_map=fault_map,
        seed=derive_seed(seed, f"fig9-{benchmark}-{spec.label}"),
        encrypt=True,
    )
    replay = drive_trace(controller, trace)
    energy = replay.total_energy_pj()
    return [
        {
            "benchmark": benchmark,
            "technique": spec.label,
            "encoder": spec.encoder,
            "total_energy_pj": energy,
        }
    ]


def benchmark_energy_tasks(
    benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
    num_cosets: int = 256,
    writebacks_per_benchmark: int = 300,
    config: EnergyStudyConfig = EnergyStudyConfig(),
) -> List[Task]:
    """The Fig. 9 sweep as campaign tasks, one per benchmark × technique."""
    base = {
        "writebacks": writebacks_per_benchmark,
        "rows": config.rows,
        "word_bits": config.word_bits,
        "line_bits": config.line_bits,
        "technology": config.technology.value,
        "fault_rate": config.fault_rate,
        "seed": config.seed,
    }
    tasks: List[Task] = []
    for benchmark in benchmarks:
        for spec in _fig9_techniques(num_cosets):
            params = dict(base)
            params.update(
                benchmark=benchmark,
                encoder=spec.encoder,
                cost=spec.cost,
                num_cosets=spec.num_cosets,
                label=spec.label,
            )
            tasks.append(Task(kind="fig9-energy-cell", params=params))
    return tasks


def benchmark_energy_study(
    benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
    num_cosets: int = 256,
    writebacks_per_benchmark: int = 300,
    config: EnergyStudyConfig = EnergyStudyConfig(),
    jobs: int = 1,
    store: Union[ResultStore, str, Path, None] = None,
    progress: Optional[ProgressCallback] = None,
) -> ResultTable:
    """Fig. 9: per-benchmark write energy for both cost-function orderings.

    For each benchmark the table holds the unencoded baseline, VCC and RCC
    optimising energy first ("Opt. Energy") and SAW first ("Opt. SAW"),
    against a memory snapshot with a fixed stuck-at fault rate.

    The sweep runs through the campaign engine: ``jobs`` worker processes
    (bit-identical rows for any count) with optional result caching and
    resume via ``store``.
    """
    tasks = benchmark_energy_tasks(benchmarks, num_cosets, writebacks_per_benchmark, config)
    result = run_campaign(tasks, store=store, jobs=jobs, progress=progress)
    table = ResultTable(
        title="Fig. 9 — per-benchmark write energy (fixed 1e-2 fault snapshot, MLC PCM)",
        columns=["benchmark", "technique", "total_energy_pj", "saving_percent"],
        notes="VCC/RCC use {} cosets; energy includes auxiliary bits".format(num_cosets),
    )
    baseline_energy: Optional[float] = None
    current_benchmark: Optional[str] = None
    for row in result.rows():
        if row["benchmark"] != current_benchmark:
            current_benchmark = row["benchmark"]
            baseline_energy = None
        energy = row["total_energy_pj"]
        if row["encoder"] == "unencoded":
            baseline_energy = energy
        saving = (
            0.0
            if baseline_energy in (None, 0.0)
            else 100.0 * (baseline_energy - energy) / baseline_energy
        )
        table.append(
            benchmark=row["benchmark"],
            technique=row["technique"],
            total_energy_pj=energy,
            saving_percent=saving,
        )
    return table
