"""Result containers shared by the experiment harness.

Experiments return a :class:`ResultTable`: an ordered list of homogeneous
row dictionaries plus enough metadata to print the same rows/series the
paper's figures report.  The class deliberately stays close to a plain
list of dicts so benchmark code and tests can assert on values directly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Union

from repro.errors import SimulationError

__all__ = ["ResultTable"]


@dataclass
class ResultTable:
    """An ordered collection of result rows for one experiment."""

    title: str
    columns: Sequence[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: str = ""

    def append(self, **values: Any) -> None:
        """Append a row; every configured column must be supplied."""
        missing = [column for column in self.columns if column not in values]
        if missing:
            raise SimulationError(f"row is missing columns: {missing}")
        self.rows.append({column: values[column] for column in self.columns})

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(self.rows)

    def column(self, name: str) -> List[Any]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise SimulationError(f"unknown column {name!r}")
        return [row[name] for row in self.rows]

    def filter(self, **criteria: Any) -> List[Dict[str, Any]]:
        """Rows whose values match all the given column=value criteria."""
        out = []
        for row in self.rows:
            if all(row.get(key) == value for key, value in criteria.items()):
                out.append(row)
        return out

    def to_json(self, path: Union[str, Path, None] = None) -> str:
        """Serialise the table (optionally also writing it to ``path``)."""
        payload = json.dumps(
            {"title": self.title, "columns": list(self.columns), "rows": self.rows, "notes": self.notes},
            indent=2,
            default=float,
        )
        if path is not None:
            Path(path).write_text(payload, encoding="utf-8")
        return payload

    def format(self, float_digits: int = 4) -> str:
        """Render a fixed-width text table (what the benches print)."""
        def fmt(value: Any) -> str:
            if isinstance(value, float):
                return f"{value:.{float_digits}g}"
            return str(value)

        header = list(self.columns)
        body = [[fmt(row[column]) for column in header] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(line[i]) for line in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [self.title]
        lines.append("  ".join(header[i].ljust(widths[i]) for i in range(len(header))))
        lines.append("  ".join("-" * widths[i] for i in range(len(header))))
        for line in body:
            lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(header))))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)
