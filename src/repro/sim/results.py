"""Result containers shared by the experiment harness.

Experiments return a :class:`ResultTable`: an ordered list of homogeneous
row dictionaries plus enough metadata to print the same rows/series the
paper's figures report.  The class deliberately stays close to a plain
list of dicts so benchmark code and tests can assert on values directly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Union

from repro.errors import SimulationError
from repro.utils.validation import json_payload

__all__ = ["ResultTable"]


@dataclass
class ResultTable:
    """An ordered collection of result rows for one experiment."""

    title: str
    columns: Sequence[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: str = ""

    def append(self, **values: Any) -> None:
        """Append a row; every configured column must be supplied."""
        missing = [column for column in self.columns if column not in values]
        if missing:
            raise SimulationError(f"row is missing columns: {missing}")
        self.rows.append({column: values[column] for column in self.columns})

    def extend(self, rows: Iterable[Dict[str, Any]]) -> "ResultTable":
        """Append many rows, validating each against the configured columns.

        Extra keys beyond the configured columns are dropped (matching
        :meth:`append`); a row missing a column raises without mutating
        the table.  Returns ``self`` so aggregation code can chain.
        """
        staged = []
        for row in rows:
            missing = [column for column in self.columns if column not in row]
            if missing:
                raise SimulationError(f"row is missing columns: {missing}")
            staged.append({column: row[column] for column in self.columns})
        self.rows.extend(staged)
        return self

    def merge(self, other: "ResultTable") -> "ResultTable":
        """A new table holding this table's rows followed by ``other``'s.

        Both tables must agree on their column sequence; title and notes
        are taken from ``self``.  Campaign aggregation uses this to fold
        per-shard tables back into one figure table.
        """
        if list(other.columns) != list(self.columns):
            raise SimulationError(
                f"cannot merge tables with different columns: "
                f"{list(self.columns)} vs {list(other.columns)}"
            )
        merged = ResultTable(title=self.title, columns=list(self.columns), notes=self.notes)
        merged.extend(self.rows)
        merged.extend(other.rows)
        return merged

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(self.rows)

    def column(self, name: str) -> List[Any]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise SimulationError(f"unknown column {name!r}")
        return [row[name] for row in self.rows]

    def filter(self, **criteria: Any) -> List[Dict[str, Any]]:
        """Rows whose values match all the given column=value criteria."""
        out = []
        for row in self.rows:
            if all(row.get(key) == value for key, value in criteria.items()):
                out.append(row)
        return out

    def to_json(self, path: Union[str, Path, None] = None) -> str:
        """Serialise the table (optionally also writing it to ``path``)."""
        payload = json.dumps(
            {"title": self.title, "columns": list(self.columns), "rows": self.rows, "notes": self.notes},
            indent=2,
            default=float,
        )
        if path is not None:
            Path(path).write_text(payload, encoding="utf-8")
        return payload

    @classmethod
    def from_json(cls, source: Union[str, Path]) -> "ResultTable":
        """Rebuild a table from :meth:`to_json` output (payload or path).

        ``source`` may be the JSON payload itself or a path to a file
        holding it; strings starting with ``{`` are treated as payloads.
        Rows are validated against the recorded columns on the way in.
        """
        payload = json_payload(source, SimulationError, "result table")
        if not isinstance(payload, dict) or "columns" not in payload:
            raise SimulationError("result table payload must be an object with 'columns'")
        table = cls(
            title=payload.get("title", ""),
            columns=list(payload["columns"]),
            notes=payload.get("notes", ""),
        )
        table.extend(payload.get("rows", []))
        return table

    def format(self, float_digits: int = 4) -> str:
        """Render a fixed-width text table (what the benches print)."""
        def fmt(value: Any) -> str:
            if isinstance(value, float):
                return f"{value:.{float_digits}g}"
            return str(value)

        header = list(self.columns)
        body = [[fmt(row[column]) for column in header] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(line[i]) for line in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [self.title]
        lines.append("  ".join(header[i].ljust(widths[i]) for i in range(len(header))))
        lines.append("  ".join("-" * widths[i] for i in range(len(header))))
        for line in body:
            lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(header))))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)
