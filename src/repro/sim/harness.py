"""Shared plumbing for the experiment simulators.

Every experiment builds the same stack — fault map / endurance model,
PCM array, encoder (by registry name with a cost function), memory
controller — and then drives it with either random lines or a synthetic
benchmark trace.  This module centralises that construction so the
per-figure simulators stay small and uniform.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import List, Optional, Sequence

import numpy as np

from repro.coding.cost import (
    BitChangeCost,
    CellChangeCost,
    CostFunction,
    EnergyCost,
    OnesCost,
    SawCost,
    energy_then_saw,
    saw_then_energy,
)
from repro.coding.registry import make_encoder
from repro.ecc import ECP, ErrorCorrector, HammingSecded
from repro.errors import ConfigurationError, SimulationError
from repro.faults.registry import make_fault_model
from repro.memctrl.config import ControllerConfig
from repro.memctrl.controller import LineWriteResult, MemoryController, ReplayResult
from repro.pcm.array import PCMArray
from repro.pcm.cell import CellTechnology
from repro.pcm.endurance import EnduranceModel
from repro.pcm.energy import DEFAULT_MLC_ENERGY, MLCEnergyModel
from repro.pcm.faultmap import FaultMap
from repro.pcm.stats import WriteStats
from repro.traces.synthetic import generate_trace
from repro.traces.trace import Trace
from repro.utils.bitops import random_word
from repro.utils.rng import make_rng

__all__ = [
    "TechniqueSpec",
    "build_controller",
    "cached_fault_map",
    "cached_trace",
    "checked_coset_counts",
    "drive_random_lines",
    "drive_random_lines_scalar",
    "drive_trace",
    "make_cost",
    "make_read_corrector",
    "scalar_random_line_results",
]

#: Cost-function spellings accepted by :class:`TechniqueSpec.cost`.
_COST_NAMES = (
    "bit-changes",
    "cell-changes",
    "ones",
    "energy",
    "saw",
    "energy-then-saw",
    "saw-then-energy",
)


def make_cost(
    name: str,
    technology: CellTechnology = CellTechnology.MLC,
    mlc_energy: MLCEnergyModel = DEFAULT_MLC_ENERGY,
) -> CostFunction:
    """Build a cost function from its short name."""
    key = name.lower()
    if key == "bit-changes":
        return BitChangeCost()
    if key == "cell-changes":
        return CellChangeCost()
    if key == "ones":
        return OnesCost()
    if key == "energy":
        return EnergyCost(technology, mlc_model=mlc_energy)
    if key == "saw":
        return SawCost()
    if key == "energy-then-saw":
        return energy_then_saw(technology, mlc_model=mlc_energy)
    if key == "saw-then-energy":
        return saw_then_energy(technology, mlc_model=mlc_energy)
    raise ConfigurationError(f"unknown cost function {name!r}; expected one of {_COST_NAMES}")


def checked_coset_counts(coset_counts: Sequence[int], minimum: int = 1) -> List[int]:
    """Validate a coset-count sweep axis before any simulation work.

    The shared guard of every coset-grid task builder (fig1/fig2/fig7/
    fig8/fig12): each count must be an integer of at least ``minimum``,
    rejected here — when the grid is declared — rather than deep inside
    a worker process.
    """
    counts = []
    for cosets in coset_counts:
        if isinstance(cosets, bool) or not isinstance(cosets, (int, np.integer)):
            raise ConfigurationError(
                f"coset counts must be integers, got {cosets!r}"
            )
        count = int(cosets)
        if count < minimum:
            raise ConfigurationError(
                f"coset counts must be at least {minimum}, got {cosets!r}"
            )
        counts.append(count)
    return counts


@dataclass(frozen=True)
class TechniqueSpec:
    """One technique line in an experiment.

    Validated on construction: a misspelt cost name or a non-positive
    coset count raises :class:`~repro.errors.ConfigurationError` when the
    spec (and therefore the sweep grid) is built, before any array,
    encoder, or simulation work happens.

    Attributes
    ----------
    encoder:
        Registry name (``unencoded``, ``dbi``, ``fnw``, ``dbi/fnw``,
        ``flipcy``, ``bcc``, ``rcc``, ``vcc``, ``vcc-stored``).
    cost:
        Cost-function name from :func:`make_cost`.
    num_cosets:
        Coset-candidate count for coset techniques.
    label:
        Display label; defaults to the encoder name.
    corrector:
        Optional lifetime-study correction budget: ``None`` (any residual
        wrong bit kills the row), ``"secded"`` or ``"ecp3"``.
    fault_model:
        Optional :mod:`repro.faults` model name (``static-stuck-at``,
        ``row-correlated``, ``transient``, ``wear-drift``).  ``None``
        keeps the historical static stuck-at behaviour and leaves task
        hashes unchanged.
    """

    encoder: str
    cost: str = "energy-then-saw"
    num_cosets: int = 256
    label: str = ""
    corrector: Optional[str] = None
    fault_model: Optional[str] = None

    def __post_init__(self) -> None:
        if not isinstance(self.cost, str) or self.cost.lower() not in _COST_NAMES:
            raise ConfigurationError(
                f"unknown cost function {self.cost!r}; expected one of {_COST_NAMES}"
            )
        if self.fault_model is not None:
            # Resolve eagerly so a misspelt model name fails when the
            # sweep grid is declared, not inside a worker process.
            from repro.faults.registry import get_fault_model_class

            get_fault_model_class(self.fault_model)
        count = self.num_cosets
        if isinstance(count, bool) or not isinstance(count, (int, np.integer)):
            raise ConfigurationError(
                f"num_cosets must be a positive integer, got {count!r}"
            )
        if count < 1:
            raise ConfigurationError(f"num_cosets must be at least 1, got {count}")
        object.__setattr__(self, "num_cosets", int(count))

    def display_name(self) -> str:
        """Label used in result tables."""
        return self.label or self.encoder


def make_read_corrector(name: Optional[str], line_bits: int = 512) -> Optional[ErrorCorrector]:
    """Build the ECC corrector named by a :class:`TechniqueSpec.corrector`.

    The single spelling of the corrector dispatch (``"secded"``,
    ``"ecpN"``) shared by the lifetime simulator's row-failure judge and
    the controller's transient-read correction path, so the two layers
    cannot drift apart.
    """
    if name is None:
        return None
    key = name.lower()
    if key == "secded":
        return HammingSecded()
    if key.startswith("ecp"):
        return ECP(entries_per_row=int(key[3:] or 3), row_bits=line_bits)
    raise ConfigurationError(f"unknown corrector {name!r}; expected 'secded' or 'ecpN'")


def build_controller(
    spec: TechniqueSpec,
    rows: int,
    technology: CellTechnology = CellTechnology.MLC,
    word_bits: int = 64,
    line_bits: int = 512,
    fault_map: Optional[FaultMap] = None,
    endurance_model: Optional[EnduranceModel] = None,
    seed: int = 0,
    encrypt: bool = True,
    use_fault_context: bool = True,
    mlc_energy: MLCEnergyModel = DEFAULT_MLC_ENERGY,
) -> MemoryController:
    """Build the full array + encoder + controller stack for one technique.

    When the spec names a :mod:`repro.faults` model, the model object is
    materialised once and handed to both the array (wear-drift
    thresholds) and the controller (transient sensing, corrected by the
    spec's ECC budget before the encoder observes a read).
    """
    cost = make_cost(spec.cost, technology, mlc_energy)
    encoder = make_encoder(
        spec.encoder,
        word_bits=word_bits,
        num_cosets=spec.num_cosets,
        technology=technology,
        cost_function=cost,
        seed=seed,
    )
    fault_model = make_fault_model(spec.fault_model) if spec.fault_model else None
    array = PCMArray(
        rows=rows,
        row_bits=line_bits,
        technology=technology,
        fault_map=fault_map,
        endurance_model=endurance_model,
        seed=seed,
        word_bits=word_bits,
        fault_model=fault_model,
    )
    read_corrector = None
    if fault_model is not None and fault_model.read_flip_rate > 0.0:
        read_corrector = make_read_corrector(spec.corrector, line_bits)
    return MemoryController(
        array=array,
        encoder=encoder,
        config=ControllerConfig(line_bits=line_bits, word_bits=word_bits, encrypt=encrypt),
        mlc_energy=mlc_energy,
        use_fault_context=use_fault_context,
        fault_model=fault_model,
        read_corrector=read_corrector,
    )


@lru_cache(maxsize=16)
def cached_trace(
    benchmark: str,
    num_writebacks: int,
    memory_lines: int,
    line_bits: int,
    word_bits: int,
    seed: int,
) -> Trace:
    """Per-process memo around :func:`generate_trace`.

    Campaign sweep cells are independent tasks, so every cell of one
    benchmark would otherwise regenerate the identical trace (the serial
    studies used to build it once per benchmark).  Construction is a
    pure function of the arguments and callers only read the trace, so
    sharing one instance per process changes nothing observable.
    """
    return generate_trace(
        benchmark,
        num_writebacks=num_writebacks,
        memory_lines=memory_lines,
        line_bits=line_bits,
        word_bits=word_bits,
        seed=seed,
    )


@lru_cache(maxsize=16)
def cached_fault_map(
    rows: int,
    cells_per_row: int,
    technology: CellTechnology,
    fault_rate: float,
    seed: int,
    model: str = "static-stuck-at",
) -> FaultMap:
    """Per-process memo around :class:`FaultMap` (see :func:`cached_trace`).

    Safe to share: :class:`~repro.pcm.array.PCMArray` copies the stuck
    positions/values into its own arrays at construction and never
    writes back into the map.  ``model`` selects the
    :mod:`repro.faults` model that shapes the stuck-at snapshot.
    """
    return FaultMap(
        rows=rows,
        cells_per_row=cells_per_row,
        technology=technology,
        fault_rate=fault_rate,
        seed=seed,
        model=model,
    )


def drive_random_lines(
    controller: MemoryController,
    num_lines: int,
    address_space: Optional[int] = None,
    seed: int = 0,
) -> WriteStats:
    """Write ``num_lines`` uniformly random cache lines to random addresses.

    Runs the batched
    :meth:`~repro.memctrl.controller.MemoryController.write_random_lines`
    driver: random line data is drawn in chunks (with the exact generator
    call sequence of the scalar loop, so addresses and words match
    :func:`drive_random_lines_scalar` bit for bit) and written through
    ``replay_trace``'s internals — chunked counter-mode pads, the
    identity-encoder fast path for unencoded baselines, and preallocated
    accounting arrays.

    Returns a fresh :class:`WriteStats` covering exactly this call's writes
    (mirroring :func:`drive_trace`'s per-call results), so callers consume
    the result directly instead of reaching into ``controller.stats`` by
    side effect — and phased drives on one controller don't alias.
    """
    if num_lines < 0:
        raise SimulationError("num_lines must be non-negative")
    rng = make_rng(seed, "random-lines")
    # Historical harness behaviour (shared with the scalar oracle): a
    # falsy address_space means "the whole array".
    address_space = address_space or controller.array.rows
    replay = controller.write_random_lines(num_lines, rng, address_space=address_space)
    return replay.write_stats()


def scalar_random_line_results(
    controller: MemoryController,
    num_lines: int,
    address_space: Optional[int] = None,
    seed: int = 0,
) -> List[LineWriteResult]:
    """The scalar random-line oracle loop, one result per write.

    This is the single definition of the reference draw-and-write
    sequence: one address draw plus one :func:`repro.utils.bitops.random_word`
    per word from the seeded stream, then one
    :meth:`~repro.memctrl.controller.MemoryController.write_line` call.
    :func:`drive_random_lines_scalar`, the parity tests, and
    ``benchmarks/bench_random_lines.py`` all wrap exactly this loop, so
    the oracle cannot drift between them.
    """
    if num_lines < 0:
        raise SimulationError("num_lines must be non-negative")
    rng = make_rng(seed, "random-lines")
    words_per_line = controller.config.words_per_line
    address_space = address_space or controller.array.rows
    results: List[LineWriteResult] = []
    for _ in range(num_lines):
        address = int(rng.integers(0, address_space))
        words = [random_word(rng, controller.config.word_bits) for _ in range(words_per_line)]
        results.append(controller.write_line(address, words))
    return results


def drive_random_lines_scalar(
    controller: MemoryController,
    num_lines: int,
    address_space: Optional[int] = None,
    seed: int = 0,
) -> WriteStats:
    """Scalar reference of :func:`drive_random_lines` (the parity oracle).

    Aggregates :func:`scalar_random_line_results` into a
    :class:`WriteStats` the way the harness always has.
    """
    results = scalar_random_line_results(controller, num_lines, address_space, seed)
    return WriteStats.from_line_results(results, controller.config.words_per_line)


def drive_trace(
    controller: MemoryController, trace: Trace, repetitions: int = 1
) -> ReplayResult:
    """Replay a writeback trace through the controller ``repetitions`` times.

    Runs the batched :meth:`~repro.memctrl.controller.MemoryController.replay_trace`
    engine and returns its :class:`~repro.memctrl.controller.ReplayResult`:
    per-write accounting in preallocated arrays (bit-identical to a
    scalar ``write_line`` loop), with ``write_stats()`` /
    ``total_energy_pj()`` aggregation helpers and ``line_results()`` for
    the scalar view.  Trace geometry is validated up front so a mismatched
    trace fails with a clear error instead of deep inside the write path.
    """
    if repetitions < 0:
        raise SimulationError("repetitions must be non-negative")
    if trace.word_bits != controller.config.word_bits:
        raise SimulationError(
            f"trace word size ({trace.word_bits} bits) does not match the "
            f"controller ({controller.config.word_bits} bits)"
        )
    if trace.words_per_line != controller.config.words_per_line:
        raise SimulationError(
            f"trace line geometry ({trace.words_per_line} words of "
            f"{trace.word_bits} bits per line) does not match the controller "
            f"({controller.config.words_per_line} words per line)"
        )
    return controller.replay_trace(trace, repetitions=repetitions)
