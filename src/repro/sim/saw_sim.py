"""Stuck-at-wrong (SAW) mitigation studies against a fixed fault snapshot.

Three experiments share this module:

* :func:`fault_masking_study` — the motivation study of Fig. 2: how the
  mean observed fault rate (wrong cells per written cell) drops as the
  number of random coset candidates grows;
* :func:`saw_vs_coset_count_study` — Fig. 8: the total SAW cell count of
  VCC versus the unencoded baseline as a function of coset cardinality;
* :func:`benchmark_saw_study` — Fig. 10: the per-benchmark SAW cell count
  of VCC(64, 256, 16) versus the unencoded baseline.

All three use a pre-generated stuck-at fault map at the paper's extreme
1e-2 incidence rate and accumulate no additional wear during the run.

All three run through the campaign engine as grids of per-cell task
kinds (``fig2-masking-cell``, ``fig8-saw-cell``, ``fig10-saw-cell``):
``jobs`` worker processes produce bit-identical rows at any count, and a
``store`` enables cached resume.  The random-line cells drive the
batched :meth:`~repro.memctrl.controller.MemoryController.write_random_lines`
engine, whose accounting is bit-identical to the scalar ``write_line``
loop the studies historically ran.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.campaign.engine import ProgressCallback, run_campaign
from repro.campaign.spec import Task
from repro.campaign.store import ResultStore
from repro.campaign.tasks import register_task
from repro.pcm.cell import CellTechnology
from repro.pcm.faultmap import FaultMap
from repro.sim.harness import (
    TechniqueSpec,
    build_controller,
    cached_fault_map,
    cached_trace,
    checked_coset_counts,
    drive_random_lines,
    drive_trace,
)
from repro.sim.results import ResultTable
from repro.utils.rng import derive_seed

__all__ = [
    "SawStudyConfig",
    "benchmark_saw_study",
    "benchmark_saw_tasks",
    "fault_masking_study",
    "fault_masking_tasks",
    "saw_vs_coset_count_study",
    "saw_vs_coset_count_tasks",
]

DEFAULT_BENCHMARKS = ("lbm", "mcf", "bwaves", "fotonik3d", "xalancbmk", "xz")


@dataclass(frozen=True)
class SawStudyConfig:
    """Shared knobs of the SAW studies (scaled down from the paper)."""

    rows: int = 128
    num_writes: int = 300
    word_bits: int = 64
    line_bits: int = 512
    technology: CellTechnology = CellTechnology.MLC
    fault_rate: float = 1e-2
    seed: int = 7

    @property
    def cells_per_row(self) -> int:
        """Cells per row implied by the geometry."""
        return self.line_bits // self.technology.bits_per_cell


def _run_spec(
    spec: TechniqueSpec,
    config: SawStudyConfig,
    fault_map: FaultMap,
    seed_label: str,
    trace=None,
):
    controller = build_controller(
        spec,
        rows=config.rows,
        technology=config.technology,
        word_bits=config.word_bits,
        line_bits=config.line_bits,
        fault_map=fault_map,
        seed=derive_seed(config.seed, seed_label),
        encrypt=True,
    )
    if trace is None:
        return drive_random_lines(
            controller, config.num_writes, seed=derive_seed(config.seed, seed_label + "-writes")
        )
    return drive_trace(controller, trace).write_stats()


def _random_study_base(config: SawStudyConfig) -> Dict[str, Any]:
    """The shared task parameters of the random-line SAW cells."""
    return {
        "rows": config.rows,
        "num_writes": config.num_writes,
        "word_bits": config.word_bits,
        "line_bits": config.line_bits,
        "technology": config.technology.value,
        "fault_rate": config.fault_rate,
        "seed": config.seed,
    }


def _random_study_config(params: Dict[str, Any]) -> SawStudyConfig:
    """Rebuild a :class:`SawStudyConfig` from one task's parameters."""
    return SawStudyConfig(
        rows=params["rows"],
        num_writes=params["num_writes"],
        word_bits=params["word_bits"],
        line_bits=params["line_bits"],
        technology=CellTechnology(params["technology"]),
        fault_rate=params["fault_rate"],
        seed=params["seed"],
    )


@register_task(
    "fig2-masking-cell",
    description="observed fault rate at one coset candidate count (Fig. 2 cell)",
)
def _fig2_masking_cell(params: Dict[str, Any]) -> List[Dict[str, Any]]:
    """One coset-count cell of the Fig. 2 sweep.

    Seed derivation labels (``fig2-faults``, ``fig2-{cosets}``) match the
    historical serial study exactly, so campaign rows are bit-identical
    to the in-process loop — every cell rebuilds the same shared fault
    snapshot from the study seed.
    """
    config = _random_study_config(params)
    cosets = params["cosets"]
    # Optional zoo selection: absent for legacy tasks (so their hashes —
    # and any stored results — are unchanged), a model name otherwise.
    fault_model = params.get("fault_model")
    fault_map = cached_fault_map(
        rows=config.rows,
        cells_per_row=config.cells_per_row,
        technology=config.technology,
        fault_rate=config.fault_rate,
        seed=derive_seed(config.seed, "fig2-faults"),
        model=fault_model or "static-stuck-at",
    )
    if cosets <= 1:
        spec = TechniqueSpec(
            encoder="unencoded",
            cost="saw-then-energy",
            label="1 coset",
            fault_model=fault_model,
        )
    else:
        spec = TechniqueSpec(
            encoder="rcc",
            cost="saw-then-energy",
            num_cosets=cosets,
            label=f"{cosets} cosets",
            fault_model=fault_model,
        )
    stats = _run_spec(spec, config, fault_map, f"fig2-{cosets}")
    cells_written = stats.rows_written * config.cells_per_row
    rate = stats.saw_cells / cells_written if cells_written else 0.0
    return [
        {
            "cosets": cosets,
            "observed_fault_rate": rate,
            "saw_cells": int(stats.saw_cells),
            "cells_written": int(cells_written),
        }
    ]


def fault_masking_tasks(
    coset_counts: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128),
    config: SawStudyConfig = SawStudyConfig(),
    fault_model: Optional[str] = None,
) -> List[Task]:
    """The Fig. 2 sweep as campaign tasks, one per coset count.

    ``fault_model`` selects a :mod:`repro.faults` model for every cell;
    ``None`` keeps the historical static snapshot and leaves the task
    hashes (and any cached results) untouched.
    """
    if fault_model is not None:
        TechniqueSpec(encoder="unencoded", fault_model=fault_model)  # eager name check
    base = _random_study_base(config)
    tasks: List[Task] = []
    for cosets in checked_coset_counts(coset_counts, minimum=1):
        params = dict(base)
        params.update(cosets=cosets)
        if fault_model is not None:
            params["fault_model"] = fault_model
        tasks.append(Task(kind="fig2-masking-cell", params=params))
    return tasks


def fault_masking_study(
    coset_counts: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128),
    config: SawStudyConfig = SawStudyConfig(),
    jobs: int = 1,
    store: Union[ResultStore, str, Path, None] = None,
    progress: Optional[ProgressCallback] = None,
    fault_model: Optional[str] = None,
) -> ResultTable:
    """Fig. 2: mean observed fault rate as the coset candidate count grows.

    The observed fault rate is the number of stuck-at-wrong cells divided
    by the number of cells written; applying more random coset candidates
    lets more faulty cells be matched, so the rate falls monotonically (on
    average) with N.

    The per-count cells run through the campaign engine: ``jobs`` worker
    processes (bit-identical rows for any count) with optional result
    caching and resume via ``store``.
    """
    tasks = fault_masking_tasks(coset_counts, config, fault_model=fault_model)
    result = run_campaign(tasks, store=store, jobs=jobs, progress=progress)
    notes = f"pre-generated fault map at rate {config.fault_rate}"
    if fault_model is not None:
        notes += f"; fault model {fault_model}"
    table = ResultTable(
        title="Fig. 2 — mean observed fault rate vs. number of coset codes",
        columns=["cosets", "observed_fault_rate", "saw_cells", "cells_written"],
        notes=notes,
    )
    return table.extend(result.rows())


@register_task(
    "fig8-saw-cell",
    description="SAW cells of one series at one coset cardinality (Fig. 8 cell)",
)
def _fig8_saw_cell(params: Dict[str, Any]) -> List[Dict[str, Any]]:
    """One (coset count × series) cell of the Fig. 8 sweep.

    ``series`` is ``"unencoded"`` or ``"vcc"``; seed derivation labels
    (``fig8-faults``, ``fig8-{series}-{cosets}``) match the historical
    serial study exactly, so campaign rows are bit-identical to the
    in-process loop.
    """
    config = _random_study_config(params)
    cosets = params["cosets"]
    series = params["series"]
    fault_map = cached_fault_map(
        rows=config.rows,
        cells_per_row=config.cells_per_row,
        technology=config.technology,
        fault_rate=config.fault_rate,
        seed=derive_seed(config.seed, "fig8-faults"),
    )
    if series == "unencoded":
        spec = TechniqueSpec(encoder="unencoded", cost="saw-then-energy", label="Unencoded")
    else:
        # The "VCC" series uses stored kernels over the full word: the
        # generated-kernel variant cannot change the left digit of a symbol
        # and therefore cannot reach the paper's masking coverage (see
        # DESIGN.md, data-representation notes).
        spec = TechniqueSpec(
            encoder="vcc-stored", cost="saw-then-energy", num_cosets=cosets, label="VCC"
        )
    stats = _run_spec(spec, config, fault_map, f"fig8-{series}-{cosets}")
    return [{"cosets": cosets, "series": series, "saw_cells": int(stats.saw_cells)}]


def saw_vs_coset_count_tasks(
    coset_counts: Sequence[int] = (32, 64, 128, 256),
    config: SawStudyConfig = SawStudyConfig(),
) -> List[Task]:
    """The Fig. 8 sweep as campaign tasks, one per coset count × series."""
    base = _random_study_base(config)
    tasks: List[Task] = []
    for cosets in checked_coset_counts(coset_counts, minimum=2):
        for series in ("unencoded", "vcc"):
            params = dict(base)
            params.update(cosets=cosets, series=series)
            tasks.append(Task(kind="fig8-saw-cell", params=params))
    return tasks


def saw_vs_coset_count_study(
    coset_counts: Sequence[int] = (32, 64, 128, 256),
    config: SawStudyConfig = SawStudyConfig(),
    jobs: int = 1,
    store: Union[ResultStore, str, Path, None] = None,
    progress: Optional[ProgressCallback] = None,
) -> ResultTable:
    """Fig. 8: SAW cell count of VCC vs. unencoded across coset cardinalities.

    The (coset count × series) cells run through the campaign engine:
    ``jobs`` worker processes (bit-identical rows for any count) with
    optional result caching and resume via ``store``.
    """
    tasks = saw_vs_coset_count_tasks(coset_counts, config)
    result = run_campaign(tasks, store=store, jobs=jobs, progress=progress)
    saw_cells: Dict[Any, int] = {
        (row["cosets"], row["series"]): row["saw_cells"] for row in result.rows()
    }
    table = ResultTable(
        title="Fig. 8 — SAW cells vs. coset cardinality (fixed 1e-2 fault snapshot)",
        columns=["cosets", "technique", "saw_cells", "reduction_percent"],
        notes="reduction is relative to the unencoded writeback at the same coset count",
    )
    for cosets in checked_coset_counts(coset_counts, minimum=2):
        unencoded = saw_cells[(cosets, "unencoded")]
        vcc = saw_cells[(cosets, "vcc")]
        reduction = 100.0 * (unencoded - vcc) / unencoded if unencoded else 0.0
        table.append(
            cosets=cosets, technique="Unencoded", saw_cells=unencoded, reduction_percent=0.0
        )
        table.append(
            cosets=cosets, technique="VCC", saw_cells=vcc, reduction_percent=reduction
        )
    return table


@register_task(
    "fig10-saw-cell",
    description="SAW cell count of one series on one benchmark trace (Fig. 10 cell)",
)
def _fig10_saw_cell(params: Dict[str, Any]) -> List[Dict[str, Any]]:
    """One (benchmark × series) cell of the Fig. 10 sweep.

    ``series`` is ``"unencoded"`` or ``"vcc"``; seed derivation labels
    match the serial study exactly, so campaign rows are bit-identical
    to the in-process path.
    """
    benchmark = params["benchmark"]
    series = params["series"]
    config = SawStudyConfig(
        rows=params["rows"],
        word_bits=params["word_bits"],
        line_bits=params["line_bits"],
        technology=CellTechnology(params["technology"]),
        fault_rate=params["fault_rate"],
        seed=params["seed"],
    )
    trace = cached_trace(
        benchmark,
        num_writebacks=params["writebacks"],
        memory_lines=config.rows,
        line_bits=config.line_bits,
        word_bits=config.word_bits,
        seed=derive_seed(config.seed, f"fig10-trace-{benchmark}"),
    )
    fault_map = cached_fault_map(
        rows=config.rows,
        cells_per_row=config.cells_per_row,
        technology=config.technology,
        fault_rate=config.fault_rate,
        seed=derive_seed(config.seed, f"fig10-faults-{benchmark}"),
    )
    if series == "unencoded":
        spec = TechniqueSpec(encoder="unencoded", cost="saw-then-energy", label="Unencoded")
    else:
        # Stored kernels / full-word encoding for the same reason as in
        # :func:`saw_vs_coset_count_study`.
        spec = TechniqueSpec(
            encoder="vcc-stored",
            cost="saw-then-energy",
            num_cosets=params["num_cosets"],
            label="VCC",
        )
    stats = _run_spec(spec, config, fault_map, f"fig10-{series}-{benchmark}", trace=trace)
    return [{"benchmark": benchmark, "series": series, "saw_cells": int(stats.saw_cells)}]


def benchmark_saw_tasks(
    benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
    num_cosets: int = 256,
    writebacks_per_benchmark: int = 250,
    config: SawStudyConfig = SawStudyConfig(),
) -> List[Task]:
    """The Fig. 10 sweep as campaign tasks, one per benchmark × series."""
    base = {
        "num_cosets": num_cosets,
        "writebacks": writebacks_per_benchmark,
        "rows": config.rows,
        "word_bits": config.word_bits,
        "line_bits": config.line_bits,
        "technology": config.technology.value,
        "fault_rate": config.fault_rate,
        "seed": config.seed,
    }
    tasks: List[Task] = []
    for benchmark in benchmarks:
        for series in ("unencoded", "vcc"):
            params = dict(base)
            params.update(benchmark=benchmark, series=series)
            tasks.append(Task(kind="fig10-saw-cell", params=params))
    return tasks


def benchmark_saw_study(
    benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
    num_cosets: int = 256,
    writebacks_per_benchmark: int = 250,
    config: SawStudyConfig = SawStudyConfig(),
    jobs: int = 1,
    store: Union[ResultStore, str, Path, None] = None,
    progress: Optional[ProgressCallback] = None,
) -> ResultTable:
    """Fig. 10: per-benchmark SAW cells, unencoded vs. VCC(64, N, N/16).

    The sweep runs through the campaign engine: ``jobs`` worker processes
    (bit-identical rows for any count) with optional result caching and
    resume via ``store``.
    """
    tasks = benchmark_saw_tasks(benchmarks, num_cosets, writebacks_per_benchmark, config)
    result = run_campaign(tasks, store=store, jobs=jobs, progress=progress)
    saw_cells: Dict[Any, int] = {
        (row["benchmark"], row["series"]): row["saw_cells"] for row in result.rows()
    }
    table = ResultTable(
        title="Fig. 10 — per-benchmark SAW cells (fixed 1e-2 fault snapshot)",
        columns=["benchmark", "technique", "saw_cells", "reduction_percent"],
        notes=f"VCC uses {num_cosets} virtual cosets",
    )
    for benchmark in benchmarks:
        unencoded = saw_cells[(benchmark, "unencoded")]
        vcc = saw_cells[(benchmark, "vcc")]
        reduction = 100.0 * (unencoded - vcc) / unencoded if unencoded else 0.0
        table.append(
            benchmark=benchmark,
            technique="Unencoded",
            saw_cells=unencoded,
            reduction_percent=0.0,
        )
        table.append(
            benchmark=benchmark,
            technique=f"VCC({config.word_bits},{num_cosets},{max(1, num_cosets // 16)})",
            saw_cells=vcc,
            reduction_percent=reduction,
        )
    return table
