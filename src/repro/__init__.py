"""repro — a reproduction of "Virtual Coset Coding for Encrypted Non-Volatile
Memories with Multi-Level Cells" (HPCA 2022).

The package is organised bottom-up:

* substrates — :mod:`repro.crypto` (counter-mode encryption),
  :mod:`repro.pcm` (MLC/SLC PCM cells, energy, endurance, fault maps,
  array), :mod:`repro.ecc` (SECDED, ECP), :mod:`repro.traces` (synthetic
  SPEC-like writeback workloads), :mod:`repro.hardware` and
  :mod:`repro.perf` (encoder hardware and system timing models);
* encodings — :mod:`repro.coding` (baselines: DBI, FNW, Flipcy, BCC, RCC)
  and :mod:`repro.core` (the paper's Virtual Coset Coding);
* integration — :mod:`repro.memctrl` (the encrypt -> encode -> write
  memory controller) and :mod:`repro.sim` / :mod:`repro.experiments`
  (the per-figure experiment harness).

Quick start::

    from repro import VCCConfig, VCCEncoder, WordContext
    from repro.coding.cost import EnergyCost

    encoder = VCCEncoder(VCCConfig.for_cosets(256), cost_function=EnergyCost())
    context = WordContext.from_word(old_word=0x0, word_bits=64, bits_per_cell=2)
    encoded = encoder.encode(0xDEADBEEFCAFEF00D, context)
    assert encoder.decode(encoded.codeword, encoded.aux) == 0xDEADBEEFCAFEF00D
"""

from repro.coding import (
    BCCEncoder,
    DBIEncoder,
    EncodedWord,
    Encoder,
    FNWEncoder,
    FlipcyEncoder,
    RCCEncoder,
    UnencodedEncoder,
    WordContext,
    make_encoder,
)
from repro.core import VCCConfig, VCCEncoder
from repro.memctrl import ControllerConfig, MemoryController
from repro.pcm import CellTechnology, EnduranceModel, FaultMap, MLCEnergyModel, PCMArray
from repro.traces import Trace, generate_trace

__version__ = "1.0.0"

__all__ = [
    "BCCEncoder",
    "CellTechnology",
    "ControllerConfig",
    "DBIEncoder",
    "EncodedWord",
    "Encoder",
    "EnduranceModel",
    "FNWEncoder",
    "FaultMap",
    "FlipcyEncoder",
    "MLCEnergyModel",
    "MemoryController",
    "PCMArray",
    "RCCEncoder",
    "Trace",
    "UnencodedEncoder",
    "VCCConfig",
    "VCCEncoder",
    "WordContext",
    "__version__",
    "generate_trace",
    "make_encoder",
]
