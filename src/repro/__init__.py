"""repro — a reproduction of "Virtual Coset Coding for Encrypted Non-Volatile
Memories with Multi-Level Cells" (HPCA 2022).

The package is organised bottom-up:

* substrates — :mod:`repro.crypto` (counter-mode encryption),
  :mod:`repro.pcm` (MLC/SLC PCM cells, energy, endurance, fault maps,
  array), :mod:`repro.ecc` (SECDED, ECP), :mod:`repro.traces` (synthetic
  SPEC-like writeback workloads), :mod:`repro.hardware` and
  :mod:`repro.perf` (encoder hardware and system timing models);
* encodings — :mod:`repro.coding` (baselines: DBI, FNW, Flipcy, BCC, RCC)
  and :mod:`repro.core` (the paper's Virtual Coset Coding);
* integration — :mod:`repro.memctrl` (the encrypt -> encode -> write
  memory controller) and :mod:`repro.sim` / :mod:`repro.experiments`
  (the per-figure experiment harness);
* orchestration — :mod:`repro.campaign` (declarative sweep grids run on
  worker processes with content-addressed caching and resume;
  ``python -m repro.campaign``).

Quick start — encoders are resolved by short name through the plugin
registry, and the hot path operates on whole cache lines::

    from repro import LineContext, make_encoder
    from repro.coding.cost import EnergyCost

    encoder = make_encoder("vcc", num_cosets=256, cost_function=EnergyCost())
    context = LineContext.blank(words_per_line=8, word_bits=64, bits_per_cell=2)
    line = [0xDEADBEEFCAFEF00D] * 8
    encoded = encoder.encode_line(line, context)
    assert encoder.decode_line(encoded.codewords, encoded.auxes) == line

The word-granular API (:meth:`Encoder.encode` with a :class:`WordContext`)
remains available; ``encode_line`` falls back to it for encoders that only
implement the scalar interface.
"""

from repro.coding import (
    BCCEncoder,
    DBIEncoder,
    EncodedLine,
    EncodedWord,
    Encoder,
    FNWEncoder,
    FlipcyEncoder,
    LineContext,
    RCCEncoder,
    UnencodedEncoder,
    WordContext,
    available_encoders,
    make_encoder,
    register_encoder,
)
from repro.campaign import ResultStore, SweepSpec, Task, register_task, run_campaign
from repro.core import VCCConfig, VCCEncoder
from repro.memctrl import ControllerConfig, MemoryController
from repro.pcm import CellTechnology, EnduranceModel, FaultMap, MLCEnergyModel, PCMArray
from repro.traces import Trace, generate_trace

__version__ = "1.2.0"

__all__ = [
    "BCCEncoder",
    "CellTechnology",
    "ControllerConfig",
    "DBIEncoder",
    "EncodedLine",
    "EncodedWord",
    "Encoder",
    "EnduranceModel",
    "FNWEncoder",
    "FaultMap",
    "FlipcyEncoder",
    "LineContext",
    "MLCEnergyModel",
    "MemoryController",
    "PCMArray",
    "RCCEncoder",
    "ResultStore",
    "SweepSpec",
    "Task",
    "Trace",
    "UnencodedEncoder",
    "VCCConfig",
    "VCCEncoder",
    "WordContext",
    "__version__",
    "available_encoders",
    "generate_trace",
    "make_encoder",
    "register_encoder",
    "register_task",
    "run_campaign",
]
