"""The memory controller: encrypt, encode, write, and the inverse read path.

The controller owns the per-line write counters (via the counter-mode
engine), the per-word auxiliary bits produced by the encoder, and the
accounting of write energy / bit changes / stuck-at-wrong cells.  It is the
single integration point the simulators drive — either one
:meth:`MemoryController.write_line` call per trace record, a whole
trace at once through the batched :meth:`MemoryController.replay_trace`
engine, or a stream of uniformly random lines through
:meth:`MemoryController.write_random_lines` (both batched drivers share
the same internals: bit-identical accounting, per-write results
accumulated into the preallocated arrays of a :class:`ReplayResult`).

The write path is line-granular end to end: each write issues a single
:meth:`repro.coding.base.Encoder.encode_line` call (vectorised for every
builtin technique), auxiliary bits live in a preallocated
``(rows, words_per_line)`` array, and the energy / SAW accounting is
computed with NumPy over the whole row.

The batched drivers go one level further: the generic (non-identity)
replay path partitions each chunk into *waves* of queued writes targeting
distinct rows, gathers the old-cell state of the whole wave in one
:meth:`repro.pcm.array.PCMArray.read_rows` call, encodes every line of the
wave through a single :meth:`repro.coding.base.Encoder.encode_lines` call,
and flushes the wave's accounting with row-wise NumPy reductions — all
bit-identical to the scalar :meth:`MemoryController.write_line` sequence,
because writes within a wave cannot observe each other's rows and
wear-leveling gap migrations always land on a wave's last write.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # runtime import would be circular via repro.traces
    from repro.faults.models import FaultModel
    from repro.traces.trace import Trace

import numpy as np

import repro.obs as obs
from repro.coding.base import (
    EncodedLine,
    Encoder,
    LineContext,
    cells_matrix_to_words,
    words_matrix_to_cells,
)
from repro.crypto.counter_mode import CounterModeEngine
from repro.ecc.base import ErrorCorrector
from repro.errors import ConfigurationError, MemoryModelError
from repro.memctrl.config import ControllerConfig
from repro.pcm.array import PCMArray
from repro.pcm.cell import CellTechnology
from repro.pcm.energy import DEFAULT_MLC_ENERGY, DEFAULT_SLC_ENERGY, MLCEnergyModel, SLCEnergyModel
from repro.pcm.faultrepo import FaultRepository
from repro.pcm.stats import WriteStats
from repro.pcm.wearlevel import StartGapWearLeveler
from repro.utils.bitops import popcount64_array, random_word
from repro.utils.rng import derive_seed, make_rng

__all__ = ["LineWriteResult", "ReplayResult", "MemoryController"]

#: Accepted values for the controller's ``fault_knowledge`` parameter.
FAULT_KNOWLEDGE_MODES = ("oracle", "discovered", "none")

#: Default cap on the lines encoded per replay wave.  Bounds the candidate
#: tensors of wide searches (RCC-256 evaluates candidates × words × cells
#: floats per line) while keeping enough lines in flight to amortise the
#: per-call overhead of the batched encode kernels.
REPLAY_WAVE_LINES = 32

#: Early-stop predicate for :meth:`MemoryController.replay_trace`, called
#: after every write as ``stop(index, row_index, saw_cells,
#: saw_bits_per_word)``; returning True ends the replay after that write.
ReplayStop = Callable[[int, int, int, np.ndarray], bool]

# Replay-engine telemetry.  Metric updates happen at wave/chunk (never
# per-write) granularity; bench_obs_overhead.py swaps these handles for
# null stand-ins to prove the whole layer costs <2% when tracing is off.
_OBS_WAVES = obs.counter("replay.waves", "encode waves executed by the generic replay path")
_OBS_WAVE_LINES = obs.histogram("replay.wave_lines", "lines encoded per replay wave")
_OBS_CONFLICT_CUTS = obs.counter(
    "replay.conflict_cuts", "waves cut short by a write to an already-queued row"
)
_OBS_GAP_FLUSHES = obs.counter(
    "replay.gap_flushes", "waves capped by a pending Start-Gap gap migration"
)
_OBS_IDENTITY_CHUNKS = obs.counter(
    "replay.identity_chunks", "chunks taken by the identity-encoder fast path"
)
_OBS_SCALAR_FALLBACKS = obs.counter(
    "replay.scalar_fallbacks", "chunk ranges replayed by the scalar (odd-width) fallback"
)
_OBS_EARLY_STOPS = obs.counter(
    "replay.early_stops", "replays ended early by the stop predicate"
)
_OBS_EARLY_STOP_INDEX = obs.gauge(
    "replay.early_stop_index", "write index at which the latest replay stopped early"
)
_OBS_TRANSIENT_FLIPS = obs.counter(
    "faults.transient_flips", "cells sensed wrongly by the transient fault model"
)
_OBS_TRANSIENT_CORRECTED = obs.counter(
    "faults.transient_corrected", "sensed reads fully repaired by the ECC read path"
)
_OBS_TRANSIENT_ESCAPED = obs.counter(
    "faults.transient_escaped", "sensed reads whose flips escaped ECC into the encoder"
)
_OBS_SPAN = obs.span


@dataclass(frozen=True)
class LineWriteResult:
    """Accounting for one cache-line write.

    Attributes
    ----------
    address:
        Line address written.
    row_index:
        Array row the line mapped to.
    data_energy_pj / aux_energy_pj:
        Write energy spent on the data cells and on the auxiliary bits.
    cells_changed / bits_changed:
        How many cells (and bits) actually changed state in the array.
    saw_cells:
        Stuck-at-wrong cells left after encoding (cells whose stored value
        differs from the intended codeword value).
    saw_bits_per_word:
        Per-word count of wrong *bits*, used by the ECC substrates to judge
        whether the row is still recoverable.
    newly_stuck_cells:
        Cells that exceeded their endurance during this write.
    """

    address: int
    row_index: int
    data_energy_pj: float
    aux_energy_pj: float
    cells_changed: int
    bits_changed: int
    saw_cells: int
    saw_bits_per_word: Tuple[int, ...]
    newly_stuck_cells: int

    @property
    def total_energy_pj(self) -> float:
        """Total energy of the line write including auxiliary bits."""
        return self.data_energy_pj + self.aux_energy_pj


@dataclass
class ReplayResult:
    """Per-write accounting of one :meth:`MemoryController.replay_trace` call.

    Each attribute is a preallocated array with one entry per performed
    write, in replay order; every value is bit-identical to what the
    corresponding :class:`LineWriteResult` of a scalar
    :meth:`MemoryController.write_line` sequence would carry.

    Attributes
    ----------
    addresses / row_indices:
        Line address written and the physical row it mapped to.
    data_energy_pj / aux_energy_pj:
        Write energy spent on the data cells and the auxiliary bits.
    cells_changed / bits_changed:
        Cells (and bits) that actually changed state in the array.
    saw_cells:
        Stuck-at-wrong cells left by each write.
    saw_bits_per_word:
        ``(writes, words_per_line)`` matrix of residual wrong bits per word.
    newly_stuck_cells:
        Cells that exceeded their endurance during each write.
    writes:
        Number of writes performed (the common length of the arrays).
    stopped_early:
        True when the ``stop`` predicate ended the replay before the
        requested repetitions (or ``max_writes``) were exhausted.
    """

    addresses: np.ndarray
    row_indices: np.ndarray
    data_energy_pj: np.ndarray
    aux_energy_pj: np.ndarray
    cells_changed: np.ndarray
    bits_changed: np.ndarray
    saw_cells: np.ndarray
    saw_bits_per_word: np.ndarray
    newly_stuck_cells: np.ndarray
    words_per_line: int
    writes: int = 0
    stopped_early: bool = False

    # ------------------------------------------------------- aggregation
    def total_energy_pj(self) -> float:
        """Total write energy of the replay including auxiliary bits."""
        return float(self.data_energy_pj.sum() + self.aux_energy_pj.sum())

    def saw_words(self) -> int:
        """Number of written words left with at least one wrong bit."""
        return int(np.count_nonzero(self.saw_bits_per_word))

    def write_stats(self) -> WriteStats:
        """Aggregate the replay into a :class:`repro.pcm.stats.WriteStats`.

        Integer counters match :meth:`WriteStats.from_line_results` over
        :meth:`line_results` exactly; the float energy totals are computed
        with vectorised sums (same values up to floating-point summation
        order).
        """
        return WriteStats(
            words_written=self.writes * self.words_per_line,
            rows_written=self.writes,
            bits_changed=int(self.bits_changed.sum()),
            cells_changed=int(self.cells_changed.sum()),
            data_energy_pj=float(self.data_energy_pj.sum()),
            aux_energy_pj=float(self.aux_energy_pj.sum()),
            saw_cells=int(self.saw_cells.sum()),
            saw_words=self.saw_words(),
        )

    # ------------------------------------------------------ scalar views
    def line_result(self, index: int) -> LineWriteResult:
        """The :class:`LineWriteResult` view of one write of the replay."""
        if not 0 <= index < self.writes:
            raise MemoryModelError(f"write index {index} out of range [0, {self.writes})")
        return LineWriteResult(
            address=int(self.addresses[index]),
            row_index=int(self.row_indices[index]),
            data_energy_pj=float(self.data_energy_pj[index]),
            aux_energy_pj=float(self.aux_energy_pj[index]),
            cells_changed=int(self.cells_changed[index]),
            bits_changed=int(self.bits_changed[index]),
            saw_cells=int(self.saw_cells[index]),
            saw_bits_per_word=tuple(int(b) for b in self.saw_bits_per_word[index]),
            newly_stuck_cells=int(self.newly_stuck_cells[index]),
        )

    def line_results(self) -> List[LineWriteResult]:
        """All writes as scalar :class:`LineWriteResult` objects (slow path)."""
        return [self.line_result(index) for index in range(self.writes)]

    @classmethod
    def empty(cls, capacity: int, words_per_line: int) -> "ReplayResult":
        """Preallocate accounting arrays for up to ``capacity`` writes."""
        return cls(
            addresses=np.zeros(capacity, dtype=np.int64),
            row_indices=np.zeros(capacity, dtype=np.int64),
            data_energy_pj=np.zeros(capacity, dtype=np.float64),
            aux_energy_pj=np.zeros(capacity, dtype=np.float64),
            cells_changed=np.zeros(capacity, dtype=np.int64),
            bits_changed=np.zeros(capacity, dtype=np.int64),
            saw_cells=np.zeros(capacity, dtype=np.int64),
            saw_bits_per_word=np.zeros((capacity, words_per_line), dtype=np.int64),
            newly_stuck_cells=np.zeros(capacity, dtype=np.int64),
            words_per_line=words_per_line,
        )

    def _trim(self, writes: int, stopped_early: bool) -> "ReplayResult":
        """Shrink every array down to the writes actually performed.

        A copy (not a view) when the replay ended early, so a result of a
        few hundred writes does not pin the full-capacity arrays of a
        200k-write preallocation in memory.
        """
        compact = (
            (lambda array: array[:writes].copy())
            if writes < len(self.addresses)
            else (lambda array: array)
        )
        self.addresses = compact(self.addresses)
        self.row_indices = compact(self.row_indices)
        self.data_energy_pj = compact(self.data_energy_pj)
        self.aux_energy_pj = compact(self.aux_energy_pj)
        self.cells_changed = compact(self.cells_changed)
        self.bits_changed = compact(self.bits_changed)
        self.saw_cells = compact(self.saw_cells)
        self.saw_bits_per_word = compact(self.saw_bits_per_word)
        self.newly_stuck_cells = compact(self.newly_stuck_cells)
        self.writes = writes
        self.stopped_early = stopped_early
        return self


class MemoryController:
    """Drives the encrypt -> encode -> write pipeline against a PCM array.

    Parameters
    ----------
    array:
        Target :class:`repro.pcm.array.PCMArray`.
    encoder:
        Word-level encoding technique (any :class:`repro.coding.base.Encoder`).
    config:
        Line/word geometry and whether encryption is enabled.
    encryption:
        Counter-mode engine; created on demand when ``config.encrypt`` and
        none is supplied.
    mlc_energy / slc_energy:
        Energy models used for *accounting* the writes that actually happen
        (independent of whatever cost function the encoder optimises).
    use_fault_context:
        Backwards-compatible switch: ``False`` is equivalent to
        ``fault_knowledge="none"``.
    fault_knowledge:
        How the encoder learns about stuck cells: ``"oracle"`` (the array's
        ground truth, the paper's assumption of an ideal fault repository),
        ``"discovered"`` (a :class:`repro.pcm.faultrepo.FaultRepository`
        populated by write-verify mismatches), or ``"none"``.
    wear_leveler:
        Optional Start-Gap wear leveler.  When present, line addresses are
        first mapped to logical rows and then rotated onto physical rows;
        the array must provide ``wear_leveler.physical_rows_required`` rows.
    fault_model:
        Optional :class:`repro.faults.models.FaultModel` whose *sensing*
        effects attach here: a model with a nonzero ``read_flip_rate``
        (e.g. ``transient``) perturbs the old-row view the encoder sees on
        each read-before-write.  Energy/bit accounting always uses the
        true array state — only the encoder's context is perturbed.
    read_corrector:
        Optional :class:`repro.ecc.base.ErrorCorrector` adjudicating
        sensed reads: flips within its budget are repaired before the
        encoder observes them, the rest escape into the line context.
    """

    def __init__(
        self,
        array: PCMArray,
        encoder: Encoder,
        config: Optional[ControllerConfig] = None,
        encryption: Optional[CounterModeEngine] = None,
        mlc_energy: MLCEnergyModel = DEFAULT_MLC_ENERGY,
        slc_energy: SLCEnergyModel = DEFAULT_SLC_ENERGY,
        use_fault_context: bool = True,
        fault_knowledge: Optional[str] = None,
        wear_leveler: Optional[StartGapWearLeveler] = None,
        fault_model: Optional["FaultModel"] = None,
        read_corrector: Optional[ErrorCorrector] = None,
    ):
        self.config = config or ControllerConfig()
        if array.word_bits != self.config.word_bits:
            raise ConfigurationError("array word size does not match controller config")
        if array.row_bits != self.config.line_bits:
            raise ConfigurationError(
                "controller assumes one cache line per array row "
                f"(line {self.config.line_bits} bits vs row {array.row_bits} bits)"
            )
        if encoder.word_bits != self.config.word_bits:
            raise ConfigurationError("encoder word size does not match controller config")
        if encoder.technology is not array.technology:
            raise ConfigurationError("encoder and array cell technologies differ")
        self.array = array
        self.encoder = encoder
        self.mlc_energy = mlc_energy
        self.slc_energy = slc_energy
        if fault_knowledge is None:
            fault_knowledge = "oracle" if use_fault_context else "none"
        if fault_knowledge not in FAULT_KNOWLEDGE_MODES:
            raise ConfigurationError(
                f"fault_knowledge must be one of {FAULT_KNOWLEDGE_MODES}, got {fault_knowledge!r}"
            )
        self.fault_knowledge = fault_knowledge
        self.use_fault_context = fault_knowledge != "none"
        self.fault_repository = (
            FaultRepository(array.rows, array.cells_per_row)
            if fault_knowledge == "discovered"
            else None
        )
        self.wear_leveler = wear_leveler
        if wear_leveler is not None and array.rows < wear_leveler.physical_rows_required:
            raise ConfigurationError(
                "the array must provide at least "
                f"{wear_leveler.physical_rows_required} rows for Start-Gap "
                f"wear leveling, got {array.rows}"
            )
        if self.config.encrypt:
            self.encryption = encryption or CounterModeEngine(
                line_bits=self.config.line_bits, word_bits=self.config.word_bits
            )
        else:
            self.encryption = None
        self.stats = WriteStats()
        # Auxiliary bits stored per (row, word); modelled as living in a
        # dedicated side region (the SECDED-budget bits of Section V).
        # Techniques with >= 64 auxiliary bits per word don't fit int64 and
        # fall back to Python ints in an object array.
        self._wide_aux = encoder.aux_bits >= 64
        if self._wide_aux:
            self._aux_store = np.zeros(
                (array.rows, self.config.words_per_line), dtype=object
            )
        else:
            self._aux_store = np.zeros(
                (array.rows, self.config.words_per_line), dtype=np.int64
            )
        self._bit_popcount = np.array([0, 1, 1, 2], dtype=np.int64)
        self._energy_lut = (
            self.mlc_energy.lut()
            if array.technology is CellTechnology.MLC
            else np.array(
                [
                    [0.0, self.slc_energy.set_energy_pj],
                    [self.slc_energy.reset_energy_pj, 0.0],
                ]
            )
        )
        self._aux_bit_energy = (
            self.mlc_energy.aux_bit_energy_pj
            if array.technology is CellTechnology.MLC
            else self.slc_energy.aux_bit_energy_pj
        )
        #: Cap on the lines encoded per replay wave (see REPLAY_WAVE_LINES);
        #: exposed as an attribute so studies with huge candidate sets can
        #: trade peak memory against batching.
        self.replay_wave_lines = REPLAY_WAVE_LINES
        self.fault_model = fault_model
        self.read_corrector = read_corrector
        self._read_flip_rate = float(fault_model.read_flip_rate) if fault_model else 0.0
        if self._read_flip_rate > 0.0:
            # Sensed-read bookkeeping: one seeded stream per (row, nth read
            # of that row), so scalar replays and wave gathers perturb the
            # same reads identically regardless of batching.
            self._sense_seed: Optional[int] = derive_seed(
                array.seed if array.seed is not None else 0, "transient-sense"
            )
            self._sense_counts: Optional[np.ndarray] = np.zeros(array.rows, dtype=np.int64)
        else:
            self._sense_seed = None
            self._sense_counts = None

    # ------------------------------------------------------------- mapping
    def row_for_address(self, address: int) -> int:
        """Map a line address onto a physical array row.

        Without wear leveling this is a direct modulo mapping; with
        Start-Gap enabled the logical row is additionally rotated onto its
        current physical position.
        """
        if address < 0:
            raise MemoryModelError("addresses must be non-negative")
        if self.wear_leveler is None:
            return address % self.array.rows
        logical = address % self.wear_leveler.rows
        return self.wear_leveler.physical_row(logical)

    # --------------------------------------------------------------- write
    def write_line(self, address: int, plaintext_words: Sequence[int]) -> LineWriteResult:
        """Encrypt, encode, and write one cache line."""
        if address < 0:
            raise MemoryModelError("addresses must be non-negative")
        words = list(plaintext_words)
        if len(words) != self.config.words_per_line:
            raise ConfigurationError(
                f"expected {self.config.words_per_line} words per line, got {len(words)}"
            )
        if self.encryption is not None:
            encrypted = list(self.encryption.encrypt_line(address, words).words)
        else:
            encrypted = [int(w) for w in words]

        (
            row_index,
            data_energy,
            aux_energy,
            cells_changed,
            bits_changed,
            saw_count,
            saw_bits,
            newly_stuck,
        ) = self._apply_line_write(address, encrypted)

        line_result = LineWriteResult(
            address=address,
            row_index=row_index,
            data_energy_pj=data_energy,
            aux_energy_pj=aux_energy,
            cells_changed=cells_changed,
            bits_changed=bits_changed,
            saw_cells=saw_count,
            saw_bits_per_word=tuple(int(count) for count in saw_bits),
            newly_stuck_cells=newly_stuck,
        )
        self._accumulate(line_result)
        return line_result

    def _apply_line_write(self, address: int, encrypted: Sequence[int]):
        """Encode and store one already-encrypted line; return raw accounting.

        The shared core of :meth:`write_line` and the generic path of
        :meth:`replay_trace`: both produce bit-identical accounting because
        both run exactly this code.  Returns the tuple ``(row_index,
        data_energy_pj, aux_energy_pj, cells_changed, bits_changed,
        saw_cells, saw_bits_per_word, newly_stuck)`` with
        ``saw_bits_per_word`` as an ``int64`` array.
        """
        row_index = self.row_for_address(address)
        old_row = self.array.read_row(row_index)
        stuck_row = self._stuck_knowledge(row_index)
        words_per_line = self.config.words_per_line

        old_auxes = self._aux_store[row_index].copy()
        context = LineContext.from_row(
            self._sensed_view(old_row, row_index),
            words_per_line,
            bits_per_cell=self.array.bits_per_cell,
            stuck_mask=stuck_row,
            old_auxes=old_auxes,
        )
        encoded = self.encoder.encode_line(encrypted, context)
        intended_row = words_matrix_to_cells(
            np.array(encoded.codewords, dtype=np.uint64)
            if self.config.word_bits <= 64
            else list(encoded.codewords),
            self.config.word_bits,
            self.array.bits_per_cell,
        ).reshape(-1)
        if self._wide_aux:
            new_auxes = np.array(encoded.auxes, dtype=object)
            changed_aux_bits = sum(
                bin(int(new) ^ int(old)).count("1")
                for new, old in zip(encoded.auxes, old_auxes)
            )
        else:
            new_auxes = np.array(encoded.auxes, dtype=np.int64)
            changed_aux_bits = int(
                popcount64_array(
                    new_auxes.astype(np.uint64) ^ old_auxes.astype(np.uint64)
                ).sum()
            )
        aux_energy = self._aux_bit_energy * changed_aux_bits

        result = self.array.write_row(row_index, intended_row)
        data_energy = float(
            self._energy_lut[old_row.astype(np.int64), intended_row.astype(np.int64)].sum()  # repro: allow[NUM001] reason=this IS the scalar oracle; the gather materialises a fresh C-contiguous row, and test_replay_parity locks the batched paths to it
        )
        bits_changed = self._count_changed_bits(result.old_cells, result.stored_cells)
        saw_bits = self._saw_bits_per_word(result.stored_cells, intended_row)

        self._aux_store[row_index] = new_auxes

        if self.fault_repository is not None:
            # The write-verify step exposes cells that did not take the
            # intended value; record them for the next write to this row.
            self.fault_repository.observe_write(row_index, intended_row, result.stored_cells)
        if self.wear_leveler is not None:
            movement = self.wear_leveler.record_write()
            if movement is not None:
                self._migrate_row(*movement)

        return (
            row_index,
            data_energy,
            aux_energy,
            result.cells_changed,
            bits_changed,
            result.saw_count,
            saw_bits,
            result.newly_stuck,
        )

    # -------------------------------------------------------------- replay
    def replay_trace(
        self,
        trace: "Trace",
        repetitions: int = 1,
        stop: Optional[ReplayStop] = None,
        max_writes: Optional[int] = None,
    ) -> ReplayResult:
        """Replay a writeback trace ``repetitions`` times through the write path.

        The batched sibling of a :meth:`write_line` loop: the whole replay
        runs inside the controller, accumulating per-write accounting into
        the preallocated arrays of a :class:`ReplayResult` instead of one
        :class:`LineWriteResult` (plus several lists and tuples) per write.
        Every accounting value is bit-identical to the scalar path — the
        generic path runs the exact same :meth:`_apply_line_write` core,
        and the identity-encoder fast path skips only work whose outcome
        is fixed (the unencoded baseline stores the ciphertext unchanged
        with no auxiliary bits).  The controller's running
        :attr:`stats` are updated once at the end with the batch totals.

        Parameters
        ----------
        trace:
            A :class:`repro.traces.trace.Trace` whose geometry matches the
            controller configuration.
        repetitions:
            How many times to replay the trace end to end.
        stop:
            Optional early-stop predicate called after every write as
            ``stop(index, row_index, saw_cells, saw_bits_per_word)``;
            returning True ends the replay after that write (lifetime
            studies stop on the Nth failed row instead of paying for the
            remaining writes).
        max_writes:
            Optional hard cap on the total number of writes, applied on
            top of ``repetitions`` (the last repetition may be partial).
        """
        if repetitions < 0:
            raise ConfigurationError("repetitions must be non-negative")
        if trace.word_bits != self.config.word_bits:
            raise ConfigurationError(
                f"trace word size ({trace.word_bits} bits) does not match "
                f"the controller ({self.config.word_bits} bits)"
            )
        if trace.words_per_line != self.config.words_per_line:
            raise ConfigurationError(
                f"trace geometry ({trace.words_per_line} words per line) does not "
                f"match the controller ({self.config.words_per_line} words per line)"
            )
        if max_writes is not None and max_writes < 0:
            raise ConfigurationError("max_writes must be non-negative")

        num_records = len(trace)
        total = num_records * repetitions
        if max_writes is not None:
            total = min(total, max_writes)
        words_per_line = self.config.words_per_line
        replay = ReplayResult.empty(total, words_per_line)
        if total == 0:
            return replay._trim(0, False)

        reps_needed = -(-total // num_records)
        addresses = np.tile(trace.addresses_array(), reps_needed)[:total]
        words = trace.words_array()

        def plaintext_for(index: int) -> List[int]:
            # Wide/odd word sizes: per-record scalar fallback.
            return list(trace[index % num_records].words)

        # Chunked execution: pads and cell conversions are produced only
        # for writes about to be performed.  The geometric chunk ramp
        # bounds the work wasted when an early stop ends the replay after
        # a few hundred writes (lifetime cells stop at a tiny fraction of
        # their max_writes cap) without costing long replays anything,
        # and an early stop rolls the encryption counters of the unused
        # chunk tail back so controller state matches the scalar path
        # exactly.
        chunk = 512
        start = 0
        performed = 0
        stopped = False
        batch_capable = words is not None
        with _OBS_SPAN("replay.trace", total_writes=total) as trace_span:
            while start < total and not stopped:
                end = min(start + chunk, total)
                chunk = min(chunk * 2, 8192)
                encrypted_chunk: Optional[np.ndarray] = None
                if batch_capable:
                    record_indices = np.arange(start, end, dtype=np.int64) % num_records
                    chunk_words = words[record_indices]
                    if self.encryption is None:
                        encrypted_chunk = chunk_words
                    else:
                        encrypted_chunk = self.encryption.encrypt_lines(
                            addresses[start:end], chunk_words
                        )
                        if encrypted_chunk is None:
                            batch_capable = False
                if encrypted_chunk is not None and self.encoder.is_identity:
                    _OBS_IDENTITY_CHUNKS.inc()
                    performed, stopped = self._replay_identity(
                        replay, addresses, encrypted_chunk, start, end, stop
                    )
                else:
                    performed, stopped = self._replay_generic(
                        replay, plaintext_for, addresses, encrypted_chunk, start, end, stop
                    )
                if (
                    stopped
                    and performed < end
                    and encrypted_chunk is not None
                    and self.encryption is not None
                ):
                    self.encryption.rollback_counters(addresses[performed:end])
                start = end
            if stopped:
                _OBS_EARLY_STOPS.inc()
                _OBS_EARLY_STOP_INDEX.set(performed)
            trace_span.set(performed=performed, stopped=stopped)
        replay._trim(performed, stopped)
        self.stats.absorb(replay.write_stats())
        return replay

    def _replay_identity(
        self,
        replay: ReplayResult,
        addresses: np.ndarray,
        encrypted_chunk: np.ndarray,
        start: int,
        end: int,
        stop: Optional[ReplayStop],
    ):
        """Replay fast path for identity encoders over writes [start, end).

        The stored values are the ciphertext words themselves and no
        auxiliary bits exist, so the per-write work reduces to the array
        write; everything else (energy, changed bits/cells, SAW) is a pure
        function of the (old, stored, intended) cell rows and is computed
        in one vectorised flush per chunk — row-wise NumPy reductions are
        bit-identical to the scalar path's per-row reductions.  Returns
        ``(performed, stopped)`` with ``performed`` the global write count.
        """
        count = end - start
        array = self.array
        bits_per_cell = array.bits_per_cell
        words_per_line = self.config.words_per_line
        cells_chunk = words_matrix_to_cells(
            encrypted_chunk, self.config.word_bits, bits_per_cell
        ).reshape(count, array.cells_per_row)
        popcount = self._bit_popcount
        write_row_fast = array.write_row_fast
        repository = self.fault_repository
        leveler = self.wear_leveler
        chunk_addresses = addresses[start:end]
        row_indices = None if leveler is not None else chunk_addresses % array.rows
        np.copyto(replay.addresses[start:end], chunk_addresses)
        out_rows = replay.row_indices
        out_newly = replay.newly_stuck_cells

        old_buffer = np.empty((count, array.cells_per_row), dtype=np.uint8)
        stored_buffer = np.empty_like(old_buffer)
        zero_saw_bits = np.zeros(words_per_line, dtype=np.int64)

        performed = start
        stopped = False
        for local in range(count):
            index = start + local
            if row_indices is not None:
                row_index = row_indices[local]
            else:
                row_index = self.row_for_address(int(chunk_addresses[local]))
            intended = cells_chunk[local]
            old, stored, changed_mask, saw_mask, newly_stuck = write_row_fast(
                row_index, intended
            )
            old_buffer[local] = old
            stored_buffer[local] = stored
            out_rows[index] = row_index
            out_newly[index] = newly_stuck

            if repository is not None:
                repository.observe_write(row_index, intended, stored)
            if leveler is not None:
                movement = leveler.record_write()
                if movement is not None:
                    self._migrate_row(*movement)

            performed = index + 1
            if stop is not None:
                saw_count = int(saw_mask.sum())
                if saw_count:
                    wrong = stored ^ intended
                    saw_bits = (
                        popcount[wrong]
                        if bits_per_cell == 2
                        else (wrong != 0).astype(np.int64)
                    ).reshape(words_per_line, -1).sum(axis=1)
                else:
                    saw_bits = zero_saw_bits
                if stop(index, int(row_index), saw_count, saw_bits):
                    stopped = True
                    break

        done = performed - start
        # Identity encoders store no auxiliary bits: aux energy stays 0.
        self._flush_replay_accounting(
            replay, start, performed, old_buffer[:done], stored_buffer[:done], cells_chunk[:done]
        )
        return performed, stopped

    def _flush_replay_accounting(
        self,
        replay: ReplayResult,
        lo: int,
        hi: int,
        old_rows: np.ndarray,
        stored_rows: np.ndarray,
        intended_rows: np.ndarray,
    ) -> None:
        """Vectorised accounting flush for applied replay writes ``[lo, hi)``.

        Energy, changed bits/cells, and SAW counts are pure functions of
        the (old, stored, intended) cell rows; row-wise NumPy reductions
        over the buffered rows are bit-identical to the scalar path's
        per-row reductions.  A stored cell differs from the intended value
        exactly at the stuck-at-wrong positions, so SAW counts fall out of
        the xor.
        """
        if lo >= hi:
            return
        popcount = self._bit_popcount
        bits_per_cell = self.array.bits_per_cell
        replay.data_energy_pj[lo:hi] = self._energy_lut[old_rows, intended_rows].sum(axis=1)  # repro: allow[NUM001] reason=advanced indexing copies into a fresh C-contiguous (rows, cells) block, so the axis-1 pairwise sums match the per-row oracle (parity-locked by test_replay_parity)
        changed = stored_rows != old_rows
        replay.cells_changed[lo:hi] = np.count_nonzero(changed, axis=1)
        if bits_per_cell == 1:
            replay.bits_changed[lo:hi] = np.count_nonzero(old_rows ^ stored_rows, axis=1)
        else:
            replay.bits_changed[lo:hi] = popcount[old_rows ^ stored_rows].sum(axis=1)
        wrong_xor = stored_rows ^ intended_rows
        replay.saw_cells[lo:hi] = np.count_nonzero(wrong_xor, axis=1)
        wrong_bits = (
            popcount[wrong_xor]
            if bits_per_cell == 2
            else (wrong_xor != 0).astype(np.int64)
        )
        replay.saw_bits_per_word[lo:hi] = wrong_bits.reshape(
            hi - lo, self.config.words_per_line, -1
        ).sum(axis=2)

    def _replay_generic(
        self,
        replay: ReplayResult,
        plaintext_for: Callable[[int], List[int]],
        addresses: np.ndarray,
        encrypted_chunk: Optional[np.ndarray],
        start: int,
        end: int,
        stop: Optional[ReplayStop],
    ):
        """Replay path for arbitrary encoders over writes [start, end).

        Wave execution: the chunk is partitioned into runs of writes
        targeting *distinct* rows.  Within such a wave no write can observe
        another's row, stuck mask, or auxiliary bits, so the old-cell state
        of every line is gathered up front in one
        :meth:`repro.pcm.array.PCMArray.read_rows` call and all lines are
        encoded through a single :meth:`repro.coding.base.Encoder.encode_lines`
        call — the selected codewords are bit-identical to encoding at each
        write's turn.  A write to a row already queued in the wave starts
        the next wave, and with Start-Gap wear leveling a wave never spans
        a gap migration (the mapping rotation and the migration write land
        strictly after the wave's last write).  The writes themselves then
        apply sequentially through the array's stuck/wear semantics, with
        the per-write accounting flushed wave-at-a-time by the same
        vectorised reductions as the identity fast path.  Returns
        ``(performed, stopped)`` like :meth:`_replay_identity`.

        ``plaintext_for`` supplies the plaintext word list of one write for
        the scalar-encryption fallback (odd word widths, where no batched
        ciphertext chunk exists and :meth:`_replay_generic_scalar` runs
        instead).
        """
        if encrypted_chunk is None:
            _OBS_SCALAR_FALLBACKS.inc()
            return self._replay_generic_scalar(
                replay, plaintext_for, addresses, start, end, stop
            )
        array = self.array
        leveler = self.wear_leveler
        repository = self.fault_repository
        words_per_line = self.config.words_per_line
        bits_per_cell = array.bits_per_cell
        popcount = self._bit_popcount
        zero_saw_bits = np.zeros(words_per_line, dtype=np.int64)
        np.copyto(replay.addresses[start:end], addresses[start:end])
        # Without wear leveling the address-to-row mapping is fixed, so the
        # whole chunk's rows are computed in one vectorised modulo.
        row_lookup = (
            None if leveler is not None else (addresses[start:end] % array.rows).tolist()
        )

        index = start
        performed = start
        stopped = False
        while index < end and not stopped:
            # ---- wave selection: a maximal run of writes to distinct rows.
            limit = min(end - index, self.replay_wave_lines)
            gap_capped = False
            if leveler is not None:
                # The next gap migration rewrites a row and rotates the
                # mapping; capping the wave at the write that triggers it
                # keeps the migration strictly after the wave's last write.
                until_gap = leveler.writes_until_gap_move
                if until_gap < limit:
                    limit = until_gap
                    gap_capped = True
            rows: List[int] = []
            seen = set()
            scan = index
            while scan < end and len(rows) < limit:
                if row_lookup is not None:
                    row_index = row_lookup[scan - start]
                else:
                    row_index = self.row_for_address(int(addresses[scan]))
                if row_index in seen:
                    break
                seen.add(row_index)
                rows.append(row_index)
                scan += 1
            count = len(rows)
            row_array = np.asarray(rows, dtype=np.intp)
            _OBS_WAVES.inc()
            _OBS_WAVE_LINES.observe(count)
            if scan < end and count < limit:
                _OBS_CONFLICT_CUTS.inc()
            elif gap_capped and count == limit:
                _OBS_GAP_FLUSHES.inc()

            with _OBS_SPAN("replay.wave", lines=count):
                # ---- one gather per wave: rows, stuck knowledge, aux bits.
                old_rows = array.read_rows(row_array)
                stuck_rows = self._stuck_rows(row_array)
                old_auxes = self._aux_store[row_array]
                sensed_rows = self._sensed_rows(old_rows, rows)
                contexts = [
                    LineContext.from_rows(
                        sensed_rows, words_per_line, bits_per_cell, stuck_rows, old_auxes, line
                    )
                    for line in range(count)
                ]
                encoded = self.encoder.encode_lines(
                    encrypted_chunk[index - start: scan - start], contexts
                )
                intended_rows = words_matrix_to_cells(
                    np.array([line.codewords for line in encoded], dtype=np.uint64),
                    self.config.word_bits,
                    bits_per_cell,
                ).reshape(count, array.cells_per_row)
                new_auxes = self._wave_aux_values(encoded)
                replay.row_indices[index:scan] = rows

                if stop is None and leveler is None:
                    # ---- whole-wave apply: with no early-stop predicate and no
                    # gap migrations pending, the distinct-row writes commute
                    # into one fancy-index scatter (write_rows_fast is
                    # bit-identical to looping write_row_fast in order).
                    _old, stored_rows, _changed, _saw, newly = array.write_rows_fast(
                        row_array, intended_rows
                    )
                    self._aux_store[row_array] = new_auxes
                    replay.newly_stuck_cells[index:scan] = newly
                    if repository is not None:
                        # observe_write is a no-op for rows whose stored cells
                        # all match; only mismatching rows carry discoveries.
                        for line in np.nonzero((stored_rows != intended_rows).any(axis=1))[0]:
                            repository.observe_write(
                                rows[line], intended_rows[line], stored_rows[line]
                            )
                    applied = count
                    performed = scan
                    self._flush_replay_accounting(
                        replay, index, performed, old_rows, stored_rows, intended_rows
                    )
                    self._flush_aux_energy(replay, index, performed, new_auxes, old_auxes)
                    index = scan
                    continue

                # ---- apply sequentially; accounting flushes once per wave.
                stored_rows = np.empty_like(old_rows)
                write_row_fast = array.write_row_fast
                applied = 0
                for line in range(count):
                    index_global = index + line
                    row_index = rows[line]
                    intended = intended_rows[line]
                    _old, stored, _changed, saw_mask, newly_stuck = write_row_fast(
                        row_index, intended
                    )
                    stored_rows[line] = stored
                    self._aux_store[row_index] = new_auxes[line]
                    replay.newly_stuck_cells[index_global] = newly_stuck
                    if repository is not None:
                        repository.observe_write(row_index, intended, stored)
                    if leveler is not None:
                        movement = leveler.record_write()
                        if movement is not None:
                            self._migrate_row(*movement)
                    applied = line + 1
                    performed = index_global + 1
                    if stop is not None:
                        saw_count = int(saw_mask.sum())
                        if saw_count:
                            wrong = stored ^ intended
                            saw_bits = (
                                popcount[wrong]
                                if bits_per_cell == 2
                                else (wrong != 0).astype(np.int64)
                            ).reshape(words_per_line, -1).sum(axis=1)
                        else:
                            saw_bits = zero_saw_bits
                        if stop(index_global, int(row_index), saw_count, saw_bits):
                            stopped = True
                            break
                self._flush_replay_accounting(
                    replay,
                    index,
                    performed,
                    old_rows[:applied],
                    stored_rows[:applied],
                    intended_rows[:applied],
                )
                self._flush_aux_energy(
                    replay, index, performed, new_auxes[:applied], old_auxes[:applied]
                )
                index = scan
        return performed, stopped

    def _wave_aux_values(self, encoded_lines: List[EncodedLine]) -> np.ndarray:
        """The wave's auxiliary values as a ``(lines, words)`` aux-store block."""
        rows = [encoded.auxes for encoded in encoded_lines]
        if self._wide_aux:
            return np.array(rows, dtype=object)
        return np.array(rows, dtype=np.int64)

    def _flush_aux_energy(
        self,
        replay: ReplayResult,
        lo: int,
        hi: int,
        new_auxes: np.ndarray,
        old_auxes: np.ndarray,
    ) -> None:
        """Auxiliary-bit write energy for applied wave writes ``[lo, hi)``.

        Charges the bits that changed between the stored and the new
        auxiliary values, exactly as :meth:`_apply_line_write` does per
        write (same popcounts, same float multiply).
        """
        if lo >= hi:
            return
        if self._wide_aux:
            for line in range(hi - lo):
                changed = sum(
                    bin(int(new) ^ int(old)).count("1")
                    for new, old in zip(new_auxes[line], old_auxes[line])
                )
                replay.aux_energy_pj[lo + line] = self._aux_bit_energy * changed
            return
        changed = popcount64_array(
            new_auxes.astype(np.uint64) ^ old_auxes.astype(np.uint64)
        ).sum(axis=1)
        replay.aux_energy_pj[lo:hi] = self._aux_bit_energy * changed

    def _sensed_view(self, old_row: np.ndarray, row_index: int) -> np.ndarray:
        """The old-row state the encoder observes for one read-before-write.

        With no fault model (or a zero flip rate) this is ``old_row``
        itself.  Under a transient model each read of a row draws its own
        seeded stream keyed by ``(row, nth-read-of-row)``: the number of
        mis-sensed cells is binomial in the flip rate, the read corrector
        (when present) repairs reads within its budget, and only escaped
        flips reach the returned copy.  The true ``old_row`` is never
        mutated — accounting stays on the real array state.
        """
        if self._sense_counts is None or self._sense_seed is None:
            return old_row
        count = int(self._sense_counts[row_index])
        self._sense_counts[row_index] = count + 1
        rng = make_rng(derive_seed(self._sense_seed, f"{row_index}:{count}"), "sense")
        cells = old_row.shape[0]
        flips = int(rng.binomial(cells, self._read_flip_rate))
        if flips == 0:
            return old_row
        positions = rng.choice(cells, size=flips, replace=False)
        _OBS_TRANSIENT_FLIPS.inc(flips)
        if self.read_corrector is not None:
            # Each mis-sensed cell is one wrong bit (the flip toggles the
            # low bit of the cell's symbol); bucket them per word and ask
            # the corrector whether its budget covers the read.
            cells_per_word = cells // self.config.words_per_line
            wrong_bits_per_word = np.bincount(
                positions // cells_per_word, minlength=self.config.words_per_line
            )
            if self.read_corrector.row_outcome(wrong_bits_per_word.tolist()).correctable:
                _OBS_TRANSIENT_CORRECTED.inc()
                return old_row
        _OBS_TRANSIENT_ESCAPED.inc()
        sensed = old_row.copy()
        sensed[positions] ^= 1
        return sensed

    def _sensed_rows(self, old_rows: np.ndarray, rows: List[int]) -> np.ndarray:
        """Wave sibling of :meth:`_sensed_view` over distinct rows.

        Rows within a wave are pairwise distinct, so perturbing each
        gathered row once — in wave order — consumes exactly the per-row
        streams a sequential scalar replay of the same writes would, which
        keeps wave and scalar encoder inputs bit-identical.
        """
        if self._sense_counts is None:
            return old_rows
        sensed = old_rows.copy()
        for line, row_index in enumerate(rows):
            sensed[line] = self._sensed_view(old_rows[line], row_index)
        return sensed

    def _stuck_rows(self, row_indices: np.ndarray) -> Optional[np.ndarray]:
        """The stuck masks the encoder may see for a wave of rows."""
        if self.fault_knowledge == "oracle":
            return self.array.stuck_rows(row_indices)
        if self.fault_knowledge == "discovered":
            return np.stack(
                [self.fault_repository.stuck_mask(int(row)) for row in row_indices]
            )
        return None

    def _replay_generic_scalar(
        self,
        replay: ReplayResult,
        plaintext_for: Callable[[int], List[int]],
        addresses: np.ndarray,
        start: int,
        end: int,
        stop: Optional[ReplayStop],
    ):
        """Per-write fallback of :meth:`_replay_generic` (odd word widths).

        Runs when no batched ciphertext chunk exists; each write encrypts
        scalar-wise and runs the identical :meth:`_apply_line_write` core.
        """
        encryption = self.encryption
        performed = start
        stopped = False
        for index in range(start, end):
            words = plaintext_for(index)
            if encryption is not None:
                encrypted = list(
                    encryption.encrypt_line(int(addresses[index]), words).words
                )
            else:
                encrypted = [int(w) for w in words]
            (
                row_index,
                data_energy,
                aux_energy,
                cells_changed,
                bits_changed,
                saw_count,
                saw_bits,
                newly_stuck,
            ) = self._apply_line_write(int(addresses[index]), encrypted)
            replay.addresses[index] = addresses[index]
            replay.row_indices[index] = row_index
            replay.data_energy_pj[index] = data_energy
            replay.aux_energy_pj[index] = aux_energy
            replay.cells_changed[index] = cells_changed
            replay.bits_changed[index] = bits_changed
            replay.saw_cells[index] = saw_count
            replay.saw_bits_per_word[index] = saw_bits
            replay.newly_stuck_cells[index] = newly_stuck

            performed = index + 1
            if stop is not None and stop(index, row_index, saw_count, saw_bits):
                stopped = True
                break
        return performed, stopped

    # -------------------------------------------------------- random lines
    def write_random_lines(
        self,
        num_lines: int,
        rng: np.random.Generator,
        address_space: Optional[int] = None,
    ) -> ReplayResult:
        """Write ``num_lines`` uniformly random lines to random addresses.

        The batched sibling of the scalar random-line loop (one
        ``rng.integers`` address draw plus one :func:`repro.utils.bitops.random_word`
        per word, then :meth:`write_line`): line data is drawn in chunks
        with the *exact same generator call sequence* — so the addresses
        and words are bit-identical to the scalar loop's — and driven
        through :meth:`replay_trace`'s internals: chunked counter-mode
        pads, the identity-encoder fast path for the unencoded baselines,
        and per-write accounting in the preallocated arrays of a
        :class:`ReplayResult`.  Controller state (array contents,
        encryption counters, auxiliary bits, wear) after the call matches
        the scalar sequence exactly, so scalar and batched drives can
        interleave.

        Parameters
        ----------
        num_lines:
            Number of random lines to write.
        rng:
            Source generator for addresses and line data (the caller owns
            the seeding; pass a fresh ``make_rng(seed, label)`` stream for
            reproducible studies).
        address_space:
            Addresses are drawn uniformly from ``[0, address_space)``;
            defaults to the array's row count.
        """
        if num_lines < 0:
            raise ConfigurationError("num_lines must be non-negative")
        if address_space is None:
            address_space = self.array.rows
        if address_space <= 0:
            raise ConfigurationError("address_space must be positive")
        words_per_line = self.config.words_per_line
        replay = ReplayResult.empty(num_lines, words_per_line)
        if num_lines == 0:
            return replay._trim(0, False)

        # Chunked like replay_trace: pads and cell conversions are only
        # produced for a bounded window of writes at a time, with the same
        # geometric ramp.  There is no early-stop predicate here (the
        # random-line studies always run to completion), so no counter
        # rollback is ever needed.
        addresses = np.empty(num_lines, dtype=np.int64)
        chunk = 512
        start = 0
        performed = 0
        while start < num_lines:
            end = min(start + chunk, num_lines)
            chunk = min(chunk * 2, 8192)
            chunk_addresses, plaintext = self._draw_random_lines(
                rng, end - start, address_space
            )
            addresses[start:end] = chunk_addresses
            encrypted_chunk: Optional[np.ndarray] = None
            if isinstance(plaintext, np.ndarray):
                if self.encryption is None:
                    encrypted_chunk = plaintext
                else:
                    encrypted_chunk = self.encryption.encrypt_lines(
                        chunk_addresses, plaintext
                    )
            if encrypted_chunk is not None and self.encoder.is_identity:
                performed, _ = self._replay_identity(
                    replay, addresses, encrypted_chunk, start, end, None
                )
            else:
                def plaintext_for(index: int, _base=start, _rows=plaintext) -> List[int]:
                    return [int(word) for word in _rows[index - _base]]

                performed, _ = self._replay_generic(
                    replay, plaintext_for, addresses, encrypted_chunk, start, end, None
                )
            start = end
        replay._trim(performed, False)
        self.stats.absorb(replay.write_stats())
        return replay

    def _draw_random_lines(
        self, rng: np.random.Generator, count: int, address_space: int
    ):
        """Draw ``count`` random (address, line) pairs from ``rng``.

        Consumes the generator with the exact call sequence of the scalar
        oracle loop — per line one ``integers(0, address_space)`` draw
        followed by the per-word chunk draws of
        :func:`repro.utils.bitops.random_word` — so a batched drive sees
        the same addresses and words a :meth:`write_line` loop would.  The
        word-chunk draws are vectorised per line (one ``integers`` call
        covering all words), which numpy fills sequentially and therefore
        stream-identically to the scalar calls.

        Returns ``(addresses, words)`` with ``words`` a
        ``(count, words_per_line)`` ``uint64`` matrix when the word width
        fits, else a list of per-line Python-int word lists.
        """
        word_bits = self.config.word_bits
        words_per_line = self.config.words_per_line
        chunk_widths = []
        remaining = word_bits
        while remaining > 0:
            width = min(remaining, 32)
            chunk_widths.append(width)
            remaining -= width
        addresses = np.empty(count, dtype=np.int64)
        if word_bits <= 64 and len(set(chunk_widths)) == 1:
            width = chunk_widths[0]
            chunks_per_word = len(chunk_widths)
            draws_per_line = words_per_line * chunks_per_word
            high = 1 << width
            draws = np.empty((count, draws_per_line), dtype=np.uint64)
            for line in range(count):
                addresses[line] = rng.integers(0, address_space)
                draws[line] = rng.integers(0, high, size=draws_per_line)
            if chunks_per_word == 1:
                return addresses, draws
            # random_word draws the most significant chunk first.
            shaped = draws.reshape(count, words_per_line, chunks_per_word)
            words = np.zeros((count, words_per_line), dtype=np.uint64)
            for position in range(chunks_per_word):
                words = (words << np.uint64(width)) | shaped[:, :, position]
            return addresses, words
        # Mixed chunk widths (word_bits not a multiple of 32) or words
        # wider than uint64: fall back to the scalar word generator.
        lines = []
        for line in range(count):
            addresses[line] = rng.integers(0, address_space)
            lines.append([random_word(rng, word_bits) for _ in range(words_per_line)])
        if word_bits <= 64:
            return addresses, np.array(lines, dtype=np.uint64)
        return addresses, lines

    # ---------------------------------------------------------------- read
    def read_line(self, address: int) -> List[int]:
        """Read, decode, and decrypt one cache line.

        Stuck-at-wrong cells propagate into the returned plaintext exactly
        as they would in hardware; callers compare against the written data
        to measure residual corruption.
        """
        row_index = self.row_for_address(address)
        row_cells = self.array.read_row(row_index)
        codewords = cells_matrix_to_words(
            row_cells.reshape(self.config.words_per_line, -1), self.array.bits_per_cell
        )
        decoded_words = self.encoder.decode_line(codewords, self._aux_store[row_index])
        if self.encryption is None:
            return decoded_words
        counter = self.encryption.counter_for(address)
        pad = self.encryption.pad_words(address, counter)
        mask = (1 << self.config.word_bits) - 1
        return [(w ^ p) & mask for w, p in zip(decoded_words, pad)]

    # ------------------------------------------------------------ internals
    def _stuck_knowledge(self, row_index: int) -> Optional[np.ndarray]:
        """The stuck-cell mask the encoder is allowed to see for this row."""
        if self.fault_knowledge == "oracle":
            return self.array.stuck_info(row_index)
        if self.fault_knowledge == "discovered":
            return self.fault_repository.stuck_mask(row_index)
        return None

    def _migrate_row(self, source_row: int, destination_row: int) -> None:
        """Copy one row for a Start-Gap movement (a genuine, wearing write)."""
        contents = self.array.read_row(source_row)
        result = self.array.write_row(destination_row, contents)
        self.stats.rows_written += 1
        self.stats.cells_changed += result.cells_changed
        self.stats.bits_changed += self._count_changed_bits(result.old_cells, result.stored_cells)
        self.stats.data_energy_pj += float(
            self._energy_lut[  # repro: allow[NUM001] reason=migration writes reuse the scalar-oracle gather above; fresh C-contiguous result, parity-locked by the Start-Gap integration tests
                result.old_cells.astype(np.int64), result.intended_cells.astype(np.int64)
            ].sum()
        )
        # The migration write can itself land on stuck destination cells;
        # its SAW outcome counts like any other row write.
        saw_bits = self._saw_bits_per_word(result.stored_cells, result.intended_cells)
        self.stats.saw_cells += result.saw_count
        self.stats.saw_words += int(np.count_nonzero(saw_bits))
        # The auxiliary bits of the migrated row travel with the data and
        # are rewritten in the side region: charge the bits that change.
        old_dest_auxes = self._aux_store[destination_row]
        moved_auxes = self._aux_store[source_row]
        if self._wide_aux:
            changed_aux_bits = sum(
                bin(int(new) ^ int(old)).count("1")
                for new, old in zip(moved_auxes, old_dest_auxes)
            )
        else:
            changed_aux_bits = int(
                popcount64_array(
                    moved_auxes.astype(np.uint64) ^ old_dest_auxes.astype(np.uint64)
                ).sum()
            )
        self.stats.aux_energy_pj += self._aux_bit_energy * changed_aux_bits
        self._aux_store[destination_row] = moved_auxes
        if self.fault_repository is not None:
            self.fault_repository.observe_write(
                destination_row, result.intended_cells, result.stored_cells
            )

    def _count_changed_bits(self, old_cells: np.ndarray, new_cells: np.ndarray) -> int:
        xor = old_cells ^ new_cells
        if self.array.bits_per_cell == 1:
            return int(np.count_nonzero(xor))
        return int(self._bit_popcount[xor].sum())  # repro: allow[NUM001] reason=integer popcount accumulation is exact at any reduction order

    def _saw_bits_per_word(
        self, stored_cells: np.ndarray, intended_cells: np.ndarray
    ) -> np.ndarray:
        """Residual wrong bits per word of a row write, as an int64 vector."""
        xor = stored_cells ^ intended_cells
        wrong_bits = (
            self._bit_popcount[xor]
            if self.array.bits_per_cell == 2
            else (xor != 0).astype(np.int64)
        )
        return wrong_bits.reshape(self.config.words_per_line, -1).sum(axis=1)

    def _accumulate(self, line: LineWriteResult) -> None:
        self.stats.add_line(line, self.config.words_per_line)
