"""The memory controller: encrypt, encode, write, and the inverse read path.

The controller owns the per-line write counters (via the counter-mode
engine), the per-word auxiliary bits produced by the encoder, and the
accounting of write energy / bit changes / stuck-at-wrong cells.  It is the
single integration point the simulators drive: one
:meth:`MemoryController.write_line` call per trace record.

The write path is line-granular end to end: each write issues a single
:meth:`repro.coding.base.Encoder.encode_line` call (vectorised for every
builtin technique), auxiliary bits live in a preallocated
``(rows, words_per_line)`` array, and the energy / SAW accounting is
computed with NumPy over the whole row.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.coding.base import (
    Encoder,
    LineContext,
    cells_matrix_to_words,
    words_matrix_to_cells,
)
from repro.crypto.counter_mode import CounterModeEngine
from repro.errors import ConfigurationError, MemoryModelError
from repro.memctrl.config import ControllerConfig
from repro.pcm.array import PCMArray
from repro.pcm.cell import CellTechnology
from repro.pcm.energy import DEFAULT_MLC_ENERGY, DEFAULT_SLC_ENERGY, MLCEnergyModel, SLCEnergyModel
from repro.pcm.faultrepo import FaultRepository
from repro.pcm.stats import WriteStats
from repro.pcm.wearlevel import StartGapWearLeveler
from repro.utils.bitops import popcount64_array

__all__ = ["LineWriteResult", "MemoryController"]

#: Accepted values for the controller's ``fault_knowledge`` parameter.
FAULT_KNOWLEDGE_MODES = ("oracle", "discovered", "none")


@dataclass(frozen=True)
class LineWriteResult:
    """Accounting for one cache-line write.

    Attributes
    ----------
    address:
        Line address written.
    row_index:
        Array row the line mapped to.
    data_energy_pj / aux_energy_pj:
        Write energy spent on the data cells and on the auxiliary bits.
    cells_changed / bits_changed:
        How many cells (and bits) actually changed state in the array.
    saw_cells:
        Stuck-at-wrong cells left after encoding (cells whose stored value
        differs from the intended codeword value).
    saw_bits_per_word:
        Per-word count of wrong *bits*, used by the ECC substrates to judge
        whether the row is still recoverable.
    newly_stuck_cells:
        Cells that exceeded their endurance during this write.
    """

    address: int
    row_index: int
    data_energy_pj: float
    aux_energy_pj: float
    cells_changed: int
    bits_changed: int
    saw_cells: int
    saw_bits_per_word: Tuple[int, ...]
    newly_stuck_cells: int

    @property
    def total_energy_pj(self) -> float:
        """Total energy of the line write including auxiliary bits."""
        return self.data_energy_pj + self.aux_energy_pj


class MemoryController:
    """Drives the encrypt -> encode -> write pipeline against a PCM array.

    Parameters
    ----------
    array:
        Target :class:`repro.pcm.array.PCMArray`.
    encoder:
        Word-level encoding technique (any :class:`repro.coding.base.Encoder`).
    config:
        Line/word geometry and whether encryption is enabled.
    encryption:
        Counter-mode engine; created on demand when ``config.encrypt`` and
        none is supplied.
    mlc_energy / slc_energy:
        Energy models used for *accounting* the writes that actually happen
        (independent of whatever cost function the encoder optimises).
    use_fault_context:
        Backwards-compatible switch: ``False`` is equivalent to
        ``fault_knowledge="none"``.
    fault_knowledge:
        How the encoder learns about stuck cells: ``"oracle"`` (the array's
        ground truth, the paper's assumption of an ideal fault repository),
        ``"discovered"`` (a :class:`repro.pcm.faultrepo.FaultRepository`
        populated by write-verify mismatches), or ``"none"``.
    wear_leveler:
        Optional Start-Gap wear leveler.  When present, line addresses are
        first mapped to logical rows and then rotated onto physical rows;
        the array must provide ``wear_leveler.physical_rows_required`` rows.
    """

    def __init__(
        self,
        array: PCMArray,
        encoder: Encoder,
        config: Optional[ControllerConfig] = None,
        encryption: Optional[CounterModeEngine] = None,
        mlc_energy: MLCEnergyModel = DEFAULT_MLC_ENERGY,
        slc_energy: SLCEnergyModel = DEFAULT_SLC_ENERGY,
        use_fault_context: bool = True,
        fault_knowledge: Optional[str] = None,
        wear_leveler: Optional[StartGapWearLeveler] = None,
    ):
        self.config = config or ControllerConfig()
        if array.word_bits != self.config.word_bits:
            raise ConfigurationError("array word size does not match controller config")
        if array.row_bits != self.config.line_bits:
            raise ConfigurationError(
                "controller assumes one cache line per array row "
                f"(line {self.config.line_bits} bits vs row {array.row_bits} bits)"
            )
        if encoder.word_bits != self.config.word_bits:
            raise ConfigurationError("encoder word size does not match controller config")
        if encoder.technology is not array.technology:
            raise ConfigurationError("encoder and array cell technologies differ")
        self.array = array
        self.encoder = encoder
        self.mlc_energy = mlc_energy
        self.slc_energy = slc_energy
        if fault_knowledge is None:
            fault_knowledge = "oracle" if use_fault_context else "none"
        if fault_knowledge not in FAULT_KNOWLEDGE_MODES:
            raise ConfigurationError(
                f"fault_knowledge must be one of {FAULT_KNOWLEDGE_MODES}, got {fault_knowledge!r}"
            )
        self.fault_knowledge = fault_knowledge
        self.use_fault_context = fault_knowledge != "none"
        self.fault_repository = (
            FaultRepository(array.rows, array.cells_per_row)
            if fault_knowledge == "discovered"
            else None
        )
        self.wear_leveler = wear_leveler
        if wear_leveler is not None and array.rows < wear_leveler.physical_rows_required:
            raise ConfigurationError(
                "the array must provide at least "
                f"{wear_leveler.physical_rows_required} rows for Start-Gap "
                f"wear leveling, got {array.rows}"
            )
        if self.config.encrypt:
            self.encryption = encryption or CounterModeEngine(
                line_bits=self.config.line_bits, word_bits=self.config.word_bits
            )
        else:
            self.encryption = None
        self.stats = WriteStats()
        # Auxiliary bits stored per (row, word); modelled as living in a
        # dedicated side region (the SECDED-budget bits of Section V).
        # Techniques with >= 64 auxiliary bits per word don't fit int64 and
        # fall back to Python ints in an object array.
        self._wide_aux = encoder.aux_bits >= 64
        if self._wide_aux:
            self._aux_store = np.zeros(
                (array.rows, self.config.words_per_line), dtype=object
            )
        else:
            self._aux_store = np.zeros(
                (array.rows, self.config.words_per_line), dtype=np.int64
            )
        self._bit_popcount = np.array([0, 1, 1, 2], dtype=np.int64)
        self._energy_lut = (
            self.mlc_energy.lut()
            if array.technology is CellTechnology.MLC
            else np.array(
                [
                    [0.0, self.slc_energy.set_energy_pj],
                    [self.slc_energy.reset_energy_pj, 0.0],
                ]
            )
        )
        self._aux_bit_energy = (
            self.mlc_energy.aux_bit_energy_pj
            if array.technology is CellTechnology.MLC
            else self.slc_energy.aux_bit_energy_pj
        )

    # ------------------------------------------------------------- mapping
    def row_for_address(self, address: int) -> int:
        """Map a line address onto a physical array row.

        Without wear leveling this is a direct modulo mapping; with
        Start-Gap enabled the logical row is additionally rotated onto its
        current physical position.
        """
        if address < 0:
            raise MemoryModelError("addresses must be non-negative")
        if self.wear_leveler is None:
            return address % self.array.rows
        logical = address % self.wear_leveler.rows
        return self.wear_leveler.physical_row(logical)

    # --------------------------------------------------------------- write
    def write_line(self, address: int, plaintext_words: Sequence[int]) -> LineWriteResult:
        """Encrypt, encode, and write one cache line."""
        if address < 0:
            raise MemoryModelError("addresses must be non-negative")
        words = list(plaintext_words)
        if len(words) != self.config.words_per_line:
            raise ConfigurationError(
                f"expected {self.config.words_per_line} words per line, got {len(words)}"
            )
        if self.encryption is not None:
            encrypted = list(self.encryption.encrypt_line(address, words).words)
        else:
            encrypted = [int(w) for w in words]

        row_index = self.row_for_address(address)
        old_row = self.array.read_row(row_index)
        stuck_row = self._stuck_knowledge(row_index)
        words_per_line = self.config.words_per_line

        old_auxes = self._aux_store[row_index].copy()
        context = LineContext.from_row(
            old_row,
            words_per_line,
            bits_per_cell=self.array.bits_per_cell,
            stuck_mask=stuck_row,
            old_auxes=old_auxes,
        )
        encoded = self.encoder.encode_line(encrypted, context)
        intended_row = words_matrix_to_cells(
            np.array(encoded.codewords, dtype=np.uint64)
            if self.config.word_bits <= 64
            else list(encoded.codewords),
            self.config.word_bits,
            self.array.bits_per_cell,
        ).reshape(-1)
        if self._wide_aux:
            new_auxes = np.array(encoded.auxes, dtype=object)
            changed_aux_bits = sum(
                bin(int(new) ^ int(old)).count("1")
                for new, old in zip(encoded.auxes, old_auxes)
            )
        else:
            new_auxes = np.array(encoded.auxes, dtype=np.int64)
            changed_aux_bits = int(
                popcount64_array(
                    new_auxes.astype(np.uint64) ^ old_auxes.astype(np.uint64)
                ).sum()
            )
        aux_energy = self._aux_bit_energy * changed_aux_bits

        result = self.array.write_row(row_index, intended_row)
        data_energy = float(
            self._energy_lut[old_row.astype(np.int64), intended_row.astype(np.int64)].sum()
        )
        bits_changed = self._count_changed_bits(result.old_cells, result.stored_cells)
        saw_bits_per_word = self._saw_bits_per_word(result.stored_cells, intended_row)

        self._aux_store[row_index] = new_auxes

        if self.fault_repository is not None:
            # The write-verify step exposes cells that did not take the
            # intended value; record them for the next write to this row.
            self.fault_repository.observe_write(row_index, intended_row, result.stored_cells)
        if self.wear_leveler is not None:
            movement = self.wear_leveler.record_write()
            if movement is not None:
                self._migrate_row(*movement)

        line_result = LineWriteResult(
            address=address,
            row_index=row_index,
            data_energy_pj=data_energy,
            aux_energy_pj=aux_energy,
            cells_changed=result.cells_changed,
            bits_changed=bits_changed,
            saw_cells=result.saw_count,
            saw_bits_per_word=saw_bits_per_word,
            newly_stuck_cells=result.newly_stuck,
        )
        self._accumulate(line_result)
        return line_result

    # ---------------------------------------------------------------- read
    def read_line(self, address: int) -> List[int]:
        """Read, decode, and decrypt one cache line.

        Stuck-at-wrong cells propagate into the returned plaintext exactly
        as they would in hardware; callers compare against the written data
        to measure residual corruption.
        """
        row_index = self.row_for_address(address)
        row_cells = self.array.read_row(row_index)
        codewords = cells_matrix_to_words(
            row_cells.reshape(self.config.words_per_line, -1), self.array.bits_per_cell
        )
        decoded_words = self.encoder.decode_line(codewords, self._aux_store[row_index])
        if self.encryption is None:
            return decoded_words
        counter = self.encryption.counter_for(address)
        pad = self.encryption.pad_words(address, counter)
        mask = (1 << self.config.word_bits) - 1
        return [(w ^ p) & mask for w, p in zip(decoded_words, pad)]

    # ------------------------------------------------------------ internals
    def _stuck_knowledge(self, row_index: int) -> Optional[np.ndarray]:
        """The stuck-cell mask the encoder is allowed to see for this row."""
        if self.fault_knowledge == "oracle":
            return self.array.stuck_info(row_index)
        if self.fault_knowledge == "discovered":
            return self.fault_repository.stuck_mask(row_index)
        return None

    def _migrate_row(self, source_row: int, destination_row: int) -> None:
        """Copy one row for a Start-Gap movement (a genuine, wearing write)."""
        contents = self.array.read_row(source_row)
        result = self.array.write_row(destination_row, contents)
        self.stats.rows_written += 1
        self.stats.cells_changed += result.cells_changed
        self.stats.bits_changed += self._count_changed_bits(result.old_cells, result.stored_cells)
        self.stats.data_energy_pj += float(
            self._energy_lut[
                result.old_cells.astype(np.int64), result.intended_cells.astype(np.int64)
            ].sum()
        )
        # The auxiliary bits of the migrated row travel with the data.
        self._aux_store[destination_row] = self._aux_store[source_row]
        if self.fault_repository is not None:
            self.fault_repository.observe_write(
                destination_row, result.intended_cells, result.stored_cells
            )

    def _count_changed_bits(self, old_cells: np.ndarray, new_cells: np.ndarray) -> int:
        xor = old_cells ^ new_cells
        if self.array.bits_per_cell == 1:
            return int(np.count_nonzero(xor))
        return int(self._bit_popcount[xor].sum())

    def _saw_bits_per_word(
        self, stored_cells: np.ndarray, intended_cells: np.ndarray
    ) -> Tuple[int, ...]:
        xor = stored_cells ^ intended_cells
        wrong_bits = (
            self._bit_popcount[xor]
            if self.array.bits_per_cell == 2
            else (xor != 0).astype(np.int64)
        )
        per_word = wrong_bits.reshape(self.config.words_per_line, -1).sum(axis=1)
        return tuple(int(count) for count in per_word)

    def _accumulate(self, line: LineWriteResult) -> None:
        self.stats.add_line(line, self.config.words_per_line)
