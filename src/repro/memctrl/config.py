"""Configuration of the memory-controller model."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["ControllerConfig"]


@dataclass(frozen=True)
class ControllerConfig:
    """Static parameters of the write path.

    Attributes
    ----------
    line_bits:
        Cache-line size in bits (512 in the paper).
    word_bits:
        Encoding granularity (64 in the paper, 32 supported).
    encrypt:
        Whether the counter-mode encryption unit is in the path.  Disabling
        it models the unencrypted systems the motivation section compares
        against.
    """

    line_bits: int = 512
    word_bits: int = 64
    encrypt: bool = True

    def __post_init__(self) -> None:
        if self.line_bits <= 0 or self.word_bits <= 0:
            raise ConfigurationError("line_bits and word_bits must be positive")
        if self.line_bits % self.word_bits != 0:
            raise ConfigurationError("line_bits must be a multiple of word_bits")

    @property
    def words_per_line(self) -> int:
        """Number of encoder words per cache line."""
        return self.line_bits // self.word_bits
