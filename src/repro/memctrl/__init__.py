"""Memory-controller model: the encrypt -> encode -> write pipeline of Fig. 4.

:class:`~repro.memctrl.controller.MemoryController` ties the substrates
together: dirty cache lines arrive from the LLC, are encrypted by the
counter-mode unit, split into words, encoded by the configured technique
(with read-modify-write context from the PCM array), written into the
array, and accounted for (energy, bit changes, stuck-at-wrong cells).
Reads run the inverse pipeline: decode with the stored auxiliary bits,
then decrypt with the stored counter.
"""

from repro.memctrl.config import ControllerConfig
from repro.memctrl.controller import LineWriteResult, MemoryController, ReplayResult

__all__ = ["ControllerConfig", "LineWriteResult", "MemoryController", "ReplayResult"]
