"""Process-local metrics: named counters, gauges, and histograms.

Mirrors the decorator-driven registries of the encoders
(:mod:`repro.coding.registry`), the campaign task kinds
(:mod:`repro.campaign.tasks`), and the analysis rules
(:mod:`repro.analysis.registry`): an instrumented module registers its
metrics once at import time and holds on to the returned handle::

    from repro import obs

    _OBS_WAVES = obs.counter("replay.waves", "encode waves executed")

    def _replay_generic(...):
        _OBS_WAVES.inc()

Handles are registered in the process-local :data:`REGISTRY` keyed by
name; registering the same name twice returns the same handle (so a
module re-import cannot double-count), while registering it as a
different metric kind is a configuration error.  The
:func:`~MetricsRegistry.snapshot` /
:func:`~MetricsRegistry.merge` pair is what carries worker-side
measurements back to the campaign coordinator: a worker snapshots its
registry after each task and the engine merges the payload into the main
process, so ``run_campaign`` can report cache hits, wave counts, and pad
chunks no matter where they were incremented.

Metric updates are plain attribute arithmetic on ``__slots__`` objects —
cheap enough to stay enabled permanently.  The instrumented hot paths
only touch them at wave/chunk/task granularity, and
``benchmarks/bench_obs_overhead.py`` enforces that the whole disabled-mode
telemetry layer costs the replay engine less than 2%.
"""

from __future__ import annotations

import functools
import sys
from typing import Any, Callable, Dict, List, Optional, TypeVar, Union

from repro.errors import ConfigurationError
from repro.obs.clock import monotonic

if sys.version_info >= (3, 10):
    from typing import ParamSpec
else:  # pragma: no cover - the package requires >= 3.10
    from typing_extensions import ParamSpec

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
    "merge_metrics",
    "metrics_snapshot",
    "reset_metrics",
    "timed",
]

_P = ParamSpec("_P")
_T = TypeVar("_T")


class Counter:
    """Monotonically increasing count of events (waves, cache hits, ...)."""

    kind = "counter"
    __slots__ = ("name", "description", "value")

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        self.value += amount

    def reset(self) -> None:
        """Zero the counter."""
        self.value = 0

    def to_snapshot(self) -> Dict[str, Any]:
        """JSON-serialisable state of the counter."""
        return {"kind": self.kind, "value": self.value}

    def merge(self, payload: Dict[str, Any]) -> None:
        """Absorb a snapshot produced by another process's counter."""
        self.value += int(payload.get("value", 0))

    def is_zero(self) -> bool:
        """True when the metric carries no observations yet."""
        return self.value == 0


class Gauge:
    """Last-observed value of a quantity (e.g. the latest early-stop index)."""

    kind = "gauge"
    __slots__ = ("name", "description", "value")

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        """Record the current value of the gauge."""
        self.value = float(value)

    def reset(self) -> None:
        """Forget the recorded value."""
        self.value = None

    def to_snapshot(self) -> Dict[str, Any]:
        """JSON-serialisable state of the gauge."""
        return {"kind": self.kind, "value": self.value}

    def merge(self, payload: Dict[str, Any]) -> None:
        """Absorb a snapshot: the incoming observation (if any) wins."""
        value = payload.get("value")
        if value is not None:
            self.value = float(value)

    def is_zero(self) -> bool:
        """True when the metric carries no observations yet."""
        return self.value is None


class Histogram:
    """Streaming summary (count / total / min / max) of observed values."""

    kind = "histogram"
    __slots__ = ("name", "description", "count", "total", "min", "max")

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def reset(self) -> None:
        """Forget every observation."""
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    @property
    def mean(self) -> Optional[float]:
        """Mean of the observations, or None before the first one."""
        return self.total / self.count if self.count else None

    def to_snapshot(self) -> Dict[str, Any]:
        """JSON-serialisable state of the histogram."""
        return {
            "kind": self.kind,
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    def merge(self, payload: Dict[str, Any]) -> None:
        """Absorb a snapshot produced by another process's histogram."""
        self.count += int(payload.get("count", 0))
        self.total += float(payload.get("total", 0.0))
        for bound, better in (("min", min), ("max", max)):
            incoming = payload.get(bound)
            if incoming is None:
                continue
            current = getattr(self, bound)
            setattr(
                self,
                bound,
                float(incoming) if current is None else better(current, float(incoming)),
            )

    def is_zero(self) -> bool:
        """True when the metric carries no observations yet."""
        return self.count == 0


Metric = Union[Counter, Gauge, Histogram]

_KINDS: Dict[str, type] = {
    Counter.kind: Counter,
    Gauge.kind: Gauge,
    Histogram.kind: Histogram,
}


class _NullCounter(Counter):
    """A counter that ignores updates (stand-in for overhead benchmarks)."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null", "no-op counter")

    def inc(self, amount: int = 1) -> None:
        """Ignore the update."""


class _NullGauge(Gauge):
    """A gauge that ignores updates (stand-in for overhead benchmarks)."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null", "no-op gauge")

    def set(self, value: float) -> None:
        """Ignore the update."""


class _NullHistogram(Histogram):
    """A histogram that ignores updates (stand-in for overhead benchmarks)."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null", "no-op histogram")

    def observe(self, value: float) -> None:
        """Ignore the update."""


#: Shared no-op handles; ``bench_obs_overhead.py`` swaps the instrumented
#: modules' ``_OBS_*`` globals for these to measure the cost of the real
#: (enabled-but-idle) handles against a true no-op.
NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Process-local, name-keyed home of every registered metric."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    # ---------------------------------------------------------- registration
    def _register(self, kind: str, name: str, description: str) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if existing.kind != kind:
                raise ConfigurationError(
                    f"metric {name!r} is already registered as a "
                    f"{existing.kind}, not a {kind}"
                )
            return existing
        metric = _KINDS[kind](name, description)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, description: str = "") -> Counter:
        """Get-or-create the counter registered under ``name``."""
        metric = self._register(Counter.kind, name, description)
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str, description: str = "") -> Gauge:
        """Get-or-create the gauge registered under ``name``."""
        metric = self._register(Gauge.kind, name, description)
        assert isinstance(metric, Gauge)
        return metric

    def histogram(self, name: str, description: str = "") -> Histogram:
        """Get-or-create the histogram registered under ``name``."""
        metric = self._register(Histogram.kind, name, description)
        assert isinstance(metric, Histogram)
        return metric

    # --------------------------------------------------------------- queries
    def get(self, name: str) -> Metric:
        """The metric registered under ``name`` (raises when unknown)."""
        metric = self._metrics.get(name)
        if metric is None:
            raise ConfigurationError(
                f"unknown metric {name!r}; registered: {', '.join(self.names())}"
            )
        return metric

    def names(self) -> List[str]:
        """Sorted names of every registered metric."""
        return sorted(self._metrics)

    def describe(self) -> Dict[str, str]:
        """Metric name -> description, for glossaries and ``--list`` output."""
        return {name: self._metrics[name].description for name in self.names()}

    # ------------------------------------------------------- snapshot / merge
    def snapshot(self, include_zero: bool = False) -> Dict[str, Dict[str, Any]]:
        """JSON-serialisable state of every metric.

        Zero-valued metrics are dropped unless ``include_zero`` so worker
        payloads and ``BENCH_*.json`` records stay small; a merge treats a
        missing metric as zero anyway.
        """
        return {
            name: self._metrics[name].to_snapshot()
            for name in self.names()
            if include_zero or not self._metrics[name].is_zero()
        }

    def merge(self, snapshot: Dict[str, Dict[str, Any]]) -> None:
        """Absorb a :meth:`snapshot` from another process's registry.

        Counters and histogram summaries add; gauges take the incoming
        observation.  Metrics not registered locally yet are created from
        the payload's recorded kind, so a coordinator aggregates metrics
        of task kinds it never imported itself.
        """
        for name in sorted(snapshot):
            payload = snapshot[name]
            kind = payload.get("kind")
            if kind not in _KINDS:
                raise ConfigurationError(
                    f"metric snapshot entry {name!r} has unknown kind {kind!r}"
                )
            self._register(kind, name, "").merge(payload)

    def reset(self) -> None:
        """Zero every registered metric (workers do this between tasks)."""
        for name in self.names():
            self._metrics[name].reset()


#: The process-local registry every instrumented module registers into.
REGISTRY = MetricsRegistry()


def counter(name: str, description: str = "") -> Counter:
    """Register (or fetch) a counter in the process registry."""
    return REGISTRY.counter(name, description)


def gauge(name: str, description: str = "") -> Gauge:
    """Register (or fetch) a gauge in the process registry."""
    return REGISTRY.gauge(name, description)


def histogram(name: str, description: str = "") -> Histogram:
    """Register (or fetch) a histogram in the process registry."""
    return REGISTRY.histogram(name, description)


def metrics_snapshot(include_zero: bool = False) -> Dict[str, Dict[str, Any]]:
    """Snapshot of the process registry (see :meth:`MetricsRegistry.snapshot`)."""
    return REGISTRY.snapshot(include_zero=include_zero)


def merge_metrics(snapshot: Dict[str, Dict[str, Any]]) -> None:
    """Merge a worker-side snapshot into the process registry."""
    REGISTRY.merge(snapshot)


def reset_metrics() -> None:
    """Zero every metric in the process registry."""
    REGISTRY.reset()


def timed(
    name: str, description: str = ""
) -> Callable[[Callable[_P, _T]], Callable[_P, _T]]:
    """Decorator registering a histogram and timing every call into it.

    The registration happens at decoration time — importing the module is
    what makes the metric appear, exactly like ``@register_encoder`` /
    ``@register_task`` / ``@register_rule`` make their subjects
    resolvable::

        @obs.timed("store.put_s", "seconds spent persisting task results")
        def put(self, task, rows): ...
    """
    metric = histogram(name, description)

    def decorator(function: Callable[_P, _T]) -> Callable[_P, _T]:
        @functools.wraps(function)
        def wrapper(*args: _P.args, **kwargs: _P.kwargs) -> _T:
            begin = monotonic()
            try:
                return function(*args, **kwargs)
            finally:
                metric.observe(monotonic() - begin)

        return wrapper

    return decorator
