"""The sanctioned clock of the instrumentation layer.

Every timing measurement in library code routes through this module so
the OBS001 analysis rule can hold the rest of ``src/repro`` to a single
discipline: wall-clock values never leak into results (DET003), and
hot-path timings always land in the aggregatable telemetry layer instead
of ad-hoc ``time.perf_counter()`` deltas.

:func:`monotonic` reads ``CLOCK_MONOTONIC``, which on every supported
platform is shared between processes on the same host — the campaign
executors rely on that to subtract a worker-side timestamp from a
coordinator-side one (queue-wait and result-transfer times).
"""

from __future__ import annotations

import time

__all__ = ["monotonic"]


def monotonic() -> float:
    """Seconds on the host-wide monotonic clock (comparable across processes)."""
    return time.monotonic()  # repro: allow[DET003,OBS001] reason=repro.obs is the sanctioned clock; every value stays in telemetry and never reaches a result row or a seed
