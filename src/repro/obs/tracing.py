"""Span tracing: structured JSONL trace events with parent/child nesting.

Off by default.  When disabled, :func:`span` returns a shared no-op
context manager — entering and leaving it is two attribute-free method
calls and zero allocation, so the replay kernel pays essentially nothing
(``benchmarks/bench_obs_overhead.py`` holds the line at <2%).

When enabled (:func:`enable_tracing`, ``--trace`` on the campaign CLI,
or the ``REPRO_TRACE`` environment variable), every completed span
appends one JSON object per line to the trace file::

    {"name": "replay.wave", "pid": 1234, "span": "1234:7",
     "parent": "1234:6", "start_s": 12.001, "end_s": 12.003,
     "attrs": {"lines": 14}}

Timestamps come from :func:`repro.obs.clock.monotonic`
(``CLOCK_MONOTONIC`` is host-wide, so coordinator and worker spans share
one time base).  Span ids are ``"{pid}:{sequence}"`` and the parent is
whatever span is open in the same process, so nesting reconstructs even
when campaign workers interleave their writes.  Each event is written
with a single ``os.write`` on an ``O_APPEND`` descriptor — POSIX makes
such appends atomic with respect to each other, so concurrent worker
processes cannot tear each other's lines.  The descriptor is lazily
re-opened per pid so forked workers never share a file object.
"""

from __future__ import annotations

import json
import os
from types import TracebackType
from typing import Any, Dict, List, Optional, Type

from repro.obs.clock import monotonic

__all__ = [
    "Span",
    "disable_tracing",
    "emit_span",
    "enable_tracing",
    "span",
    "trace_path",
    "tracing_enabled",
]

#: Environment variable carrying the trace path into spawned workers.
TRACE_ENV_VAR = "REPRO_TRACE"

_trace_path: Optional[str] = None
_trace_fd: Optional[int] = None
_trace_fd_pid: Optional[int] = None
# Stack of open span ids in this process; the top is the parent of the
# next span.  Reset lazily on fork via the pid check in _write_event.
_span_stack: List[str] = []
_span_stack_pid: Optional[int] = None
_span_sequence = 0


def _configured_path() -> Optional[str]:
    """The active trace path: explicit enable wins, then the env var."""
    if _trace_path is not None:
        return _trace_path
    path = os.environ.get(TRACE_ENV_VAR)
    return path if path else None


def tracing_enabled() -> bool:
    """True when spans are being recorded in this process."""
    return _configured_path() is not None


def trace_path() -> Optional[str]:
    """The file currently receiving trace events, or None when disabled."""
    return _configured_path()


def enable_tracing(path: str) -> None:
    """Start appending span events to ``path`` (and to spawned workers).

    The path is exported via ``REPRO_TRACE`` so worker processes created
    with the *spawn* start method inherit the setting; forked workers
    inherit the module state directly.
    """
    global _trace_path
    _trace_path = os.fspath(path)
    os.environ[TRACE_ENV_VAR] = _trace_path
    _close_fd()


def disable_tracing() -> None:
    """Stop recording spans and release the trace file descriptor."""
    global _trace_path
    _trace_path = None
    os.environ.pop(TRACE_ENV_VAR, None)
    _close_fd()


def _close_fd() -> None:
    global _trace_fd, _trace_fd_pid
    if _trace_fd is not None and _trace_fd_pid == os.getpid():
        os.close(_trace_fd)
    _trace_fd = None
    _trace_fd_pid = None


def _write_event(event: Dict[str, Any]) -> None:
    global _trace_fd, _trace_fd_pid
    path = _configured_path()
    if path is None:
        return
    pid = os.getpid()
    if _trace_fd is None or _trace_fd_pid != pid:
        # A descriptor opened before fork must not be shared: each
        # process gets its own O_APPEND descriptor keyed by pid.
        _trace_fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        _trace_fd_pid = pid
    line = json.dumps(event, separators=(",", ":"), sort_keys=True) + "\n"
    os.write(_trace_fd, line.encode("utf-8"))


def _stack() -> List[str]:
    global _span_stack, _span_stack_pid
    pid = os.getpid()
    if _span_stack_pid != pid:
        # Forked child: open spans belong to the parent process.
        _span_stack = []
        _span_stack_pid = pid
    return _span_stack


def _next_span_id() -> str:
    global _span_sequence
    _span_sequence += 1
    return f"{os.getpid()}:{_span_sequence}"


class Span:
    """An open trace span; records one JSONL event when it closes."""

    __slots__ = ("name", "attrs", "span_id", "parent_id", "start_s")

    def __init__(self, name: str, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        stack = _stack()
        self.parent_id = stack[-1] if stack else None
        self.span_id = _next_span_id()
        stack.append(self.span_id)
        self.start_s = monotonic()

    def set(self, **attrs: Any) -> None:
        """Attach (or overwrite) attributes on the open span."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        end_s = monotonic()
        stack = _stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        event: Dict[str, Any] = {
            "name": self.name,
            "pid": os.getpid(),
            "span": self.span_id,
            "parent": self.parent_id,
            "start_s": self.start_s,
            "end_s": end_s,
        }
        if exc_type is not None:
            event["error"] = exc_type.__name__
        if self.attrs:
            event["attrs"] = self.attrs
        _write_event(event)


class _NullSpan:
    """Shared no-op span handed out whenever tracing is disabled."""

    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        """Ignore the attributes."""

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        return None


_NULL_SPAN = _NullSpan()


def span(name: str, **attrs: Any) -> Any:
    """Open a trace span: ``with obs.span("replay.wave", lines=n): ...``.

    Returns the shared no-op span when tracing is disabled, so the call
    costs one dict check and no allocation on the hot path.
    """
    if _configured_path() is None:
        return _NULL_SPAN
    return Span(name, attrs)


def emit_span(
    name: str, start_s: float, end_s: float, **attrs: Any
) -> None:
    """Record an already-measured interval as a span event.

    Used for phases whose endpoints were stamped elsewhere (executor
    queue-wait and result-transfer times span two processes).  The event
    parents under whatever span is currently open in this process.
    """
    if _configured_path() is None:
        return
    stack = _stack()
    event: Dict[str, Any] = {
        "name": name,
        "pid": os.getpid(),
        "span": _next_span_id(),
        "parent": stack[-1] if stack else None,
        "start_s": start_s,
        "end_s": end_s,
    }
    if attrs:
        event["attrs"] = attrs
    _write_event(event)
