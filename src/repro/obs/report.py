"""Roll a JSONL span trace up into a run report.

``python -m repro.obs report <trace.jsonl>`` renders the text form;
``--json`` emits the same rollup as a machine-readable object.  The
report answers the two questions the campaign-scaling work needs:

* **Where does time go?** — every span name is aggregated into count /
  total / self-time (total minus the time covered by child spans), and
  the top spans are ranked by self-time.
* **What does the executor cost?** — ``campaign.task`` spans carry the
  per-phase breakdown stamped by the executors (queue-wait, dispatch,
  compute, result-transfer); the report sums them into an *executor
  overhead* fraction (everything except compute) and a *phase coverage*
  fraction (how much of each task's measured wall time the four phases
  explain — the acceptance floor is 90%).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, TextIO

from repro.errors import ConfigurationError

__all__ = ["build_report", "load_trace", "render_text"]

#: Executor phases stamped on ``campaign.task`` spans, in pipeline order.
TASK_PHASES = ("queue_wait_s", "dispatch_s", "compute_s", "transfer_s")

#: Zero-duration resilience markers the campaign runtime emits: batch
#: re-queues, tasks surrendered after exhausting retries, and corrupt
#: store objects quarantined aside.
RESILIENCE_EVENTS = ("campaign.retry", "campaign.degraded", "store.quarantine")


def load_trace(path: str) -> List[Dict[str, Any]]:
    """Parse a JSONL trace file into a list of span events."""
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as error:
                raise ConfigurationError(
                    f"{path}:{lineno}: not a JSON trace event: {error}"
                ) from error
            if not isinstance(event, dict) or "name" not in event:
                raise ConfigurationError(
                    f"{path}:{lineno}: trace event must be an object with a name"
                )
            events.append(event)
    return events


def _duration(event: Dict[str, Any]) -> float:
    return max(0.0, float(event["end_s"]) - float(event["start_s"]))


def _aggregate_spans(events: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Per-name rollup with self-time (duration minus child durations)."""
    child_time: Dict[str, float] = {}
    for event in events:
        parent = event.get("parent")
        if parent is not None:
            child_time[parent] = child_time.get(parent, 0.0) + _duration(event)

    rollup: Dict[str, Dict[str, Any]] = {}
    for event in events:
        name = str(event["name"])
        duration = _duration(event)
        self_s = max(0.0, duration - child_time.get(event.get("span", ""), 0.0))
        entry = rollup.setdefault(
            name,
            {
                "name": name,
                "count": 0,
                "total_s": 0.0,
                "self_s": 0.0,
                "max_s": 0.0,
                "errors": 0,
            },
        )
        entry["count"] += 1
        entry["total_s"] += duration
        entry["self_s"] += self_s
        entry["max_s"] = max(entry["max_s"], duration)
        if "error" in event:
            entry["errors"] += 1
    ranked = sorted(
        rollup.values(), key=lambda entry: (-entry["self_s"], entry["name"])
    )
    for entry in ranked:
        entry["mean_s"] = entry["total_s"] / entry["count"]
    return ranked


def _aggregate_tasks(events: List[Dict[str, Any]]) -> Optional[Dict[str, Any]]:
    """Executor phase breakdown over the ``campaign.task`` spans."""
    phases = {phase: 0.0 for phase in TASK_PHASES}
    wall_s = 0.0
    tasks = 0
    cached = 0
    batches = set()
    for event in events:
        if event.get("name") != "campaign.task":
            continue
        attrs = event.get("attrs") or {}
        if attrs.get("cached"):
            cached += 1
            continue
        tasks += 1
        wall_s += _duration(event)
        if attrs.get("batch") is not None:
            batches.add((event.get("pid"), int(attrs["batch"])))
        for phase in TASK_PHASES:
            value = attrs.get(phase)
            if value is not None:
                phases[phase] += float(value)
    if tasks == 0:
        return None
    covered_s = sum(phases.values())
    overhead_s = covered_s - phases["compute_s"]
    return {
        "tasks": tasks,
        "cached": cached,
        "batches": len(batches),
        "wall_s": wall_s,
        "phases_s": phases,
        "covered_s": covered_s,
        "coverage_fraction": covered_s / wall_s if wall_s > 0 else 0.0,
        "overhead_s": overhead_s,
        "overhead_fraction": overhead_s / wall_s if wall_s > 0 else 0.0,
    }


def _aggregate_resilience(events: List[Dict[str, Any]]) -> Optional[Dict[str, Any]]:
    """Count the resilience markers; ``None`` on a clean trace."""
    counts = {name: 0 for name in RESILIENCE_EVENTS}
    timeouts = 0
    for event in events:
        name = event.get("name")
        if name in counts:
            counts[str(name)] += 1
            if name == "campaign.retry":
                attrs = event.get("attrs") or {}
                if attrs.get("reason") == "timeout":
                    timeouts += 1
    if not any(counts.values()):
        return None
    return {
        "retries": counts["campaign.retry"],
        "timeout_retries": timeouts,
        "degraded": counts["campaign.degraded"],
        "quarantined": counts["store.quarantine"],
    }


def build_report(events: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate trace events into the report object rendered below."""
    report: Dict[str, Any] = {
        "events": len(events),
        "processes": len({event.get("pid") for event in events}),
        "spans": _aggregate_spans(events),
    }
    if events:
        report["wall_s"] = max(float(e["end_s"]) for e in events) - min(
            float(e["start_s"]) for e in events
        )
    tasks = _aggregate_tasks(events)
    if tasks is not None:
        report["executor"] = tasks
    resilience = _aggregate_resilience(events)
    if resilience is not None:
        report["resilience"] = resilience
    return report


def _fmt_s(seconds: float) -> str:
    return f"{seconds * 1e3:.2f}ms" if seconds < 1.0 else f"{seconds:.3f}s"


def render_text(report: Dict[str, Any], stream: TextIO, top: int = 10) -> None:
    """Write the human-readable report to ``stream``."""
    wall = report.get("wall_s")
    header = f"trace: {report['events']} events, {report['processes']} processes"
    if wall is not None:
        header += f", {_fmt_s(wall)} wall"
    print(header, file=stream)

    spans = report["spans"]
    if spans:
        print(f"\ntop spans by self-time (of {len(spans)}):", file=stream)
        width = max(len(entry["name"]) for entry in spans[:top])
        for entry in spans[:top]:
            line = (
                f"  {entry['name']:<{width}}  count={entry['count']:<6d}"
                f" self={_fmt_s(entry['self_s']):>10}"
                f" total={_fmt_s(entry['total_s']):>10}"
                f" mean={_fmt_s(entry['mean_s']):>10}"
            )
            if entry["errors"]:
                line += f" errors={entry['errors']}"
            print(line, file=stream)

    executor = report.get("executor")
    if executor is not None:
        phases = executor["phases_s"]
        batches = executor.get("batches") or 0
        batched = ""
        if batches:
            batched = (
                f" in {batches} batches"
                f" (mean {executor['tasks'] / batches:.1f} tasks/batch)"
            )
        print(
            f"\nexecutor: {executor['tasks']} executed tasks"
            f" ({executor['cached']} cached){batched}, {_fmt_s(executor['wall_s'])}"
            " summed task wall time",
            file=stream,
        )
        for phase in TASK_PHASES:
            share = phases[phase] / executor["wall_s"] if executor["wall_s"] else 0.0
            print(
                f"  {phase[:-2].replace('_', '-'):<15}"
                f" {_fmt_s(phases[phase]):>10}  ({share * 100.0:5.1f}%)",
                file=stream,
            )
        print(
            f"executor overhead: {executor['overhead_fraction'] * 100.0:.1f}%"
            " of task wall time spent outside compute"
            " (queue-wait + dispatch + result-transfer)",
            file=stream,
        )
        print(
            f"phase coverage: {executor['coverage_fraction'] * 100.0:.1f}%"
            " of measured task wall time explained by the four phases",
            file=stream,
        )

    resilience = report.get("resilience")
    if resilience is not None:
        print(
            f"\nresilience: {resilience['retries']} retries"
            f" ({resilience['timeout_retries']} after timeouts),"
            f" {resilience['degraded']} tasks degraded to failure rows,"
            f" {resilience['quarantined']} corrupt store objects quarantined",
            file=stream,
        )
