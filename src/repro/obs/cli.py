"""``python -m repro.obs`` — telemetry command line.

Usage::

    python -m repro.obs report trace.jsonl              # text rollup
    python -m repro.obs report trace.jsonl --format json
    python -m repro.obs report trace.jsonl --top 20
    python -m repro.obs metrics                         # metric glossary

Exit codes: 0 — report rendered; 2 — configuration error (unreadable or
malformed trace file).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.errors import ConfigurationError
from repro.obs.metrics import REGISTRY
from repro.obs.report import build_report, load_trace, render_text

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The telemetry CLI's argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Run-telemetry reports for the repro codebase.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    report = commands.add_parser(
        "report", help="roll a JSONL span trace up into a run report"
    )
    report.add_argument("trace", help="trace file written by --trace / REPRO_TRACE")
    report.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    report.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="span names to list in the self-time ranking (default: 10)",
    )

    commands.add_parser(
        "metrics",
        help="list the metrics registered by the instrumented modules",
    )
    return parser


def _run_report(trace: str, output_format: str, top: int) -> int:
    events = load_trace(trace)
    report = build_report(events)
    if output_format == "json":
        json.dump(report, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        render_text(report, sys.stdout, top=top)
    return 0


def _run_metrics() -> int:
    # Importing the instrumented packages is what registers their
    # metrics — same lazy pattern as the analysis rule modules.
    import repro.campaign  # noqa: F401
    import repro.coding  # noqa: F401
    import repro.crypto.counter_mode  # noqa: F401
    import repro.memctrl.controller  # noqa: F401

    for name, description in REGISTRY.describe().items():
        kind = REGISTRY.get(name).kind
        print(f"{name:<32} {kind:<10} {description}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "report":
            return _run_report(args.trace, args.format, args.top)
        return _run_metrics()
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
