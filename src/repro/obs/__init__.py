"""``repro.obs`` — run telemetry: metrics, span tracing, and reports.

The observability layer of the reproduction.  Three pieces:

* **Metrics** (:mod:`repro.obs.metrics`): a process-local registry of
  named counters / gauges / histograms.  Instrumented modules register
  handles at import time (``_OBS_WAVES = obs.counter(...)``) and bump
  them on the hot path; campaign workers snapshot their registry per
  task and the engine merges the payloads, so a run summary can report
  wave counts and cache hits no matter which process produced them.
* **Tracing** (:mod:`repro.obs.tracing`): ``with obs.span("replay.wave",
  lines=n):`` appends structured JSONL events with monotonic timestamps
  and parent/child nesting.  Off by default — the disabled path is a
  shared no-op object, enforced <2% on ``bench_trace_replay`` by
  ``benchmarks/bench_obs_overhead.py``.
* **Reports** (:mod:`repro.obs.report`): ``python -m repro.obs report
  trace.jsonl`` rolls a trace up into top-spans-by-self-time and the
  executor phase breakdown (queue-wait / dispatch / compute /
  result-transfer) that the campaign-scaling work keys off.

Telemetry never feeds back into simulation results: every clock read
goes through :func:`repro.obs.clock.monotonic` (the OBS001 analysis
rule enforces this for the rest of ``src/repro``) and campaign rows are
bit-identical with tracing on or off.
"""

from repro.obs.clock import monotonic
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    REGISTRY,
    counter,
    gauge,
    histogram,
    merge_metrics,
    metrics_snapshot,
    reset_metrics,
    timed,
)
from repro.obs.report import build_report, load_trace, render_text
from repro.obs.tracing import (
    Span,
    disable_tracing,
    emit_span,
    enable_tracing,
    span,
    trace_path,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "REGISTRY",
    "Span",
    "build_report",
    "counter",
    "disable_tracing",
    "emit_span",
    "enable_tracing",
    "gauge",
    "histogram",
    "load_trace",
    "merge_metrics",
    "metrics_snapshot",
    "monotonic",
    "render_text",
    "reset_metrics",
    "span",
    "timed",
    "trace_path",
    "tracing_enabled",
]
