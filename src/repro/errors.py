"""Exception hierarchy for the ``repro`` package.

Every error raised intentionally by the library derives from
:class:`ReproError` so callers can catch library failures without also
swallowing programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """An object was constructed with inconsistent or invalid parameters."""


class EncodingError(ReproError):
    """A coset/ECC encoder could not encode or decode a block."""


class MemoryModelError(ReproError):
    """The PCM array, fault map, or endurance model was used incorrectly."""


class TraceError(ReproError):
    """A workload trace is malformed or inconsistent with the memory model."""


class SimulationError(ReproError):
    """An experiment or simulator was driven with invalid inputs."""


class WorkerCrashError(SimulationError):
    """A campaign worker process died (pool broken) and retries ran out.

    Raised instead of the raw ``BrokenProcessPool`` so callers see which
    batch was in flight and how much of the sweep had already completed
    (everything completed is persisted — a rerun resumes from the store).
    """

    def __init__(self, message: str, batch_index: int = -1, completed: int = 0):
        super().__init__(message)
        self.batch_index = batch_index
        self.completed = completed


class UncorrectableError(ReproError):
    """An ECC substrate was presented with more errors than it can correct.

    Carries the syndrome / error positions observed so lifetime simulations
    can record the failure rather than silently mis-correcting.
    """

    def __init__(self, message: str, positions: tuple = ()):  # noqa: D401
        super().__init__(message)
        self.positions = tuple(positions)
