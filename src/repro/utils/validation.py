"""Argument-validation helpers used by public constructors.

These helpers raise :class:`repro.errors.ConfigurationError` with a
descriptive message so misconfigured experiments fail loudly and early.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ConfigurationError

__all__ = [
    "require",
    "require_divisible",
    "require_in_range",
    "require_power_of_two",
]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigurationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ConfigurationError(message)


def require_power_of_two(value: int, name: str) -> None:
    """Require ``value`` to be a positive power of two."""
    if value <= 0 or (value & (value - 1)) != 0:
        raise ConfigurationError(f"{name} must be a positive power of two, got {value}")


def require_divisible(numerator: int, denominator: int, message: str) -> None:
    """Require ``numerator`` to be an exact multiple of ``denominator``."""
    if denominator == 0 or numerator % denominator != 0:
        raise ConfigurationError(message)


def require_in_range(value: Any, low: Any, high: Any, name: str) -> None:
    """Require ``low <= value <= high``."""
    if not (low <= value <= high):
        raise ConfigurationError(f"{name} must be in [{low}, {high}], got {value}")
