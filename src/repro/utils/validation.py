"""Argument-validation helpers used by public constructors.

These helpers raise :class:`repro.errors.ConfigurationError` with a
descriptive message so misconfigured experiments fail loudly and early.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Type, Union

from repro.errors import ConfigurationError, ReproError

__all__ = [
    "json_payload",
    "require",
    "require_divisible",
    "require_in_range",
    "require_power_of_two",
]


def json_payload(
    source: Union[str, Path],
    error_cls: Type[ReproError] = ConfigurationError,
    what: str = "payload",
) -> Any:
    """Load JSON from a payload string or a path to a JSON file.

    ``source`` strings starting with ``{`` are treated as the payload
    itself; anything else is read as a file path.  Invalid JSON raises
    ``error_cls`` (a :class:`ReproError` subclass) naming ``what``.
    Shared by the serialisable containers (`SweepSpec.from_json`,
    `ResultTable.from_json`) so the sniffing rules cannot diverge.
    """
    if isinstance(source, Path) or not str(source).lstrip().startswith("{"):
        text = Path(source).read_text(encoding="utf-8")
    else:
        text = str(source)
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise error_cls(f"{what} is not valid JSON: {exc}") from exc


def require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigurationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ConfigurationError(message)


def require_power_of_two(value: int, name: str) -> None:
    """Require ``value`` to be a positive power of two."""
    if value <= 0 or (value & (value - 1)) != 0:
        raise ConfigurationError(f"{name} must be a positive power of two, got {value}")


def require_divisible(numerator: int, denominator: int, message: str) -> None:
    """Require ``numerator`` to be an exact multiple of ``denominator``."""
    if denominator == 0 or numerator % denominator != 0:
        raise ConfigurationError(message)


def require_in_range(value: Any, low: Any, high: Any, name: str) -> None:
    """Require ``low <= value <= high``."""
    if not (low <= value <= high):
        raise ConfigurationError(f"{name} must be in [{low}, {high}], got {value}")
