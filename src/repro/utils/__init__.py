"""Low-level helpers shared by every subsystem.

The module groups three concerns:

* :mod:`repro.utils.bitops` — bit- and symbol-level manipulation of memory
  words (popcounts, partitioning, Gray-coded MLC symbol extraction).
* :mod:`repro.utils.rng` — deterministic random-number helpers so every
  experiment in the repository is reproducible from a seed.
* :mod:`repro.utils.validation` — small argument-checking helpers used by
  public constructors.
"""

from repro.utils.bitops import (
    POPCOUNT16,
    bits_to_int,
    concat_subblocks,
    hamming_distance,
    hamming_weight,
    int_to_bits,
    interleave_planes,
    merge_symbols,
    popcount64_array,
    random_word,
    split_subblocks,
    split_symbols,
    split_planes,
    to_uint64_array,
)
from repro.utils.rng import UnseededRNGWarning, derive_seed, make_rng, spawn_rngs
from repro.utils.validation import (
    require,
    require_divisible,
    require_in_range,
    require_power_of_two,
)

__all__ = [
    "POPCOUNT16",
    "UnseededRNGWarning",
    "bits_to_int",
    "concat_subblocks",
    "derive_seed",
    "hamming_distance",
    "hamming_weight",
    "int_to_bits",
    "interleave_planes",
    "make_rng",
    "merge_symbols",
    "popcount64_array",
    "random_word",
    "require",
    "require_divisible",
    "require_in_range",
    "require_power_of_two",
    "spawn_rngs",
    "split_planes",
    "split_subblocks",
    "split_symbols",
    "to_uint64_array",
]
