"""Bit- and symbol-level helpers for fixed-width memory words.

All encoders in this repository operate on fixed-width data blocks (the
paper uses 64-bit words split into 16-bit sub-blocks, and 2-bit Gray-coded
MLC symbols).  The helpers here keep that arithmetic in one place:

* words are plain Python ``int`` values at API boundaries;
* bulk simulation paths use ``numpy`` arrays of ``uint64`` and a 16-bit
  popcount lookup table (:data:`POPCOUNT16`) for speed;
* MLC words are viewed either as a sequence of 2-bit symbols
  (:func:`split_symbols`) or as two bitplanes — the "left" (most
  significant) digit plane and the "right" (least significant) digit plane
  (:func:`split_planes`) — which is how Section IV-B of the paper applies
  VCC to multi-level cells.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "POPCOUNT16",
    "bits_to_int",
    "concat_subblocks",
    "hamming_distance",
    "hamming_weight",
    "int_to_bits",
    "interleave_planes",
    "interleave_planes_array",
    "merge_symbols",
    "popcount64_array",
    "random_word",
    "split_planes",
    "split_planes_array",
    "split_subblocks",
    "split_symbols",
    "to_uint64_array",
]

#: Lookup table mapping every 16-bit value to its population count.  Used to
#: vectorise Hamming-weight computations over ``uint64`` arrays.
POPCOUNT16: np.ndarray = np.array(
    [bin(value).count("1") for value in range(1 << 16)], dtype=np.uint8
)


def mask(width: int) -> int:
    """Return an all-ones mask of ``width`` bits."""
    if width < 0:
        raise ConfigurationError(f"mask width must be non-negative, got {width}")
    return (1 << width) - 1


def hamming_weight(value: int) -> int:
    """Return the number of '1' bits in a non-negative integer."""
    if value < 0:
        raise ConfigurationError(f"hamming_weight expects a non-negative value, got {value}")
    return bin(value).count("1")


def hamming_distance(a: int, b: int) -> int:
    """Return the number of bit positions in which ``a`` and ``b`` differ."""
    return hamming_weight(a ^ b)


def popcount64_array(words: np.ndarray) -> np.ndarray:
    """Vectorised popcount of an array of ``uint64`` words.

    Parameters
    ----------
    words:
        Array of unsigned 64-bit integers (any shape).

    Returns
    -------
    numpy.ndarray
        Array of the same shape holding the per-word popcount as ``uint8``
        promoted to ``int64`` for safe summation.
    """
    words = np.asarray(words, dtype=np.uint64)
    if hasattr(np, "bitwise_count"):  # numpy >= 2.0: hardware popcount
        return np.bitwise_count(words).astype(np.int64)
    total = np.zeros(words.shape, dtype=np.int64)
    for shift in (0, 16, 32, 48):
        chunk = (words >> np.uint64(shift)) & np.uint64(0xFFFF)
        total += POPCOUNT16[chunk.astype(np.uint32)]
    return total


def to_uint64_array(words: Iterable[int]) -> np.ndarray:
    """Convert an iterable of Python ints (each < 2**64) to a uint64 array."""
    out = np.fromiter((int(w) & 0xFFFFFFFFFFFFFFFF for w in words), dtype=np.uint64)
    return out


def int_to_bits(value: int, width: int) -> List[int]:
    """Return ``width`` bits of ``value``, most-significant bit first."""
    if value < 0 or value >= (1 << width):
        raise ConfigurationError(
            f"value {value} does not fit in {width} bits"
        )
    return [(value >> (width - 1 - i)) & 1 for i in range(width)]


def bits_to_int(bits: Sequence[int]) -> int:
    """Inverse of :func:`int_to_bits`: interpret ``bits`` MSB-first."""
    value = 0
    for bit in bits:
        if bit not in (0, 1):
            raise ConfigurationError(f"bits must be 0 or 1, got {bit!r}")
        value = (value << 1) | bit
    return value


def split_subblocks(value: int, width: int, sub_width: int) -> List[int]:
    """Split a ``width``-bit word into ``width // sub_width`` sub-blocks.

    Sub-block 0 holds the *most significant* bits, matching the layout of
    Fig. 3 in the paper where ``d0`` is the left-most partition of ``D``.
    """
    if width % sub_width != 0:
        raise ConfigurationError(
            f"block width {width} is not a multiple of sub-block width {sub_width}"
        )
    if value < 0 or value >= (1 << width):
        raise ConfigurationError(f"value {value} does not fit in {width} bits")
    count = width // sub_width
    sub_mask = mask(sub_width)
    return [
        (value >> (sub_width * (count - 1 - index))) & sub_mask
        for index in range(count)
    ]


def concat_subblocks(subblocks: Sequence[int], sub_width: int) -> int:
    """Inverse of :func:`split_subblocks` (sub-block 0 is most significant)."""
    sub_mask = mask(sub_width)
    value = 0
    for block in subblocks:
        if block < 0 or block > sub_mask:
            raise ConfigurationError(
                f"sub-block {block} does not fit in {sub_width} bits"
            )
        value = (value << sub_width) | block
    return value


def split_symbols(value: int, width: int) -> List[int]:
    """View a word as a sequence of 2-bit MLC symbols, MSB pair first.

    A ``width``-bit word holds ``width // 2`` symbols; symbol 0 occupies the
    two most significant bits.  Each symbol is returned as an integer in
    ``[0, 3]`` whose high bit is the "left" digit and low bit the "right"
    digit in the paper's terminology.
    """
    if width % 2 != 0:
        raise ConfigurationError(f"MLC words need an even bit width, got {width}")
    return split_subblocks(value, width, 2)


def merge_symbols(symbols: Sequence[int]) -> int:
    """Inverse of :func:`split_symbols`."""
    return concat_subblocks(symbols, 2)


def split_planes(value: int, width: int) -> Tuple[int, int]:
    """Split an MLC word into its (left, right) digit bitplanes.

    Returns a pair ``(left_plane, right_plane)`` of ``width // 2``-bit
    integers.  Bit ``k`` (MSB-first) of each plane is the corresponding
    digit of symbol ``k``.  This is the decomposition used by the MLC mode
    of VCC: the right plane is encoded, the left plane seeds the kernel
    generator (Section IV-B).
    """
    symbols = split_symbols(value, width)
    left = 0
    right = 0
    for symbol in symbols:
        left = (left << 1) | ((symbol >> 1) & 1)
        right = (right << 1) | (symbol & 1)
    return left, right


#: Magic masks of the classic Morton-decode bit compaction: after the k-th
#: step, the bits originally at even positions occupy contiguous groups of
#: 2^k bits.  Used to split whole arrays of MLC words into bitplanes.
_EVEN_BIT_MASKS = (
    (1, 0x3333333333333333),
    (2, 0x0F0F0F0F0F0F0F0F),
    (4, 0x00FF00FF00FF00FF),
    (8, 0x0000FFFF0000FFFF),
    (16, 0x00000000FFFFFFFF),
)


def _compact_even_bits(values: np.ndarray) -> np.ndarray:
    """Gather the bits at even positions of each uint64 into the low half."""
    out = values & np.uint64(0x5555555555555555)
    for shift, mask in _EVEN_BIT_MASKS:
        out = (out | (out >> np.uint64(shift))) & np.uint64(mask)
    return out


def split_planes_array(words: np.ndarray, width: int) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorised :func:`split_planes` over an array of ``uint64`` words.

    Returns ``(left, right)`` arrays of ``width // 2``-bit plane values,
    bit-compatible with the scalar helper: bit ``k`` (MSB-first) of each
    plane is the corresponding digit of symbol ``k``.
    """
    if width % 2 != 0 or width > 64:
        raise ConfigurationError(
            f"split_planes_array needs an even width of at most 64 bits, got {width}"
        )
    values = np.asarray(words, dtype=np.uint64)
    right = _compact_even_bits(values)
    left = _compact_even_bits(values >> np.uint64(1))
    return left, right


def interleave_planes(left: int, right: int, width: int) -> int:
    """Inverse of :func:`split_planes`.

    ``width`` is the full word width in bits (so each plane is
    ``width // 2`` bits).
    """
    if width % 2 != 0:
        raise ConfigurationError(f"MLC words need an even bit width, got {width}")
    half = width // 2
    if left < 0 or left >= (1 << half) or right < 0 or right >= (1 << half):
        raise ConfigurationError("bitplane value does not fit in width // 2 bits")
    value = 0
    for index in range(half):
        shift = half - 1 - index
        left_bit = (left >> shift) & 1
        right_bit = (right >> shift) & 1
        value = (value << 2) | (left_bit << 1) | right_bit
    return value


#: Magic masks of the classic Morton-encode bit spreading (inverse of
#: :data:`_EVEN_BIT_MASKS`): after the k-th step, contiguous groups of
#: 2^(4-k) bits sit at their even-position targets.
_SPREAD_BIT_MASKS = (
    (16, 0x0000FFFF0000FFFF),
    (8, 0x00FF00FF00FF00FF),
    (4, 0x0F0F0F0F0F0F0F0F),
    (2, 0x3333333333333333),
    (1, 0x5555555555555555),
)


def _spread_to_even_bits(values: np.ndarray) -> np.ndarray:
    """Scatter the low 32 bits of each uint64 onto the even positions."""
    out = values & np.uint64(0xFFFFFFFF)
    for shift, mask in _SPREAD_BIT_MASKS:
        out = (out | (out << np.uint64(shift))) & np.uint64(mask)
    return out


def interleave_planes_array(
    left: np.ndarray, right: np.ndarray, width: int
) -> np.ndarray:
    """Vectorised :func:`interleave_planes` over arrays of plane values.

    ``width`` is the full word width in bits (each plane holds
    ``width // 2`` bits); the result is bit-compatible with the scalar
    helper.
    """
    if width % 2 != 0 or width > 64:
        raise ConfigurationError(
            f"interleave_planes_array needs an even width of at most 64 bits, got {width}"
        )
    left = np.asarray(left, dtype=np.uint64)
    right = np.asarray(right, dtype=np.uint64)
    half = np.uint64(width // 2)
    if bool(((left >> half) != 0).any()) or bool(((right >> half) != 0).any()):
        raise ConfigurationError("bitplane value does not fit in width // 2 bits")
    return (_spread_to_even_bits(left) << np.uint64(1)) | _spread_to_even_bits(right)


def random_word(rng: np.random.Generator, width: int = 64) -> int:
    """Draw a uniformly random ``width``-bit word from ``rng``."""
    if width <= 0:
        raise ConfigurationError(f"word width must be positive, got {width}")
    value = 0
    remaining = width
    while remaining > 0:
        chunk = min(remaining, 32)
        value = (value << chunk) | int(rng.integers(0, 1 << chunk))
        remaining -= chunk
    return value
