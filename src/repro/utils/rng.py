"""Deterministic random-number helpers.

Every experiment in the repository is seeded.  To avoid accidentally
correlated streams (for example, the fault map reusing the same draws as
the workload generator) the helpers here derive independent child seeds
from a parent seed and a textual label using ``numpy``'s ``SeedSequence``.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Sequence, Union

import numpy as np

__all__ = ["derive_seed", "make_rng", "spawn_rngs"]

SeedLike = Union[int, None]


def derive_seed(parent_seed: int, label: str) -> int:
    """Derive a deterministic 63-bit child seed from a parent seed and label.

    The derivation hashes ``(parent_seed, label)`` with SHA-256, so distinct
    labels give independent streams and the mapping is stable across runs
    and platforms.
    """
    digest = hashlib.sha256(f"{parent_seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFFFFFFFFFFFFFF


def make_rng(seed: SeedLike = None, label: Optional[str] = None) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        Parent seed.  ``None`` produces a non-deterministic generator, which
        is acceptable for exploratory use but every experiment entry point
        passes an explicit seed.
    label:
        Optional label mixed into the seed via :func:`derive_seed` so that
        different subsystems sharing one experiment seed still receive
        independent streams.
    """
    if seed is None:
        return np.random.default_rng()
    if label is not None:
        seed = derive_seed(int(seed), label)
    return np.random.default_rng(int(seed))


def spawn_rngs(seed: int, labels: Sequence[str]) -> List[np.random.Generator]:
    """Create one independent generator per label from a single parent seed."""
    return [make_rng(seed, label) for label in labels]
