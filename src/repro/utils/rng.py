"""Deterministic random-number helpers.

Every experiment in the repository is seeded.  To avoid accidentally
correlated streams (for example, the fault map reusing the same draws as
the workload generator) the helpers here derive independent child seeds
from a parent seed and a textual label using ``numpy``'s ``SeedSequence``.

This module is the one sanctioned home of ``np.random.default_rng``: the
``DET001`` static-analysis rule (:mod:`repro.analysis`) forbids direct
generator construction everywhere else, and ``DET005`` forbids unseeded
:func:`make_rng` calls in experiment and campaign code.  Unseeded use
outside those paths stays possible for exploration, but it is loud — the
first ``make_rng(None)`` of a process emits an :class:`UnseededRNGWarning`.
"""

from __future__ import annotations

import hashlib
import warnings
from typing import List, Optional, Sequence, Union

import numpy as np

__all__ = ["UnseededRNGWarning", "derive_seed", "make_rng", "spawn_rngs"]

SeedLike = Union[int, None]


class UnseededRNGWarning(UserWarning):
    """Warned once per process when a non-deterministic generator is made.

    Exploratory use of ``make_rng()`` is fine; experiment results derived
    from such a generator are not reproducible from any seed, which is why
    the first unseeded construction announces itself.
    """


#: One-time latch for :class:`UnseededRNGWarning` (reset by tests only).
_unseeded_warned = False


def derive_seed(parent_seed: int, label: str) -> int:
    """Derive a deterministic 63-bit child seed from a parent seed and label.

    The derivation hashes ``(parent_seed, label)`` with SHA-256, so distinct
    labels give independent streams and the mapping is stable across runs
    and platforms.
    """
    digest = hashlib.sha256(f"{parent_seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFFFFFFFFFFFFFF


def make_rng(seed: SeedLike = None, label: Optional[str] = None) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        Parent seed.  ``None`` produces a non-deterministic generator —
        acceptable for exploratory use, and loud about it: the first such
        call of a process emits an :class:`UnseededRNGWarning`.  Every
        experiment entry point passes an explicit seed (the ``DET005``
        analysis rule enforces this for experiment and campaign code).
    label:
        Optional label mixed into the seed via :func:`derive_seed` so that
        different subsystems sharing one experiment seed still receive
        independent streams.
    """
    if seed is None:
        global _unseeded_warned
        if not _unseeded_warned:
            # repro: allow[PAR001] reason=warn-once latch, advisory only; the flag never feeds results and a duplicate warning per worker process is acceptable
            _unseeded_warned = True
            warnings.warn(
                "make_rng() without a seed creates a non-deterministic "
                "generator; results derived from it are not reproducible. "
                "Pass an explicit seed in experiment code.",
                UnseededRNGWarning,
                stacklevel=2,
            )
        return np.random.default_rng()
    if label is not None:
        seed = derive_seed(int(seed), label)
    return np.random.default_rng(int(seed))


def spawn_rngs(seed: int, labels: Sequence[str]) -> List[np.random.Generator]:
    """Create one independent generator per label from a single parent seed."""
    return [make_rng(seed, label) for label in labels]
