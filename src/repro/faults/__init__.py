"""Unified fault-injection subsystem with two faces.

**Device face** — :mod:`repro.faults.models`: a decorator registry of
:class:`~repro.faults.models.FaultModel` classes describing how PCM cells
fail (static stuck-at snapshots, row-correlated weak rows, transient
sensing flips corrected by :mod:`repro.ecc`, wear-drift mid-replay).
Experiments select a model by name through ``TechniqueSpec.fault_model``
or the ``--fault-model`` CLI flag.

**Runtime face** — :mod:`repro.faults.chaos`: a seeded
:class:`~repro.faults.chaos.ChaosPlan` injecting worker crashes, shm
attach failures, slow tasks, and store corruption into the campaign
executor, used to test the retry / timeout / graceful-degradation
machinery in :mod:`repro.campaign`.

Both faces share the determinism contract: every injected fault — in the
simulated device or in the real process pool — derives from
:func:`repro.utils.rng.make_rng` labels, so runs are bit-reproducible.
"""

from repro.faults.chaos import ChaosPlan
from repro.faults.models import (
    FaultModel,
    RowCorrelatedFaults,
    StaticStuckAtFaults,
    TransientReadFaults,
    WearDriftFaults,
)
from repro.faults.registry import (
    available_fault_models,
    get_fault_model_class,
    make_fault_model,
    register_fault_model,
    unregister_fault_model,
)

__all__ = [
    "ChaosPlan",
    "FaultModel",
    "RowCorrelatedFaults",
    "StaticStuckAtFaults",
    "TransientReadFaults",
    "WearDriftFaults",
    "available_fault_models",
    "get_fault_model_class",
    "make_fault_model",
    "register_fault_model",
    "unregister_fault_model",
]
