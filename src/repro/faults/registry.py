"""Decorator-driven registry of fault models.

Mirrors the encoder registry (:mod:`repro.coding.registry`), the task
registry (:mod:`repro.campaign.tasks`), and the analysis-rule registry
(:mod:`repro.analysis.registry`): a fault model registers itself by
decorating its class, builtin models are imported lazily on first
resolution, and everything resolves by name::

    from repro.faults.registry import register_fault_model

    @register_fault_model
    class MyModel(FaultModel):
        name = "my-model"
        ...

Experiments carry the model *name* in their task parameters (so task
hashes stay content-addressed) and materialise the model object with
:func:`make_fault_model` inside the worker.
"""

from __future__ import annotations

import importlib
from typing import TYPE_CHECKING, Any, Dict, List, Type

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - the runtime import would be circular
    from repro.faults.models import FaultModel

__all__ = [
    "available_fault_models",
    "get_fault_model_class",
    "make_fault_model",
    "register_fault_model",
    "unregister_fault_model",
]

#: Modules whose import registers the builtin fault models (lazily,
#: mirroring the encoder and task-kind registries).
_BUILTIN_MODULES = ("repro.faults.models",)

_REGISTRY: Dict[str, Type["FaultModel"]] = {}

_builtins_loaded = False


def _ensure_builtins() -> None:
    global _builtins_loaded
    if _builtins_loaded:
        return
    # repro: allow[PAR001] reason=idempotent lazy-import latch; every worker re-imports the same builtin model set, so coordinator and workers converge on identical registries
    _builtins_loaded = True
    for module in _BUILTIN_MODULES:
        importlib.import_module(module)


def register_fault_model(model_class: Type["FaultModel"]) -> Type["FaultModel"]:
    """Class decorator: make a :class:`FaultModel` resolvable by its name."""
    name = getattr(model_class, "name", "")
    if not name or not isinstance(name, str):
        raise ConfigurationError(
            f"fault model class {model_class.__name__} must define a non-empty name"
        )
    if name in _REGISTRY and _REGISTRY[name] is not model_class:
        raise ConfigurationError(f"fault model {name!r} is already registered")
    _REGISTRY[name] = model_class
    return model_class


def unregister_fault_model(name: str) -> None:
    """Remove a registered model (tests re-register fakes around this)."""
    _REGISTRY.pop(name, None)


def get_fault_model_class(name: str) -> Type["FaultModel"]:
    """Resolve a registered fault-model class by name."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "none"
        raise ConfigurationError(
            f"unknown fault model {name!r}; registered models: {known}"
        ) from None


def make_fault_model(name: str, **params: Any) -> "FaultModel":
    """Instantiate a registered fault model with keyword overrides."""
    model_class = get_fault_model_class(name)
    try:
        return model_class(**params)
    except TypeError as error:
        raise ConfigurationError(f"fault model {name!r}: {error}") from error


def available_fault_models() -> List[Type["FaultModel"]]:
    """The registered model classes sorted by name (for docs and CLIs)."""
    _ensure_builtins()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]
