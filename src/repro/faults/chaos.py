"""The runtime-face chaos engine: seeded failure injection for sweeps.

A :class:`ChaosPlan` is a small frozen (and picklable — it crosses the
process boundary into pool workers) description of *which* infrastructure
failures to inject into a campaign run:

* worker crashes mid-batch (``os._exit`` before a task runs, so no
  shared-memory segment is ever orphaned),
* shared-memory attach failures on the coordinator side,
* artificially slow tasks (to exercise per-task timeouts),
* store-object corruption after a put (to exercise quarantine + heal).

Every decision is a pure function of ``(plan.seed, site label)`` via
:func:`repro.utils.rng.derive_seed`, so a chaos run is exactly
reproducible: the same plan injects the same failures into the same
batches regardless of worker count or scheduling order.  Crash and shm
decisions are keyed by ``(batch_index, attempt)`` and only fire while
``attempt < crash_attempts`` — retries past that attempt see a healthy
system, which is what lets the determinism tests demand bit-identical
rows from a chaos run and a clean serial run.

The plan *decides*; the executor and store *act*.  Nothing in this module
touches processes or files.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.rng import derive_seed, make_rng
from repro.utils.validation import require, require_in_range

__all__ = ["ChaosPlan"]


@dataclass(frozen=True)
class ChaosPlan:
    """Seeded failure-injection plan for the campaign runtime.

    Parameters
    ----------
    seed:
        Root seed; every injection decision derives from it.
    crash_rate:
        Probability that a batch's worker dies mid-batch (per batch, per
        attempt below ``crash_attempts``).
    crash_attempts:
        Attempts that are *eligible* to crash.  The default (1) means a
        batch can die on its first attempt only, so one retry always
        recovers; raise it above the executor's retry budget to test
        exhaustion and graceful degradation.
    shm_fail_rate:
        Probability that attaching a batch's shared-memory result segment
        fails on the coordinator side (also gated by ``crash_attempts``).
    slow_rate:
        Probability that a given task sleeps for ``slow_s`` before
        computing (exercises per-task timeouts).
    slow_s:
        Sleep injected into slow tasks, in seconds.
    corrupt_rate:
        Probability that a stored result object is corrupted on disk
        right after it is written (exercises quarantine + recompute).
    """

    seed: int
    crash_rate: float = 0.25
    crash_attempts: int = 1
    shm_fail_rate: float = 0.0
    slow_rate: float = 0.0
    slow_s: float = 0.05
    corrupt_rate: float = 0.0

    def __post_init__(self) -> None:
        require_in_range(self.crash_rate, 0.0, 1.0, "crash_rate")
        require_in_range(self.shm_fail_rate, 0.0, 1.0, "shm_fail_rate")
        require_in_range(self.slow_rate, 0.0, 1.0, "slow_rate")
        require_in_range(self.corrupt_rate, 0.0, 1.0, "corrupt_rate")
        require(self.crash_attempts >= 0, "crash_attempts must be non-negative")
        require(self.slow_s >= 0.0, "slow_s must be non-negative")

    def _coin(self, label: str, rate: float) -> bool:
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        return bool(make_rng(derive_seed(self.seed, label), "chaos").random() < rate)

    def should_crash(self, batch_index: int, attempt: int) -> bool:
        """Should the worker running this batch attempt die mid-batch?"""
        if attempt >= self.crash_attempts:
            return False
        return self._coin(f"crash:{batch_index}:{attempt}", self.crash_rate)

    def crash_position(self, batch_index: int, attempt: int, batch_size: int) -> int:
        """Task position (within the batch) *before* which the crash fires.

        Mid-batch by construction: for a batch of one the crash fires
        before its only task; larger batches crash somewhere past the
        first task so completed-task counts in crash reports are
        exercised.
        """
        if batch_size <= 1:
            return 0
        rng = make_rng(derive_seed(self.seed, f"crash-pos:{batch_index}:{attempt}"), "chaos")
        return int(rng.integers(1, batch_size))

    def should_fail_shm(self, batch_index: int, attempt: int) -> bool:
        """Should attaching this batch's shm result segment fail?"""
        if attempt >= self.crash_attempts:
            return False
        return self._coin(f"shm:{batch_index}:{attempt}", self.shm_fail_rate)

    def slow_delay(self, task_hash: str) -> float:
        """Seconds of injected sleep for this task (0.0 for most tasks)."""
        if self._coin(f"slow:{task_hash}", self.slow_rate):
            return self.slow_s
        return 0.0

    def should_corrupt(self, task_hash: str) -> bool:
        """Should this task's freshly stored result object be corrupted?"""
        return self._coin(f"corrupt:{task_hash}", self.corrupt_rate)
