"""The device-face fault zoo: how cells fail, as pluggable models.

A :class:`FaultModel` describes one physical failure mode through three
orthogonal hooks, each of which the memory stack consults at a different
layer:

* :meth:`FaultModel.stuck_cells` — the *initial* stuck-at snapshot; used
  by :class:`repro.pcm.faultmap.FaultMap` when it generates a map.
* :meth:`FaultModel.wear_thresholds` — per-cell write budgets; installed
  by :class:`repro.pcm.array.PCMArray` (when no explicit endurance model
  is supplied) so cells *transition* to stuck mid-replay once their write
  counts cross the sampled thresholds.
* :attr:`FaultModel.read_flip_rate` — transient sensing noise; applied by
  :class:`repro.memctrl.controller.MemoryController` to the old-row state
  the encoder sees on each write's read-modify-write, after the ECC read
  path (:mod:`repro.ecc` ECP / Hamming) has had its chance to correct.

All three hooks draw exclusively from :func:`repro.utils.rng.make_rng` /
:func:`~repro.utils.rng.derive_seed` labels, so a fault landscape is a
pure function of ``(model, geometry, seed)`` — bit-identical across
worker counts, batch sizes, and start methods.

The four builtin models:

========================  =====================================================
``static-stuck-at``       Pre-generated stuck cells (the historical behaviour,
                          extracted verbatim from ``FaultMap._generate``).
``row-correlated``        The same expected fault count concentrated into a
                          small set of weak rows (process variation,
                          Section II-A).
``transient``             No initial stuck cells; seeded per-read bit flips
                          that ECP/Hamming may correct before the encoder
                          observes them.
``wear-drift``            Cells start healthy and stick at their current value
                          once per-cell write counts cross sampled endurance
                          thresholds mid-replay.
========================  =====================================================
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.faults.registry import register_fault_model
from repro.pcm.cell import CellTechnology
from repro.pcm.endurance import EnduranceModel
from repro.pcm.faultmap import RowFaults
from repro.utils.rng import make_rng
from repro.utils.validation import require, require_in_range

__all__ = [
    "FaultModel",
    "RowCorrelatedFaults",
    "StaticStuckAtFaults",
    "TransientReadFaults",
    "WearDriftFaults",
]


def _generate_stuck_rows(
    rows: int,
    cells_per_row: int,
    technology: CellTechnology,
    fault_rate: float,
    clustering: float,
    stuck_values: str,
    seed: Optional[int],
) -> Dict[int, RowFaults]:
    """The historical stuck-at map generator (ex ``FaultMap._generate``).

    Draw order and labels are load-bearing: maps built through any model
    that delegates here are bit-identical to the maps every pre-zoo run
    produced for the same parameters and seed.
    """
    out: Dict[int, RowFaults] = {}
    rng = make_rng(seed, "faultmap")
    total_cells = rows * cells_per_row
    expected_faults = int(round(total_cells * fault_rate))
    if expected_faults == 0:
        return out
    max_value = technology.levels
    if clustering <= 0.0:
        # Independent faults: draw the number per row from a binomial.
        fault_counts = rng.binomial(cells_per_row, fault_rate, size=rows)
    else:
        # Concentrate the same expected number of faults into a subset
        # of "weak" rows.
        weak_fraction = max(1.0 - clustering, 1.0 / rows)
        weak_rows = max(1, int(round(rows * weak_fraction)))
        per_weak_row_rate = min(1.0, fault_rate / weak_fraction)
        fault_counts = np.zeros(rows, dtype=np.int64)
        weak_indices = rng.choice(rows, size=weak_rows, replace=False)
        fault_counts[weak_indices] = rng.binomial(
            cells_per_row, per_weak_row_rate, size=weak_rows
        )
    if technology is CellTechnology.MLC and stuck_values == "extremes":
        # Physical stuck-at faults land in the extreme resistance states
        # (full SET / full RESET), i.e. the two ends of the Gray level
        # sequence.
        from repro.pcm.cell import MLC_GRAY_LEVELS

        allowed_values = np.array(
            [MLC_GRAY_LEVELS[0], MLC_GRAY_LEVELS[-1]], dtype=np.int64
        )
    else:
        allowed_values = np.arange(max_value, dtype=np.int64)
    for row_index in np.nonzero(fault_counts)[0]:
        count = int(fault_counts[row_index])
        positions = np.sort(
            rng.choice(cells_per_row, size=count, replace=False)
        ).astype(np.int64)
        values = allowed_values[rng.integers(0, len(allowed_values), size=count)].astype(
            np.int64
        )
        out[int(row_index)] = RowFaults(positions=positions, stuck_values=values)
    return out


class FaultModel:
    """Base class of the fault zoo; hooks default to "no effect".

    Attributes
    ----------
    name:
        Registry name; the string experiments carry in task parameters.
    summary:
        One-line description for docs and CLI listings.
    read_flip_rate:
        Per-cell probability that one sensed read-before-write flips the
        cell's observed value (transient noise; 0 disables the hook).
    """

    name: str = ""
    summary: str = ""
    read_flip_rate: float = 0.0

    def stuck_cells(
        self,
        rows: int,
        cells_per_row: int,
        technology: CellTechnology,
        fault_rate: float,
        clustering: float,
        stuck_values: str,
        seed: Optional[int],
    ) -> Dict[int, RowFaults]:
        """Initial stuck-at snapshot; empty for purely dynamic models."""
        return {}

    def wear_thresholds(
        self, rows: int, cells_per_row: int, seed: Optional[int]
    ) -> Optional[np.ndarray]:
        """Per-cell stuck thresholds, or ``None`` when cells never drift."""
        return None

    def describe(self) -> str:
        """``name — summary`` line for listings."""
        return f"{self.name} — {self.summary}"


@register_fault_model
class StaticStuckAtFaults(FaultModel):
    """Today's behaviour: a fixed pre-generated stuck-at snapshot."""

    name = "static-stuck-at"
    summary = "pre-generated stuck cells, fixed for the whole run"

    def stuck_cells(
        self,
        rows: int,
        cells_per_row: int,
        technology: CellTechnology,
        fault_rate: float,
        clustering: float,
        stuck_values: str,
        seed: Optional[int],
    ) -> Dict[int, RowFaults]:
        return _generate_stuck_rows(
            rows, cells_per_row, technology, fault_rate, clustering, stuck_values, seed
        )


@register_fault_model
class RowCorrelatedFaults(FaultModel):
    """Stuck cells clustered into weak rows (correlated process variation).

    Parameters
    ----------
    clustering:
        Concentration knob in ``[0, 1)``; the map-level ``clustering``
        parameter overrides it when set, so explicit sweeps keep working.
    """

    name = "row-correlated"
    summary = "the same expected fault count concentrated into weak rows"

    def __init__(self, clustering: float = 0.875):
        require_in_range(clustering, 0.0, 0.999, "clustering")
        self.clustering = clustering

    def stuck_cells(
        self,
        rows: int,
        cells_per_row: int,
        technology: CellTechnology,
        fault_rate: float,
        clustering: float,
        stuck_values: str,
        seed: Optional[int],
    ) -> Dict[int, RowFaults]:
        effective = clustering if clustering > 0.0 else self.clustering
        return _generate_stuck_rows(
            rows, cells_per_row, technology, fault_rate, effective, stuck_values, seed
        )


@register_fault_model
class TransientReadFaults(FaultModel):
    """Seeded per-read sensing flips, correctable by the ECC read path.

    No cell is ever physically stuck: each read-before-write senses a few
    cells wrongly (rate ``rate`` per cell), the controller's read
    corrector (ECP / Hamming, when the technique carries one) corrects
    what its budget covers, and only the escaped flips reach the encoder.

    Parameters
    ----------
    rate:
        Per-cell flip probability per sensed read.  The paper-scale rows
        (256 MLC cells) see ~``256 * rate`` flipped cells per read.
    """

    name = "transient"
    summary = "seeded per-read sensing flips, ECC-correctable before the encoder"

    def __init__(self, rate: float = 2e-3):
        require_in_range(rate, 0.0, 1.0, "rate")
        self.read_flip_rate = rate


@register_fault_model
class WearDriftFaults(FaultModel):
    """Cells drift to stuck as write counts cross sampled thresholds.

    Reuses the :class:`repro.pcm.endurance.EnduranceModel` machinery: the
    model samples one threshold per cell and the array's existing wear
    accounting (:meth:`repro.pcm.array.PCMArray.write_row_fast`) flips a
    cell to stuck-at-its-current-value the moment its state-changing
    write count reaches the threshold — mid-replay, not as a pre-run
    snapshot.

    Parameters
    ----------
    mean_writes / coefficient_of_variation / minimum_writes:
        Forwarded to :class:`~repro.pcm.endurance.EnduranceModel`.  The
        default mean is deliberately small so short figure sweeps observe
        drift; lifetime studies that pass their own endurance model are
        unaffected (an explicit model always wins).
    """

    name = "wear-drift"
    summary = "cells transition to stuck as write counts cross sampled thresholds"

    def __init__(
        self,
        mean_writes: float = 96.0,
        coefficient_of_variation: float = 0.25,
        minimum_writes: int = 4,
    ):
        require(mean_writes > 0, "mean_writes must be positive")
        self.endurance = EnduranceModel(
            mean_writes=mean_writes,
            coefficient_of_variation=coefficient_of_variation,
            minimum_writes=minimum_writes,
        )

    def wear_thresholds(
        self, rows: int, cells_per_row: int, seed: Optional[int]
    ) -> Optional[np.ndarray]:
        if rows <= 0 or cells_per_row <= 0:
            raise ConfigurationError("wear thresholds need a positive geometry")
        samples = self.endurance.sample(
            rows * cells_per_row, rng=make_rng(seed, "fault-wear-drift")
        )
        return samples.reshape(rows, cells_per_row)
