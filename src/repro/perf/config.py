"""Architecture parameters of the performance study (Table II)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["SystemConfig", "TABLE_II_SYSTEM"]


@dataclass(frozen=True)
class SystemConfig:
    """The simulated system of Table II.

    Attributes mirror the table: a 4-core, 4-issue out-of-order CPU at
    1 GHz with private L1/L2 caches, and a 2 GiB MLC PCM main memory with
    512-bit rows, two channels, one rank per channel, and eight banks per
    rank, with a baseline access delay of 84 ns.
    """

    cores: int = 4
    issue_width: int = 4
    frequency_ghz: float = 1.0
    l1_kib: int = 32
    l2_kib_per_core: int = 256
    cache_block_bytes: int = 64
    row_bits: int = 512
    word_bits: int = 64
    memory_gib: int = 2
    channels: int = 2
    ranks_per_channel: int = 1
    banks_per_rank: int = 8
    base_access_delay_ns: float = 84.0
    baseline_ipc: float = 1.0
    #: Fraction of the extra writeback occupancy that ends up stalling the
    #: core (writes are mostly off the critical path; contention exposes a
    #: portion of the added latency).
    write_stall_exposure: float = 0.5

    def __post_init__(self) -> None:
        if self.cores <= 0 or self.issue_width <= 0:
            raise ConfigurationError("cores and issue_width must be positive")
        if self.frequency_ghz <= 0:
            raise ConfigurationError("frequency_ghz must be positive")
        if self.base_access_delay_ns <= 0:
            raise ConfigurationError("base_access_delay_ns must be positive")
        if not 0.0 <= self.write_stall_exposure <= 1.0:
            raise ConfigurationError("write_stall_exposure must be in [0, 1]")

    @property
    def total_banks(self) -> int:
        """Total number of independent PCM banks."""
        return self.channels * self.ranks_per_channel * self.banks_per_rank

    @property
    def cycle_ns(self) -> float:
        """CPU cycle time in nanoseconds."""
        return 1.0 / self.frequency_ghz


#: The exact configuration of Table II.
TABLE_II_SYSTEM = SystemConfig()
