"""System-performance model (Table II, Fig. 13).

The paper measures IPC with the SNIPER full-system simulator.  This
package substitutes an analytic timing model
(:mod:`repro.perf.timing`) parameterised by the Table II system
(:mod:`repro.perf.config`): the only difference between techniques is the
extra read-modify-write encoding latency they add to each dirty-line
writeback, so normalised IPC follows from each benchmark's writeback rate
and the encoder delay reported by the hardware model.
"""

from repro.perf.config import SystemConfig, TABLE_II_SYSTEM
from repro.perf.timing import PerformanceModel, PerformanceResult

__all__ = ["PerformanceModel", "PerformanceResult", "SystemConfig", "TABLE_II_SYSTEM"]
