"""Analytic IPC model for the encoding-latency study (Fig. 13).

Dirty evictions are sent to the encryption unit in parallel with the
read-modify-write read of the original data, and the write only commits
after that read plus the encoding delay.  Relative to the 84 ns baseline
array access, an encoder adding a couple of nanoseconds lengthens the
bank occupancy of every writeback slightly; the exposed fraction of that
extra occupancy (contention with demand reads) is what slows the core
down.

The model therefore computes, per benchmark:

``slowdown = 1 + exposure * wpki * extra_delay_ns / time_per_kilo_instruction_ns``

with ``wpki`` the benchmark's writebacks per kilo-instruction and
``time_per_kilo_instruction_ns = 1000 / (IPC * frequency)``.  Normalised
IPC is the reciprocal of the slowdown.  This reproduces the paper's
finding that all techniques stay within a few percent of the unencoded
baseline, with RCC's longer encode delay costing slightly more than VCC's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Union

from repro.errors import ConfigurationError
from repro.perf.config import SystemConfig, TABLE_II_SYSTEM
from repro.traces.spec import BenchmarkProfile, get_profile

__all__ = ["PerformanceModel", "PerformanceResult"]


@dataclass(frozen=True)
class PerformanceResult:
    """Normalised-IPC estimate for one benchmark under one technique."""

    benchmark: str
    technique: str
    encode_delay_ns: float
    normalized_ipc: float
    slowdown_percent: float


class PerformanceModel:
    """Estimates normalised IPC from writeback rates and encode delays."""

    def __init__(self, system: SystemConfig = TABLE_II_SYSTEM):
        self.system = system

    def time_per_kilo_instruction_ns(self, profile: BenchmarkProfile) -> float:
        """Baseline execution time of 1000 instructions, in nanoseconds."""
        del profile  # the baseline IPC is a system-level parameter
        return 1000.0 / (self.system.baseline_ipc * self.system.frequency_ghz)

    def normalized_ipc(
        self,
        benchmark: Union[str, BenchmarkProfile],
        encode_delay_ns: float,
        technique: str = "",
    ) -> PerformanceResult:
        """Normalised IPC of ``benchmark`` with an encoder adding ``encode_delay_ns``.

        Parameters
        ----------
        benchmark:
            Benchmark profile or name.
        encode_delay_ns:
            Extra per-writeback latency added by the encoding technique
            (0 for the unencoded baseline).
        technique:
            Label recorded in the result.
        """
        if encode_delay_ns < 0:
            raise ConfigurationError("encode_delay_ns must be non-negative")
        profile = get_profile(benchmark) if isinstance(benchmark, str) else benchmark
        base_time = self.time_per_kilo_instruction_ns(profile)
        exposed = (
            self.system.write_stall_exposure
            * profile.writebacks_per_kilo_instruction
            * encode_delay_ns
            / max(1, self.system.total_banks // self.system.cores)
        )
        slowdown = 1.0 + exposed / base_time
        return PerformanceResult(
            benchmark=profile.name,
            technique=technique,
            encode_delay_ns=encode_delay_ns,
            normalized_ipc=1.0 / slowdown,
            slowdown_percent=(slowdown - 1.0) * 100.0,
        )

    def sweep(
        self,
        technique_delays: Dict[str, float],
        benchmarks: Optional[Iterable[str]] = None,
    ) -> List[PerformanceResult]:
        """Evaluate several techniques across several benchmarks (Fig. 13)."""
        from repro.traces.spec import list_benchmarks

        names = list(benchmarks) if benchmarks is not None else list_benchmarks()
        results: List[PerformanceResult] = []
        for benchmark in names:
            for technique, delay in technique_delays.items():
                results.append(self.normalized_ipc(benchmark, delay, technique))
        return results
