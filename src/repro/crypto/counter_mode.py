"""Counter-mode one-time-pad engine for cache-line encryption.

The on-chip encryption unit in the paper (Fig. 4) generates a 512-bit pad
per cache-line write from ``(256-bit key, line address, per-line counter)``
using four AES engines, XORs it with the plaintext line, and bumps the
counter so every stored value sees a fresh pad.  Reads regenerate the same
pad from the stored counter and XOR it away.

:class:`CounterModeEngine` reproduces that behaviour.  Two pad generators
are available:

* ``fast_pad=False`` — the real :class:`repro.crypto.aes.AES128` cipher in
  counter mode (one block per 128 pad bits), faithful but slow in pure
  Python;
* ``fast_pad=True`` (default for bulk simulation) — a keyed BLAKE2b PRF
  that produces statistically identical (uniform, address- and
  counter-unique) pads at a fraction of the cost.  The downstream encoders
  only care that the ciphertext is unbiased, so this substitution does not
  change any experimental conclusion; it is documented in DESIGN.md.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

import repro.obs as obs
from repro.crypto.aes import AES128
from repro.errors import ConfigurationError
from repro.utils.validation import require

__all__ = ["CounterModeEngine", "EncryptedLine"]

# Encryption-engine telemetry, bumped per batch/rollback call (the pads
# counter adds the whole chunk's line count in one increment).
_OBS_PAD_CHUNKS = obs.counter(
    "crypto.pad_chunks", "batched encrypt_lines calls (one pad chunk each)"
)
_OBS_PADS = obs.counter("crypto.pads", "one-time pads derived for line writes")
_OBS_ROLLBACKS = obs.counter(
    "crypto.rollbacks", "rollback_counters calls after an early-stopped chunk"
)
_OBS_ROLLED_BACK = obs.counter(
    "crypto.rolled_back_counters", "per-line counter bumps undone by rollbacks"
)


@dataclass(frozen=True)
class EncryptedLine:
    """An encrypted cache line plus the metadata needed to decrypt it.

    Attributes
    ----------
    address:
        Line-aligned physical address of the write.
    counter:
        Value of the per-line write counter used to derive the pad.
    words:
        Tuple of ciphertext words (``word_bits`` wide each).
    """

    address: int
    counter: int
    words: Tuple[int, ...]


class CounterModeEngine:
    """Counter-mode encryption of fixed-size cache lines.

    Parameters
    ----------
    key:
        Encryption key bytes.  Any length is accepted; it is folded into the
        pad derivation (the AES path uses the first 16 bytes).
    line_bits:
        Cache-line size in bits (default 512, matching the paper).
    word_bits:
        Word granularity used by the encoders (default 64).
    fast_pad:
        Use the keyed-PRF pad generator instead of pure-Python AES.
    """

    def __init__(
        self,
        key: bytes = b"\x00" * 32,
        line_bits: int = 512,
        word_bits: int = 64,
        fast_pad: bool = True,
    ):
        require(line_bits > 0 and word_bits > 0, "line_bits and word_bits must be positive")
        require(
            line_bits % word_bits == 0,
            f"line_bits ({line_bits}) must be a multiple of word_bits ({word_bits})",
        )
        self.key = bytes(key)
        if not self.key:
            raise ConfigurationError("encryption key must not be empty")
        self.line_bits = line_bits
        self.word_bits = word_bits
        self.words_per_line = line_bits // word_bits
        self.fast_pad = fast_pad
        self._counters: Dict[int, int] = {}
        if not fast_pad:
            aes_key = (self.key + b"\x00" * 16)[:16]
            self._aes = AES128(aes_key)
        else:
            self._aes = None

    # ------------------------------------------------------------- counters
    def counter_for(self, address: int) -> int:
        """Return the current write counter for ``address`` (0 if never written)."""
        return self._counters.get(address, 0)

    def rollback_counters(self, addresses: Sequence[int]) -> None:
        """Un-bump the counters of lines that were encrypted but not stored.

        The batched replay engine encrypts a chunk of writes ahead of
        performing them; when an early-stop predicate ends the replay
        mid-chunk, the tail of the chunk was never written and its counter
        bumps must be undone so subsequent reads and writes see exactly
        the state a scalar :meth:`encrypt_line` sequence would have left.
        """
        counters = self._counters
        for address in addresses:
            address = int(address)
            current = counters.get(address, 0)
            if current <= 0:
                raise ConfigurationError(
                    f"cannot roll back counter of address {address}: never encrypted"
                )
            counters[address] = current - 1
        _OBS_ROLLBACKS.inc()
        _OBS_ROLLED_BACK.inc(len(addresses))

    def reset_counters(self) -> None:
        """Forget all per-line counters (used between experiment repetitions)."""
        self._counters.clear()

    # ------------------------------------------------------------------ pad
    def pad_words(self, address: int, counter: int) -> List[int]:
        """Generate the one-time pad for ``(address, counter)`` as a word list."""
        pad_bytes = self._pad_bytes(address, counter)
        word_bytes = self.word_bits // 8
        words = []
        for index in range(self.words_per_line):
            chunk = pad_bytes[index * word_bytes: (index + 1) * word_bytes]
            words.append(int.from_bytes(chunk, "big"))
        return words

    def _pad_bytes(self, address: int, counter: int) -> bytes:
        needed = self.line_bits // 8
        out = bytearray()
        block_index = 0
        while len(out) < needed:
            if self.fast_pad:
                digest = hashlib.blake2b(
                    address.to_bytes(8, "big")
                    + counter.to_bytes(8, "big")
                    + block_index.to_bytes(4, "big"),
                    key=self.key[:64],
                    digest_size=32,
                ).digest()
                out.extend(digest)
            else:
                block = (
                    address.to_bytes(8, "big")
                    + counter.to_bytes(4, "big")
                    + block_index.to_bytes(4, "big")
                )
                out.extend(self._aes.encrypt_block(block))
            block_index += 1
        return bytes(out[:needed])

    def _aes_pad_chunk(
        self, address_values: np.ndarray, counter_values: np.ndarray
    ) -> np.ndarray:
        """Pad bytes for a whole chunk via one multi-block AES call.

        Assembles every line's counter blocks —
        ``address (8B big-endian) | counter (4B) | block index (4B)``,
        exactly the layout :meth:`_pad_bytes` feeds ``encrypt_block`` —
        as one ``(lines * blocks_per_line, 16)`` matrix and runs
        :meth:`repro.crypto.aes.AES128.encrypt_blocks` once, so the
        per-line Python cipher invocations that dominated batched
        replay disappear.  Returns ``(lines, line_bits // 8)`` uint8
        pad bytes, bit-identical to the scalar derivation.
        """
        aes = self._aes
        if aes is None:  # pragma: no cover - callers gate on fast_pad=False
            raise ConfigurationError("AES pad chunking requires fast_pad=False")
        needed = self.line_bits // 8
        block_size = AES128.BLOCK_SIZE
        blocks_per_line = -(-needed // block_size)
        count = address_values.shape[0]
        blocks = np.empty((count, blocks_per_line, block_size), dtype=np.uint8)
        blocks[:, :, 0:8] = address_values.astype(">u8").view(np.uint8).reshape(count, 1, 8)
        blocks[:, :, 8:12] = counter_values.astype(">u4").view(np.uint8).reshape(count, 1, 4)
        blocks[:, :, 12:16] = (
            np.arange(blocks_per_line, dtype=">u4")
            .view(np.uint8)
            .reshape(1, blocks_per_line, 4)
        )
        cipher = aes.encrypt_blocks(blocks.reshape(-1, block_size))
        return np.ascontiguousarray(
            cipher.reshape(count, blocks_per_line * block_size)[:, :needed]
        )

    # -------------------------------------------------------------- encrypt
    def encrypt_line(self, address: int, plaintext_words: List[int]) -> EncryptedLine:
        """Encrypt one cache line, bumping the per-line counter.

        Parameters
        ----------
        address:
            Line-aligned address.
        plaintext_words:
            ``words_per_line`` plaintext words of ``word_bits`` bits each.
        """
        if len(plaintext_words) != self.words_per_line:
            raise ConfigurationError(
                f"expected {self.words_per_line} words per line, got {len(plaintext_words)}"
            )
        word_mask = (1 << self.word_bits) - 1
        counter = self._counters.get(address, 0) + 1
        self._counters[address] = counter
        pad = self.pad_words(address, counter)
        _OBS_PADS.inc()
        cipher = tuple((int(w) ^ p) & word_mask for w, p in zip(plaintext_words, pad))
        return EncryptedLine(address=address, counter=counter, words=cipher)

    def encrypt_lines(
        self, addresses: Sequence[int], plaintext_words: np.ndarray
    ) -> Optional[np.ndarray]:
        """Encrypt many cache lines at once, bumping each per-line counter.

        Bit-identical to calling :meth:`encrypt_line` once per row of
        ``plaintext_words`` (a ``(lines, words_per_line)`` unsigned-integer
        matrix) in order: counters advance per occurrence of an address and
        the pads are the same keyed-PRF/AES streams.  Only the word packing
        and the XOR are vectorised — which is exactly the part that
        dominates the scalar path once the caller replays a long trace.

        Returns the ciphertext as a ``(lines, words_per_line)`` ``uint64``
        matrix, or ``None`` when ``word_bits`` has no fixed-width byte
        layout (not one of 8/16/32/64) — callers then fall back to the
        scalar :meth:`encrypt_line`.
        """
        if self.word_bits not in (8, 16, 32, 64):
            return None
        matrix = np.ascontiguousarray(plaintext_words, dtype=np.uint64)
        if matrix.ndim != 2 or matrix.shape[1] != self.words_per_line:
            raise ConfigurationError(
                f"expected a (lines, {self.words_per_line}) word matrix, "
                f"got shape {matrix.shape}"
            )
        if len(addresses) != matrix.shape[0]:
            raise ConfigurationError("one address per plaintext line is required")
        pad_dtype = np.dtype(f">u{self.word_bits // 8}")
        _OBS_PAD_CHUNKS.inc()
        _OBS_PADS.inc(matrix.shape[0])
        counters = self._counters
        count = matrix.shape[0]
        address_values = np.empty(count, dtype=np.uint64)
        counter_values = np.empty(count, dtype=np.uint64)
        for index, address in enumerate(addresses):
            address = int(address)
            counter = counters.get(address, 0) + 1
            counters[address] = counter
            address_values[index] = address
            counter_values[index] = counter
        if self.fast_pad:
            # The keyed-PRF pads come from hashlib, which has no batched
            # entry point; derivation stays per line.
            pads = np.empty((count, self.words_per_line), dtype=np.uint64)
            for index in range(count):
                pads[index] = np.frombuffer(
                    self._pad_bytes(int(address_values[index]), int(counter_values[index])),
                    dtype=pad_dtype,
                )
        else:
            # Vectorised counter-block assembly + one multi-block AES
            # call for the whole chunk — bit-identical to the per-line
            # _pad_bytes stream (see _aes_pad_chunk).
            pads = (
                self._aes_pad_chunk(address_values, counter_values)
                .view(pad_dtype)
                .astype(np.uint64)
            )
        cipher = matrix ^ pads
        if self.word_bits < 64:
            cipher &= np.uint64((1 << self.word_bits) - 1)
        return cipher

    def decrypt_line(self, line: EncryptedLine) -> List[int]:
        """Decrypt an :class:`EncryptedLine` back to plaintext words."""
        word_mask = (1 << self.word_bits) - 1
        pad = self.pad_words(line.address, line.counter)
        return [(int(w) ^ p) & word_mask for w, p in zip(line.words, pad)]
