"""Counter-mode encryption substrate.

The paper encrypts every cache line written back to PCM with counter-mode
AES: four AES engines turn ``(key, line address, per-line counter)`` into a
512-bit one-time pad that is XORed with the plaintext (Fig. 4).  The
repository reproduces that construction with a from-scratch pure-Python
AES-128 block cipher (:mod:`repro.crypto.aes`) driven in counter mode by
:class:`repro.crypto.counter_mode.CounterModeEngine`.

The important property for everything downstream is that ciphertext is
indistinguishable from uniform random data, which removes the 0/1 bias
that classical write-reduction encodings rely on.
"""

from repro.crypto.aes import AES128
from repro.crypto.counter_mode import CounterModeEngine, EncryptedLine

__all__ = ["AES128", "CounterModeEngine", "EncryptedLine"]
