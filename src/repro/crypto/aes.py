"""Pure-Python AES-128 block cipher.

This is a from-scratch, table-driven implementation of the AES-128 forward
cipher (FIPS-197).  Only encryption is required: counter-mode encryption
and decryption both use the forward direction of the block cipher to
generate the keystream, so the inverse cipher is intentionally omitted.

The implementation favours clarity over speed — it exists to provide a
faithful counter-mode pad generator for the memory-controller model, not to
move bulk data.  Bulk experiments that only need *statistically* uniform
pads can use :class:`repro.crypto.counter_mode.CounterModeEngine` with
``fast_pad=True`` which swaps in a seeded PRF.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["AES128"]

# Forward S-box from FIPS-197.
_SBOX = [
    0x63, 0x7C, 0x77, 0x7B, 0xF2, 0x6B, 0x6F, 0xC5, 0x30, 0x01, 0x67, 0x2B,
    0xFE, 0xD7, 0xAB, 0x76, 0xCA, 0x82, 0xC9, 0x7D, 0xFA, 0x59, 0x47, 0xF0,
    0xAD, 0xD4, 0xA2, 0xAF, 0x9C, 0xA4, 0x72, 0xC0, 0xB7, 0xFD, 0x93, 0x26,
    0x36, 0x3F, 0xF7, 0xCC, 0x34, 0xA5, 0xE5, 0xF1, 0x71, 0xD8, 0x31, 0x15,
    0x04, 0xC7, 0x23, 0xC3, 0x18, 0x96, 0x05, 0x9A, 0x07, 0x12, 0x80, 0xE2,
    0xEB, 0x27, 0xB2, 0x75, 0x09, 0x83, 0x2C, 0x1A, 0x1B, 0x6E, 0x5A, 0xA0,
    0x52, 0x3B, 0xD6, 0xB3, 0x29, 0xE3, 0x2F, 0x84, 0x53, 0xD1, 0x00, 0xED,
    0x20, 0xFC, 0xB1, 0x5B, 0x6A, 0xCB, 0xBE, 0x39, 0x4A, 0x4C, 0x58, 0xCF,
    0xD0, 0xEF, 0xAA, 0xFB, 0x43, 0x4D, 0x33, 0x85, 0x45, 0xF9, 0x02, 0x7F,
    0x50, 0x3C, 0x9F, 0xA8, 0x51, 0xA3, 0x40, 0x8F, 0x92, 0x9D, 0x38, 0xF5,
    0xBC, 0xB6, 0xDA, 0x21, 0x10, 0xFF, 0xF3, 0xD2, 0xCD, 0x0C, 0x13, 0xEC,
    0x5F, 0x97, 0x44, 0x17, 0xC4, 0xA7, 0x7E, 0x3D, 0x64, 0x5D, 0x19, 0x73,
    0x60, 0x81, 0x4F, 0xDC, 0x22, 0x2A, 0x90, 0x88, 0x46, 0xEE, 0xB8, 0x14,
    0xDE, 0x5E, 0x0B, 0xDB, 0xE0, 0x32, 0x3A, 0x0A, 0x49, 0x06, 0x24, 0x5C,
    0xC2, 0xD3, 0xAC, 0x62, 0x91, 0x95, 0xE4, 0x79, 0xE7, 0xC8, 0x37, 0x6D,
    0x8D, 0xD5, 0x4E, 0xA9, 0x6C, 0x56, 0xF4, 0xEA, 0x65, 0x7A, 0xAE, 0x08,
    0xBA, 0x78, 0x25, 0x2E, 0x1C, 0xA6, 0xB4, 0xC6, 0xE8, 0xDD, 0x74, 0x1F,
    0x4B, 0xBD, 0x8B, 0x8A, 0x70, 0x3E, 0xB5, 0x66, 0x48, 0x03, 0xF6, 0x0E,
    0x61, 0x35, 0x57, 0xB9, 0x86, 0xC1, 0x1D, 0x9E, 0xE1, 0xF8, 0x98, 0x11,
    0x69, 0xD9, 0x8E, 0x94, 0x9B, 0x1E, 0x87, 0xE9, 0xCE, 0x55, 0x28, 0xDF,
    0x8C, 0xA1, 0x89, 0x0D, 0xBF, 0xE6, 0x42, 0x68, 0x41, 0x99, 0x2D, 0x0F,
    0xB0, 0x54, 0xBB, 0x16,
]

# Round constants for key expansion.
_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


def _xtime(byte: int) -> int:
    """Multiply a GF(2^8) element by x (i.e. by 0x02)."""
    byte <<= 1
    if byte & 0x100:
        byte ^= 0x11B
    return byte & 0xFF


def _mul(a: int, b: int) -> int:
    """Multiply two GF(2^8) elements with the AES reduction polynomial."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        b >>= 1
        a = _xtime(a)
    return result


# Vectorised-cipher lookup tables, derived from the scalar primitives so
# the batched path is bit-identical by construction.
_SBOX_NP = np.array(_SBOX, dtype=np.uint8)
_XTIME_NP = np.array([_xtime(value) for value in range(256)], dtype=np.uint8)
# State is column-major (state[row + 4*col]); ShiftRows moves
# state[row + 4*((col+row) % 4)] into state[row + 4*col], so gathering
# with this permutation equals the scalar _shift_rows.
_SHIFT_ROWS_NP = np.array(
    [(index % 4) + 4 * (((index // 4) + (index % 4)) % 4) for index in range(16)],
    dtype=np.intp,
)


class AES128:
    """AES-128 forward cipher operating on 16-byte blocks.

    Parameters
    ----------
    key:
        A 16-byte key (``bytes`` or any sequence of 16 integers in
        ``[0, 255]``).
    """

    BLOCK_SIZE = 16
    KEY_SIZE = 16
    ROUNDS = 10

    def __init__(self, key: Sequence[int]):
        key_bytes = bytes(key)
        if len(key_bytes) != self.KEY_SIZE:
            raise ConfigurationError(
                f"AES-128 requires a {self.KEY_SIZE}-byte key, got {len(key_bytes)} bytes"
            )
        self._round_keys = self._expand_key(key_bytes)
        # (ROUNDS+1, 16) uint8 view of the round keys for the batched path.
        self._round_keys_np = np.array(self._round_keys, dtype=np.uint8)

    # ------------------------------------------------------------------ key
    @staticmethod
    def _expand_key(key: bytes) -> List[List[int]]:
        """Expand the cipher key into 11 round keys of 16 bytes each."""
        words = [list(key[4 * i: 4 * i + 4]) for i in range(4)]
        for i in range(4, 4 * (AES128.ROUNDS + 1)):
            temp = list(words[i - 1])
            if i % 4 == 0:
                temp = temp[1:] + temp[:1]
                temp = [_SBOX[b] for b in temp]
                temp[0] ^= _RCON[i // 4 - 1]
            words.append([a ^ b for a, b in zip(words[i - 4], temp)])
        round_keys = []
        for round_index in range(AES128.ROUNDS + 1):
            round_key: List[int] = []
            for word in words[4 * round_index: 4 * round_index + 4]:
                round_key.extend(word)
            round_keys.append(round_key)
        return round_keys

    # ---------------------------------------------------------- round steps
    @staticmethod
    def _sub_bytes(state: List[int]) -> None:
        for i in range(16):
            state[i] = _SBOX[state[i]]

    @staticmethod
    def _shift_rows(state: List[int]) -> None:
        # State is column-major: state[row + 4*col].
        for row in range(1, 4):
            rotated = [state[row + 4 * ((col + row) % 4)] for col in range(4)]
            for col in range(4):
                state[row + 4 * col] = rotated[col]

    @staticmethod
    def _mix_columns(state: List[int]) -> None:
        for col in range(4):
            a = state[4 * col: 4 * col + 4]
            state[4 * col + 0] = _mul(a[0], 2) ^ _mul(a[1], 3) ^ a[2] ^ a[3]
            state[4 * col + 1] = a[0] ^ _mul(a[1], 2) ^ _mul(a[2], 3) ^ a[3]
            state[4 * col + 2] = a[0] ^ a[1] ^ _mul(a[2], 2) ^ _mul(a[3], 3)
            state[4 * col + 3] = _mul(a[0], 3) ^ a[1] ^ a[2] ^ _mul(a[3], 2)

    @staticmethod
    def _add_round_key(state: List[int], round_key: List[int]) -> None:
        for i in range(16):
            state[i] ^= round_key[i]

    # -------------------------------------------------------------- public
    def encrypt_block(self, block: Sequence[int]) -> bytes:
        """Encrypt a single 16-byte block and return the 16-byte ciphertext."""
        data = bytes(block)
        if len(data) != self.BLOCK_SIZE:
            raise ConfigurationError(
                f"AES block must be {self.BLOCK_SIZE} bytes, got {len(data)}"
            )
        state = list(data)
        self._add_round_key(state, self._round_keys[0])
        for round_index in range(1, self.ROUNDS):
            self._sub_bytes(state)
            self._shift_rows(state)
            self._mix_columns(state)
            self._add_round_key(state, self._round_keys[round_index])
        self._sub_bytes(state)
        self._shift_rows(state)
        self._add_round_key(state, self._round_keys[self.ROUNDS])
        return bytes(state)

    @staticmethod
    def _mix_columns_batch(state: "np.ndarray") -> "np.ndarray":
        """MixColumns over a ``(blocks, 16)`` state matrix."""
        columns = state.reshape(-1, 4, 4)  # [block, col, row]
        a0, a1 = columns[:, :, 0], columns[:, :, 1]
        a2, a3 = columns[:, :, 2], columns[:, :, 3]
        m0, m1 = _XTIME_NP[a0], _XTIME_NP[a1]
        m2, m3 = _XTIME_NP[a2], _XTIME_NP[a3]
        mixed = np.empty_like(columns)
        mixed[:, :, 0] = m0 ^ (m1 ^ a1) ^ a2 ^ a3
        mixed[:, :, 1] = a0 ^ m1 ^ (m2 ^ a2) ^ a3
        mixed[:, :, 2] = a0 ^ a1 ^ m2 ^ (m3 ^ a3)
        mixed[:, :, 3] = (m0 ^ a0) ^ a1 ^ a2 ^ m3
        return mixed.reshape(-1, 16)

    def encrypt_blocks(self, blocks: "np.ndarray") -> "np.ndarray":
        """Encrypt many 16-byte blocks in one vectorised pass.

        ``blocks`` is a ``(count, 16)`` uint8 matrix; the returned matrix
        has the same shape and is bit-identical to calling
        :meth:`encrypt_block` on each row (every table above is derived
        from the scalar primitives).  This is what lets the counter-mode
        engine generate a whole chunk's pads with one call instead of
        ``blocks_per_line`` Python-level cipher invocations per line.
        """
        state = np.ascontiguousarray(blocks, dtype=np.uint8)
        if state.ndim != 2 or state.shape[1] != self.BLOCK_SIZE:
            raise ConfigurationError(
                f"expected a (count, {self.BLOCK_SIZE}) block matrix, "
                f"got shape {state.shape}"
            )
        state = state ^ self._round_keys_np[0]
        for round_index in range(1, self.ROUNDS):
            state = _SBOX_NP[state]
            state = state[:, _SHIFT_ROWS_NP]
            state = self._mix_columns_batch(state)
            state ^= self._round_keys_np[round_index]
        state = _SBOX_NP[state]
        state = state[:, _SHIFT_ROWS_NP]
        state ^= self._round_keys_np[self.ROUNDS]
        return state
