"""Virtual Coset Coding (VCC) — the paper's primary contribution.

The package implements:

* :class:`~repro.core.config.VCCConfig` — the VCC(n, N, r) design space
  (word width, kernel width, kernel count, stored vs. generated kernels,
  full-word vs. right-digit-plane operation for MLC);
* :mod:`~repro.core.kernels` — coset-kernel providers: a stored ROM of
  random kernels and the Algorithm 2 generator that derives kernels from
  the (unencoded) left digits of the encrypted data block;
* :class:`~repro.core.vcc.VCCEncoder` — Algorithm 1: builds and evaluates
  the 2^p virtual cosets of every kernel in parallel, selects the optimum
  candidate under an arbitrary cost function, and decodes with a single
  XOR/XNOR pass;
* :mod:`~repro.core.analytical` — the closed-form expected-bit-change
  models of Section III (Eq. (1) for random cosets, Eq. (2) for biased
  cosets) used to regenerate Fig. 1.

Cost functions are shared with the baseline encoders and re-exported here
for convenience.
"""

from repro.coding.cost import (
    BitChangeCost,
    CellChangeCost,
    CostFunction,
    EnergyCost,
    LexicographicCost,
    OnesCost,
    SawCost,
    energy_then_saw,
    saw_then_energy,
)
from repro.core.analytical import (
    expected_bit_changes_bcc,
    expected_bit_changes_rcc,
    expected_bit_changes_unencoded,
    reduction_percent_bcc,
    reduction_percent_rcc,
)
from repro.core.config import VCCConfig
from repro.core.kernels import GeneratedKernelProvider, KernelProvider, StoredKernelProvider
from repro.core.vcc import VCCEncoder

__all__ = [
    "BitChangeCost",
    "CellChangeCost",
    "CostFunction",
    "EnergyCost",
    "GeneratedKernelProvider",
    "KernelProvider",
    "LexicographicCost",
    "OnesCost",
    "SawCost",
    "StoredKernelProvider",
    "VCCConfig",
    "VCCEncoder",
    "energy_then_saw",
    "expected_bit_changes_bcc",
    "expected_bit_changes_rcc",
    "expected_bit_changes_unencoded",
    "reduction_percent_bcc",
    "reduction_percent_rcc",
    "saw_then_energy",
]
