"""Closed-form models of Section III (Eq. (1) and Eq. (2)).

These expressions compare random coset coding (RCC) and biased coset
coding (BCC) on unbiased (encrypted) data without simulating anything:

* Eq. (1): the expected number of changed bits after choosing the best of
  N independent random cosets for an n-bit block whose bits each flip with
  probability ``p = 0.5``;
* Eq. (2): the expected number of changed bits for biased coset coding,
  i.e. Flip-N-Write over ``k = log2(N)`` sections (including each
  section's auxiliary bit).

Both feed Fig. 1, which shows BCC winning for small N and RCC taking over
from N = 16 onwards.
"""

from __future__ import annotations

import math
from typing import Iterable, List

from repro.errors import ConfigurationError

__all__ = [
    "expected_bit_changes_unencoded",
    "expected_bit_changes_rcc",
    "expected_bit_changes_bcc",
    "reduction_percent_rcc",
    "reduction_percent_bcc",
    "fig1_series",
]


def _validate(n: int, num_cosets: int) -> None:
    if n <= 0:
        raise ConfigurationError("block size n must be positive")
    if num_cosets < 1:
        raise ConfigurationError("the number of cosets must be at least 1")


def expected_bit_changes_unencoded(n: int) -> float:
    """Expected changed bits when writing a random n-bit block directly."""
    if n <= 0:
        raise ConfigurationError("block size n must be positive")
    return n / 2.0


def expected_bit_changes_rcc(n: int, num_cosets: int, p: float = 0.5, include_aux: bool = True) -> float:
    """Eq. (1): expected changed bits under the best of ``num_cosets`` random cosets.

    Parameters
    ----------
    n:
        Block size in bits.
    num_cosets:
        Number of independent random coset candidates N.
    p:
        Per-bit change probability (0.5 for encrypted data).
    include_aux:
        Add the expected weight of the ``log2 N`` auxiliary bits
        (``log2(N)/2``), as the paper does when comparing against the
        unencoded write.
    """
    _validate(n, num_cosets)
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError("p must be a probability")
    # cdf[m] = P(Binomial(n, p) <= m)
    pmf = [math.comb(n, i) * (p ** i) * ((1.0 - p) ** (n - i)) for i in range(n + 1)]
    expected = 0.0
    cumulative = 0.0
    for m in range(n):
        cumulative += pmf[m]
        tail = 1.0 - cumulative  # P(X > m) for a single coset
        expected += tail ** num_cosets if tail > 0.0 else 0.0
    if include_aux and num_cosets > 1:
        expected += math.log2(num_cosets) / 2.0
    return expected


def expected_bit_changes_bcc(n: int, num_cosets: int, include_aux: bool = True) -> float:
    """Eq. (2): expected changed bits under biased coset coding with N candidates.

    BCC divides the word into ``k = log2 N`` sections of ``n/k`` bits and
    writes each section directly or inverted.  Each section plus its
    auxiliary bit behaves like Flip-N-Write over ``n/k + 1`` bits, whose
    expected cost is ``E[min(X, n/k + 1 - X)]`` for ``X ~ Binomial(n/k+1, 1/2)``.
    """
    _validate(n, num_cosets)
    if num_cosets == 1:
        return expected_bit_changes_unencoded(n)
    k = int(round(math.log2(num_cosets)))
    if (1 << k) != num_cosets:
        raise ConfigurationError("BCC requires a power-of-two number of cosets")
    if n % k != 0:
        raise ConfigurationError(f"block size {n} must be divisible by log2(N) = {k}")
    section_bits = n // k
    total_bits = section_bits + 1 if include_aux else section_bits
    half = section_bits // 2
    expected_section = 0.0
    denom = 2.0 ** total_bits
    for i in range(total_bits + 1):
        weight = math.comb(total_bits, i) / denom
        if i <= half:
            expected_section += i * weight
        else:
            expected_section += (total_bits - i) * weight
    return k * expected_section


def reduction_percent_rcc(n: int, num_cosets: int) -> float:
    """Fig. 1 series: % reduction in changed bits of RCC vs. the unencoded write."""
    baseline = expected_bit_changes_unencoded(n)
    return 100.0 * (baseline - expected_bit_changes_rcc(n, num_cosets)) / baseline


def reduction_percent_bcc(n: int, num_cosets: int) -> float:
    """Fig. 1 series: % reduction in changed bits of BCC vs. the unencoded write."""
    baseline = expected_bit_changes_unencoded(n)
    return 100.0 * (baseline - expected_bit_changes_bcc(n, num_cosets)) / baseline


def fig1_series(n: int = 64, coset_counts: Iterable[int] = (2, 4, 16, 256)) -> List[dict]:
    """Regenerate the Fig. 1 data: one row per coset count with both series."""
    rows = []
    for count in coset_counts:
        rows.append(
            {
                "cosets": count,
                "bcc_reduction_percent": reduction_percent_bcc(n, count),
                "rcc_reduction_percent": reduction_percent_rcc(n, count),
            }
        )
    return rows
