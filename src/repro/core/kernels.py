"""Coset-kernel providers: stored ROM kernels and the Algorithm 2 generator.

VCC builds its virtual coset candidates from ``r`` short (m-bit) kernels.
The paper evaluates two sources for those kernels:

* **stored kernels** — pre-generated random m-bit strings held in a small
  ROM next to the encoder (the "VCC-Stored" design points);
* **generated kernels** — Algorithm 2 derives the kernels at run time from
  the *left digits* of the encrypted data block itself.  Because the MLC
  design never modifies the left digits (write energy is insensitive to
  them), the decoder can regenerate exactly the same kernels from the
  stored codeword, and no kernel material exists at rest that an attacker
  could learn to defeat the scheme.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence

import numpy as np

from repro.core.config import EncodeRegion, VCCConfig
from repro.errors import ConfigurationError
from repro.utils.bitops import random_word, split_planes, split_planes_array, split_subblocks
from repro.utils.rng import make_rng

__all__ = ["KernelProvider", "StoredKernelProvider", "GeneratedKernelProvider"]


class KernelProvider(abc.ABC):
    """Produces the ``r`` coset kernels used to encode/decode one word."""

    def __init__(self, kernel_bits: int, num_kernels: int):
        if kernel_bits <= 0:
            raise ConfigurationError("kernel_bits must be positive")
        if num_kernels <= 0:
            raise ConfigurationError("num_kernels must be positive")
        self.kernel_bits = kernel_bits
        self.num_kernels = num_kernels

    @abc.abstractmethod
    def kernels_for(self, word: int) -> List[int]:
        """Return the ``r`` kernels applicable to ``word``.

        ``word`` is the encrypted data block at encode time and the stored
        codeword at decode time; providers that do not depend on the data
        (stored ROM) ignore it.  The two calls must return identical
        kernels for any word whose unencoded region is unchanged, which is
        what makes decode possible.
        """

    def kernels_for_batch(self, words: np.ndarray) -> np.ndarray:
        """Kernels for a whole line at once, as a ``(words, r)`` array.

        The default loops over :meth:`kernels_for`, so custom providers
        stay correct on the batched encode path; both builtin providers
        override it with vectorised implementations.
        """
        return np.array(
            [self.kernels_for(int(word)) for word in np.asarray(words).ravel()],
            dtype=np.uint64,
        )

    @property
    def is_stored(self) -> bool:
        """True when kernels come from a ROM rather than from the data."""
        return False


class StoredKernelProvider(KernelProvider):
    """A ROM of ``r`` pre-generated random m-bit kernels.

    Parameters
    ----------
    kernel_bits:
        Kernel width m.
    num_kernels:
        Kernel count r.
    seed:
        Seed used to fill the ROM (ignored when ``kernels`` is given).
    kernels:
        Explicit kernel values, e.g. the four 16-bit kernels of the Fig. 3
        worked example.
    include_biased:
        Reserve the first ROM slot for the all-zeros (identity) kernel, as
        the paper's conclusion proposes for systems that mix encrypted and
        unencrypted data: together with the per-partition XNOR alternative
        the identity kernel realises exactly the biased Flip-N-Write
        candidates, so the hybrid encoder degrades gracefully on biased
        plaintext while the remaining random kernels handle encrypted data.
    """

    def __init__(
        self,
        kernel_bits: int,
        num_kernels: int,
        seed: Optional[int] = 12345,
        kernels: Optional[Sequence[int]] = None,
        include_biased: bool = False,
    ):
        super().__init__(kernel_bits, num_kernels)
        self.include_biased = include_biased
        limit = 1 << kernel_bits
        if kernels is not None:
            values = [int(k) for k in kernels]
            if len(values) != num_kernels:
                raise ConfigurationError(
                    f"expected {num_kernels} kernels, got {len(values)}"
                )
            for value in values:
                if not 0 <= value < limit:
                    raise ConfigurationError(
                        f"kernel {value:#x} does not fit in {kernel_bits} bits"
                    )
            self._kernels = values
            return
        rng = make_rng(seed, "vcc-stored-kernels")
        chosen: List[int] = []
        seen = set()
        if include_biased:
            # The identity kernel (plus its XNOR alternative, i.e. whole-
            # partition inversion) reproduces the biased FNW candidates.
            chosen.append(0)
            seen.add(0)
        # Avoid adding the all-zeros / all-ones kernels as *random* picks:
        # together with the XNOR alternative they duplicate the biased
        # candidates that `include_biased` adds explicitly.
        forbidden = {0, limit - 1}
        while len(chosen) < num_kernels:
            candidate = random_word(rng, kernel_bits)
            if candidate in seen or candidate in forbidden:
                continue
            complement = candidate ^ (limit - 1)
            if complement in seen:
                continue
            seen.add(candidate)
            chosen.append(candidate)
        self._kernels = chosen

    @property
    def is_stored(self) -> bool:
        return True

    @property
    def kernels(self) -> List[int]:
        """The ROM contents (copy)."""
        return list(self._kernels)

    def kernels_for(self, word: int) -> List[int]:
        del word
        return list(self._kernels)

    def kernels_for_batch(self, words: np.ndarray) -> np.ndarray:
        num_words = int(np.asarray(words).size)
        rom = np.array(self._kernels, dtype=np.uint64)
        return np.broadcast_to(rom, (num_words, self.num_kernels))


class GeneratedKernelProvider(KernelProvider):
    """Algorithm 2: derive kernels from the left digits of the data block.

    The ``l = n/2`` left digits of the (encrypted, hence uniformly random)
    word are split into ``b = l / m`` m-bit *base vectors*.  Kernel ``i``
    is built from base vector ``i mod b`` XORed with a short mask that
    encodes ``i // b``, tiled across the kernel width; the extra mask bit
    of the paper keeps complementary patterns out of the generated set.
    Because the left digits are never modified by right-plane encoding, the
    decoder regenerates identical kernels from the stored codeword.
    """

    def __init__(self, config: VCCConfig):
        if config.encode_region is not EncodeRegion.RIGHT_PLANE:
            raise ConfigurationError(
                "generated kernels require right-plane encoding (the left digits "
                "must remain unchanged to regenerate kernels at decode time)"
            )
        super().__init__(config.kernel_bits, config.num_kernels)
        self.config = config
        self.plane_bits = config.word_bits // 2
        if self.plane_bits % self.kernel_bits != 0:
            raise ConfigurationError(
                f"the left-digit plane ({self.plane_bits} bits) must be divisible by "
                f"kernel_bits ({self.kernel_bits}) to form base vectors"
            )
        self.num_base_vectors = self.plane_bits // self.kernel_bits
        masks_needed = max(1, -(-self.num_kernels // self.num_base_vectors))  # ceil div
        self.mask_bits = 1 + max(1, (masks_needed - 1).bit_length()) if masks_needed > 1 else 1
        # The tiled mask of kernel i depends only on i, so both the scalar
        # and the batched path read it from this table.
        self._index_masks = [
            self._tiled_mask(index // self.num_base_vectors)
            for index in range(self.num_kernels)
        ]
        self._base_indices = np.arange(self.num_kernels) % self.num_base_vectors
        self._index_mask_array = np.array(self._index_masks, dtype=np.uint64)

    def _tiled_mask(self, mask_index: int) -> int:
        """Tile the ``mask_bits``-bit pattern of ``mask_index`` across a kernel."""
        if mask_index == 0:
            return 0
        pattern = mask_index & ((1 << self.mask_bits) - 1)
        tiled = 0
        filled = 0
        while filled < self.kernel_bits:
            take = min(self.mask_bits, self.kernel_bits - filled)
            tiled = (tiled << take) | (pattern >> (self.mask_bits - take))
            filled += take
        return tiled

    def kernels_for(self, word: int) -> List[int]:
        if word < 0 or word >= (1 << self.config.word_bits):
            raise ConfigurationError(
                f"word {word:#x} does not fit in {self.config.word_bits} bits"
            )
        left_plane, _right_plane = split_planes(word, self.config.word_bits)
        bases = split_subblocks(left_plane, self.plane_bits, self.kernel_bits)
        return [
            bases[index % self.num_base_vectors] ^ self._index_masks[index]
            for index in range(self.num_kernels)
        ]

    def kernels_for_batch(self, words: np.ndarray) -> np.ndarray:
        if self.config.word_bits > 64:
            return super().kernels_for_batch(words)
        values = np.asarray(words, dtype=np.uint64).ravel()
        left_planes, _right = split_planes_array(values, self.config.word_bits)
        shifts = np.array(
            [
                self.kernel_bits * (self.num_base_vectors - 1 - index)
                for index in range(self.num_base_vectors)
            ],
            dtype=np.uint64,
        )
        bases = (left_planes[:, None] >> shifts) & np.uint64((1 << self.kernel_bits) - 1)
        return bases[:, self._base_indices] ^ self._index_mask_array[None, :]
