"""Configuration of the VCC(n, N, r) design space.

A VCC instance is described by:

* ``word_bits`` (n) — the data-block width handled per encode, 64 bits in
  the paper's evaluation (32 supported for legacy machines);
* ``kernel_bits`` (m) — the width of each coset kernel;
* ``num_kernels`` (r) — how many kernels are stored or generated;
* the *encoded region*: for SLC (and optionally MLC) the full n-bit word;
  for the paper's MLC design (Section IV-B) only the right-digit bitplane
  of the word (n/2 bits), which leaves the left digits untouched so they
  can seed the kernel generator and remain recoverable at decode time;
* ``stored_kernels`` — whether kernels live in a ROM (pre-generated random
  strings) or are derived from the encrypted block itself via Algorithm 2.

Derived quantities follow the paper: the encoded region is split into
``p = encoded_bits / m`` partitions, each kernel contributes ``2^p``
virtual cosets, so ``N = r * 2^p`` and the auxiliary information per word
is ``log2(r) + p = log2(N)`` bits.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError
from repro.pcm.cell import CellTechnology
from repro.utils.validation import require, require_divisible, require_power_of_two

__all__ = ["EncodeRegion", "VCCConfig"]


class EncodeRegion(enum.Enum):
    """Which bits of the word the coset kernels are applied to."""

    #: Apply kernels to the full n-bit word (SLC, or MLC with stored kernels
    #: when left-digit recoverability is not needed).
    FULL_WORD = "full"

    #: Apply kernels only to the right-digit bitplane of an MLC word (the
    #: paper's MLC design): write energy is insensitive to the left digit,
    #: and leaving it unchanged lets Algorithm 2 regenerate the kernels at
    #: decode time.
    RIGHT_PLANE = "right-plane"


@dataclass(frozen=True)
class VCCConfig:
    """Static parameters of a VCC encoder instance."""

    word_bits: int = 64
    kernel_bits: int = 8
    num_kernels: int = 16
    technology: CellTechnology = CellTechnology.MLC
    encode_region: EncodeRegion = EncodeRegion.RIGHT_PLANE
    stored_kernels: bool = False

    def __post_init__(self) -> None:
        require(self.word_bits > 0, "word_bits must be positive")
        require(self.kernel_bits > 0, "kernel_bits must be positive")
        require_power_of_two(self.num_kernels, "num_kernels")
        require_divisible(
            self.word_bits,
            self.technology.bits_per_cell,
            "word_bits must hold an integer number of cells",
        )
        if self.encode_region is EncodeRegion.RIGHT_PLANE:
            if self.technology is not CellTechnology.MLC:
                raise ConfigurationError(
                    "right-plane encoding only applies to MLC memories"
                )
        if not self.stored_kernels:
            if self.encode_region is not EncodeRegion.RIGHT_PLANE:
                raise ConfigurationError(
                    "generated kernels (Algorithm 2) require right-plane encoding: "
                    "the left digits must stay unchanged so the decoder can "
                    "regenerate the kernels"
                )
        require_divisible(
            self.encoded_bits,
            self.kernel_bits,
            f"the encoded region ({self.encoded_bits} bits) must be divisible by "
            f"kernel_bits ({self.kernel_bits})",
        )
        if self.encode_region is EncodeRegion.FULL_WORD:
            require_divisible(
                self.kernel_bits,
                self.technology.bits_per_cell,
                "kernel_bits must hold whole cells when encoding the full word",
            )
        if self.partitions > 24:
            raise ConfigurationError(
                "more than 24 partitions would make the virtual-coset count unwieldy"
            )

    # ------------------------------------------------------------- derived
    @property
    def encoded_bits(self) -> int:
        """Number of bits the kernels are applied to (n or n/2)."""
        if self.encode_region is EncodeRegion.RIGHT_PLANE:
            return self.word_bits // 2
        return self.word_bits

    @property
    def partitions(self) -> int:
        """Number of kernel-sized partitions p of the encoded region."""
        return self.encoded_bits // self.kernel_bits

    @property
    def num_cosets(self) -> int:
        """Total number of virtual coset candidates N = r * 2^p."""
        return self.num_kernels * (1 << self.partitions)

    @property
    def aux_bits(self) -> int:
        """Auxiliary bits per word: log2(r) kernel index + p flip flags."""
        return (self.num_kernels.bit_length() - 1) + self.partitions

    @property
    def cells_per_word(self) -> int:
        """Number of physical cells backing one word."""
        return self.word_bits // self.technology.bits_per_cell

    @property
    def cells_per_partition(self) -> int:
        """Number of cells covered by one kernel-sized partition."""
        return self.cells_per_word // self.partitions

    def describe(self) -> str:
        """Human-readable VCC(n, N, r) summary string."""
        return (
            f"VCC(n={self.word_bits}, N={self.num_cosets}, r={self.num_kernels}; "
            f"m={self.kernel_bits}, p={self.partitions}, "
            f"{'stored' if self.stored_kernels else 'generated'} kernels, "
            f"{self.encode_region.value}, {self.technology.value})"
        )

    # ------------------------------------------------------------ builders
    @classmethod
    def for_cosets(
        cls,
        num_cosets: int,
        word_bits: int = 64,
        technology: CellTechnology = CellTechnology.MLC,
        stored_kernels: bool = False,
        partitions: int = 4,
    ) -> "VCCConfig":
        """Build the paper's default configuration for ``N`` virtual cosets.

        With the default four partitions this reproduces the evaluation
        configurations VCC(64, N, N/16): each kernel contributes
        ``2^4 = 16`` virtual cosets, so ``r = N / 16`` kernels are needed
        and the auxiliary information is exactly ``log2 N`` bits.
        """
        require_power_of_two(num_cosets, "num_cosets")
        per_kernel = 1 << partitions
        if num_cosets < per_kernel * 2 and num_cosets != per_kernel:
            # Allow N == 2^p (a single kernel) but otherwise require a
            # power-of-two kernel count of at least one.
            raise ConfigurationError(
                f"num_cosets ({num_cosets}) must be at least 2^partitions = {per_kernel}"
            )
        if num_cosets % per_kernel != 0:
            raise ConfigurationError(
                f"num_cosets ({num_cosets}) must be a multiple of 2^partitions = {per_kernel}"
            )
        num_kernels = num_cosets // per_kernel
        if technology is CellTechnology.MLC and not stored_kernels:
            # Generated kernels (Algorithm 2) need the left-digit plane to
            # stay unchanged, so only the right-digit plane is encoded.
            region = EncodeRegion.RIGHT_PLANE
            encoded_bits = word_bits // 2
        else:
            # Stored kernels (and SLC) encode the full word, which is what
            # gives VCC its RCC-like stuck-at-wrong masking flexibility.
            region = EncodeRegion.FULL_WORD
            encoded_bits = word_bits
            stored_kernels = True
        kernel_bits = encoded_bits // partitions
        return cls(
            word_bits=word_bits,
            kernel_bits=kernel_bits,
            num_kernels=num_kernels,
            technology=technology,
            encode_region=region,
            stored_kernels=stored_kernels,
        )
