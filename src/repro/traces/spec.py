"""Profiles of the memory-intensive SPEC CPU 2017 benchmarks.

The paper evaluates a representative subset (per Panda et al., HPCA 2018)
of the most store-intensive SPECspeed 2017 Integer and Floating Point
benchmarks.  The real writeback traces cannot be redistributed, so this
module captures each benchmark's coarse memory behaviour as a
:class:`BenchmarkProfile` consumed by the synthetic trace generator:

* ``writebacks_per_kilo_instruction`` — how store-intensive the benchmark
  is (dirty LLC evictions per 1000 retired instructions), which drives the
  performance model and the relative write volume;
* ``working_set_lines`` — how many distinct cache lines the writeback
  stream touches (relative to the simulated memory size);
* ``hot_fraction`` / ``hot_weight`` — address locality: the fraction of
  the working set that absorbs the bulk of the writebacks, and how much of
  the traffic lands there (drives wear concentration, hence lifetime);
* ``value_model`` — what the plaintext data looks like (integers, floats,
  pointer-rich, text, mixed); irrelevant after encryption but it keeps the
  unencrypted baseline comparisons honest.

The numbers are engineering estimates chosen to differentiate the
benchmarks the way the paper's per-benchmark figures do (e.g. ``mcf`` and
``lbm`` are write-heavy with concentrated working sets, ``xz`` writes less
and more uniformly).  They are not measurements of the SPEC suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import ConfigurationError

__all__ = ["BenchmarkProfile", "SPEC_2017_PROFILES", "get_profile", "list_benchmarks"]


@dataclass(frozen=True)
class BenchmarkProfile:
    """Coarse memory-behaviour description of one benchmark."""

    name: str
    suite: str
    writebacks_per_kilo_instruction: float
    working_set_lines: int
    hot_fraction: float
    hot_weight: float
    value_model: str
    description: str = ""

    def __post_init__(self) -> None:
        if self.writebacks_per_kilo_instruction <= 0:
            raise ConfigurationError("writebacks_per_kilo_instruction must be positive")
        if self.working_set_lines <= 0:
            raise ConfigurationError("working_set_lines must be positive")
        if not 0.0 < self.hot_fraction <= 1.0:
            raise ConfigurationError("hot_fraction must be in (0, 1]")
        if not 0.0 <= self.hot_weight <= 1.0:
            raise ConfigurationError("hot_weight must be in [0, 1]")
        if self.value_model not in {"integer", "float", "pointer", "text", "mixed"}:
            raise ConfigurationError(f"unknown value model {self.value_model!r}")


#: Representative subset of the SPECspeed 2017 suites used by the paper's
#: evaluation (store-intensive benchmarks), keyed by short name.
SPEC_2017_PROFILES: Dict[str, BenchmarkProfile] = {
    profile.name: profile
    for profile in [
        BenchmarkProfile(
            name="bwaves",
            suite="fp",
            writebacks_per_kilo_instruction=18.0,
            working_set_lines=6000,
            hot_fraction=0.30,
            hot_weight=0.60,
            value_model="float",
            description="Blast-wave simulation; large streaming float arrays.",
        ),
        BenchmarkProfile(
            name="cactuBSSN",
            suite="fp",
            writebacks_per_kilo_instruction=14.0,
            working_set_lines=5000,
            hot_fraction=0.25,
            hot_weight=0.55,
            value_model="float",
            description="Numerical relativity stencil kernels.",
        ),
        BenchmarkProfile(
            name="lbm",
            suite="fp",
            writebacks_per_kilo_instruction=30.0,
            working_set_lines=4000,
            hot_fraction=0.15,
            hot_weight=0.70,
            value_model="float",
            description="Lattice-Boltzmann; the most writeback-intensive FP code.",
        ),
        BenchmarkProfile(
            name="wrf",
            suite="fp",
            writebacks_per_kilo_instruction=10.0,
            working_set_lines=7000,
            hot_fraction=0.35,
            hot_weight=0.50,
            value_model="mixed",
            description="Weather model with mixed float/integer state.",
        ),
        BenchmarkProfile(
            name="pop2",
            suite="fp",
            writebacks_per_kilo_instruction=12.0,
            working_set_lines=6500,
            hot_fraction=0.30,
            hot_weight=0.55,
            value_model="float",
            description="Ocean circulation model.",
        ),
        BenchmarkProfile(
            name="fotonik3d",
            suite="fp",
            writebacks_per_kilo_instruction=22.0,
            working_set_lines=5500,
            hot_fraction=0.20,
            hot_weight=0.65,
            value_model="float",
            description="FDTD electromagnetic solver; streaming writes.",
        ),
        BenchmarkProfile(
            name="roms",
            suite="fp",
            writebacks_per_kilo_instruction=16.0,
            working_set_lines=6000,
            hot_fraction=0.28,
            hot_weight=0.58,
            value_model="float",
            description="Regional ocean model.",
        ),
        BenchmarkProfile(
            name="mcf",
            suite="int",
            writebacks_per_kilo_instruction=26.0,
            working_set_lines=3000,
            hot_fraction=0.10,
            hot_weight=0.75,
            value_model="pointer",
            description="Combinatorial optimisation; pointer-chasing with hot nodes.",
        ),
        BenchmarkProfile(
            name="deepsjeng",
            suite="int",
            writebacks_per_kilo_instruction=8.0,
            working_set_lines=2500,
            hot_fraction=0.20,
            hot_weight=0.60,
            value_model="integer",
            description="Chess search; transposition-table updates.",
        ),
        BenchmarkProfile(
            name="xalancbmk",
            suite="int",
            writebacks_per_kilo_instruction=9.0,
            working_set_lines=4500,
            hot_fraction=0.25,
            hot_weight=0.55,
            value_model="text",
            description="XML transformation; string-heavy heap churn.",
        ),
        BenchmarkProfile(
            name="omnetpp",
            suite="int",
            writebacks_per_kilo_instruction=11.0,
            working_set_lines=4000,
            hot_fraction=0.18,
            hot_weight=0.65,
            value_model="pointer",
            description="Discrete-event network simulation; event-queue churn.",
        ),
        BenchmarkProfile(
            name="xz",
            suite="int",
            writebacks_per_kilo_instruction=6.0,
            working_set_lines=3500,
            hot_fraction=0.40,
            hot_weight=0.45,
            value_model="mixed",
            description="LZMA compression; already high-entropy data.",
        ),
    ]
}


def list_benchmarks() -> List[str]:
    """Names of all available benchmark profiles, sorted."""
    return sorted(SPEC_2017_PROFILES)


def get_profile(name: str) -> BenchmarkProfile:
    """Look up a benchmark profile by name (case-insensitive)."""
    lowered = {key.lower(): profile for key, profile in SPEC_2017_PROFILES.items()}
    key = name.lower()
    if key not in lowered:
        raise ConfigurationError(
            f"unknown benchmark {name!r}; available: {', '.join(list_benchmarks())}"
        )
    return lowered[key]
