"""Workload traces: last-level-cache writeback streams.

The paper drives its simulations with writeback traces (address + evicted
cache-line data) captured below the LLC for the most memory-intensive
SPEC CPU 2017 benchmarks.  Those traces are not redistributable, so this
package provides a synthetic substitute:

* :mod:`repro.traces.spec` — named profiles for a representative subset of
  the SPECspeed 2017 Integer and Floating Point benchmarks, each with its
  own write intensity, working-set size, address locality, and value
  composition;
* :mod:`repro.traces.synthetic` — a generator that turns a profile into a
  concrete :class:`~repro.traces.trace.Trace` of line writebacks.

Because every line is encrypted with a fresh counter-mode pad before it
reaches the encoders, the *data* the encoders see is uniformly random for
any source; what the profiles preserve is the differing write volume and
address locality across benchmarks, which is what differentiates the
per-benchmark energy and lifetime results.
"""

from repro.traces.trace import Trace, WritebackRecord
from repro.traces.spec import BenchmarkProfile, SPEC_2017_PROFILES, get_profile, list_benchmarks
from repro.traces.synthetic import SyntheticTraceGenerator, generate_trace

__all__ = [
    "BenchmarkProfile",
    "SPEC_2017_PROFILES",
    "SyntheticTraceGenerator",
    "Trace",
    "WritebackRecord",
    "generate_trace",
    "get_profile",
    "list_benchmarks",
]
