"""Trace containers and (de)serialisation.

A trace is an ordered sequence of :class:`WritebackRecord` objects, each a
dirty cache line evicted from the last-level cache: the line-aligned
address and the plaintext line contents as fixed-width words.  Traces can
be saved to and loaded from a compact JSON-lines format so experiments can
be re-run on identical inputs.
"""

from __future__ import annotations

import gzip
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import TraceError

__all__ = ["WritebackRecord", "Trace"]


@dataclass(frozen=True)
class WritebackRecord:
    """One dirty-line eviction from the LLC to main memory.

    Attributes
    ----------
    address:
        Line index (line-aligned address divided by the line size).
    words:
        Plaintext contents of the line as a tuple of word integers.
    """

    address: int
    words: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.address < 0:
            raise TraceError(f"address must be non-negative, got {self.address}")
        if not self.words:
            raise TraceError("a writeback record needs at least one data word")
        object.__setattr__(self, "words", tuple(int(w) for w in self.words))


@dataclass
class Trace:
    """An ordered sequence of writeback records plus workload metadata."""

    name: str
    records: List[WritebackRecord] = field(default_factory=list)
    line_bits: int = 512
    word_bits: int = 64
    metadata: dict = field(default_factory=dict)
    #: Cached array views of the records (see :meth:`addresses_array`).
    _addresses: Optional[np.ndarray] = field(default=None, init=False, repr=False, compare=False)
    _words: Optional[np.ndarray] = field(default=None, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.line_bits <= 0 or self.word_bits <= 0:
            raise TraceError("line_bits and word_bits must be positive")
        if self.line_bits % self.word_bits != 0:
            raise TraceError("line_bits must be a multiple of word_bits")

    # ------------------------------------------------------------ protocol
    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[WritebackRecord]:
        return iter(self.records)

    def __getitem__(self, index: int) -> WritebackRecord:
        return self.records[index]

    @property
    def words_per_line(self) -> int:
        """Number of words per cache line."""
        return self.line_bits // self.word_bits

    # ----------------------------------------------------------- array views
    def addresses_array(self) -> np.ndarray:
        """All record addresses as an ``int64`` vector (cached).

        Batch drivers (:meth:`repro.memctrl.controller.MemoryController.replay_trace`)
        read the trace through these array views instead of iterating
        :class:`WritebackRecord` objects; the cache is invalidated by
        :meth:`append`.
        """
        if self._addresses is None:
            self._addresses = np.fromiter(
                (record.address for record in self.records),
                dtype=np.int64,
                count=len(self.records),
            )
        return self._addresses

    def words_array(self) -> Optional[np.ndarray]:
        """All record words as a ``(records, words_per_line)`` ``uint64`` matrix.

        Cached like :meth:`addresses_array`.  Returns ``None`` when
        ``word_bits`` exceeds 64 (such traces keep Python-int words and
        batch drivers fall back to per-record access).
        """
        if self.word_bits > 64:
            return None
        if self._words is None:
            matrix = np.empty((len(self.records), self.words_per_line), dtype=np.uint64)
            for index, record in enumerate(self.records):
                matrix[index] = record.words
            self._words = matrix
        return self._words

    # ------------------------------------------------------------ mutation
    def append(self, record: WritebackRecord) -> None:
        """Append one record, validating its geometry."""
        if len(record.words) != self.words_per_line:
            raise TraceError(
                f"record has {len(record.words)} words, trace expects {self.words_per_line}"
            )
        word_limit = 1 << self.word_bits
        for word in record.words:
            if word < 0 or word >= word_limit:
                raise TraceError(f"word {word:#x} does not fit in {self.word_bits} bits")
        self.records.append(record)
        self._addresses = None
        self._words = None

    # --------------------------------------------------------------- stats
    def unique_addresses(self) -> int:
        """Number of distinct line addresses touched by the trace."""
        return len({record.address for record in self.records})

    def writes_per_address(self) -> dict:
        """Histogram of writes per line address."""
        histogram: dict = {}
        for record in self.records:
            histogram[record.address] = histogram.get(record.address, 0) + 1
        return histogram

    # ----------------------------------------------------------------- I/O
    def save(self, path: Union[str, Path]) -> None:
        """Write the trace to ``path`` in JSON-lines format.

        A ``.gz`` suffix writes the same format gzip-compressed, so
        large benchmark traces can ship compressed; :meth:`load` reads
        either form transparently.
        """
        path = Path(path)
        opener = (
            (lambda: gzip.open(path, "wt", encoding="utf-8"))
            if path.suffix == ".gz"
            else (lambda: path.open("w", encoding="utf-8"))
        )
        with opener() as handle:
            header = {
                "name": self.name,
                "line_bits": self.line_bits,
                "word_bits": self.word_bits,
                "metadata": self.metadata,
            }
            handle.write(json.dumps(header) + "\n")
            for record in self.records:
                handle.write(
                    json.dumps(
                        {"a": record.address, "w": [format(w, "x") for w in record.words]}
                    )
                    + "\n"
                )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Trace":
        """Load a trace previously written by :meth:`save`.

        Gzip-compressed trace files are detected by their magic bytes
        (not the file name), so both ``trace.jsonl`` and
        ``trace.jsonl.gz`` — however they were named — load
        transparently.
        """
        path = Path(path)
        with path.open("rb") as probe:
            compressed = probe.read(2) == b"\x1f\x8b"
        opener = (
            (lambda: gzip.open(path, "rt", encoding="utf-8"))
            if compressed
            else (lambda: path.open("r", encoding="utf-8"))
        )
        with opener() as handle:
            lines = [line for line in handle if line.strip()]
        if not lines:
            raise TraceError(f"trace file {path} is empty")
        header = json.loads(lines[0])
        trace = cls(
            name=header["name"],
            line_bits=header["line_bits"],
            word_bits=header["word_bits"],
            metadata=header.get("metadata", {}),
        )
        for line in lines[1:]:
            payload = json.loads(line)
            trace.append(
                WritebackRecord(
                    address=payload["a"], words=tuple(int(w, 16) for w in payload["w"])
                )
            )
        return trace
