"""Synthetic writeback-trace generator.

Turns a :class:`repro.traces.spec.BenchmarkProfile` into a concrete
:class:`repro.traces.trace.Trace`:

* **addresses** follow the profile's locality model — a "hot" subset of the
  working set receives ``hot_weight`` of the writebacks, the remainder is
  spread uniformly over the rest (both scaled to the simulated memory
  size);
* **data** follows the profile's value model so the *unencrypted* baseline
  comparisons see realistic bias: integer-like lines hold small
  two's-complement counters, float-like lines hold IEEE-754 doubles with
  correlated exponents, pointer-like lines hold aligned addresses sharing
  high bits, text-like lines hold ASCII bytes, and mixed lines interleave
  these.

After counter-mode encryption every one of these models becomes a uniform
random bit stream, which is exactly the property the paper exploits; the
generator exists so the same pipeline can also quantify what encryption
destroys (the unencrypted-vs-encrypted comparisons in the motivation).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.traces.spec import BenchmarkProfile, get_profile
from repro.traces.trace import Trace, WritebackRecord
from repro.utils.rng import make_rng
from repro.utils.validation import require

__all__ = ["SyntheticTraceGenerator", "generate_trace"]


class SyntheticTraceGenerator:
    """Generates writeback traces for one benchmark profile.

    Parameters
    ----------
    profile:
        Benchmark behaviour description (or its name).
    memory_lines:
        Number of cache-line-sized locations in the simulated memory; the
        profile's working set is clipped to this.
    line_bits, word_bits:
        Geometry of the generated lines.
    seed:
        Seed making the trace reproducible.
    """

    def __init__(
        self,
        profile,
        memory_lines: int = 4096,
        line_bits: int = 512,
        word_bits: int = 64,
        seed: int = 0,
    ):
        if isinstance(profile, str):
            profile = get_profile(profile)
        if not isinstance(profile, BenchmarkProfile):
            raise ConfigurationError("profile must be a BenchmarkProfile or a benchmark name")
        require(memory_lines > 0, "memory_lines must be positive")
        self.profile = profile
        self.memory_lines = memory_lines
        self.line_bits = line_bits
        self.word_bits = word_bits
        self.words_per_line = line_bits // word_bits
        self.seed = seed
        self._rng = make_rng(seed, f"trace-{profile.name}")

        working_set = min(profile.working_set_lines, memory_lines)
        self.working_set = working_set
        hot_lines = max(1, int(round(working_set * profile.hot_fraction)))
        # The working set occupies the first `working_set` line addresses;
        # hot lines are a random subset of it.
        self._hot_addresses = self._rng.choice(working_set, size=hot_lines, replace=False)
        cold_mask = np.ones(working_set, dtype=bool)
        cold_mask[self._hot_addresses] = False
        self._cold_addresses = np.nonzero(cold_mask)[0]
        if len(self._cold_addresses) == 0:
            self._cold_addresses = self._hot_addresses

    # ------------------------------------------------------------ addresses
    def _draw_addresses(self, count: int) -> np.ndarray:
        hot = self._rng.random(count) < self.profile.hot_weight
        hot_choice = self._rng.integers(0, len(self._hot_addresses), size=count)
        cold_choice = self._rng.integers(0, len(self._cold_addresses), size=count)
        addresses = np.where(
            hot,
            self._hot_addresses[hot_choice],
            self._cold_addresses[cold_choice],
        )
        return addresses.astype(np.int64)

    # ----------------------------------------------------------------- data
    def _integer_word(self) -> int:
        # Small counters / indices: mostly positive values whose high bits
        # are zero, with an occasional negative (sign-extended) value.
        if self._rng.random() < 0.1:
            value = -int(self._rng.integers(1, 1 << 16))
        else:
            value = int(self._rng.integers(0, 1 << 20))
        return value & 0xFFFFFFFFFFFFFFFF

    def _float_word(self) -> int:
        # Doubles drawn from a narrow range share exponent bits.
        value = float(self._rng.normal(loc=1.0, scale=0.25))
        return struct.unpack("<Q", struct.pack("<d", value))[0]

    def _pointer_word(self) -> int:
        # 8-byte aligned heap addresses sharing a 32-bit base.
        base = 0x00007F3A00000000
        offset = int(self._rng.integers(0, 1 << 28)) & ~0x7
        return base | offset

    def _text_word(self) -> int:
        letters = self._rng.integers(0x20, 0x7F, size=8)
        word = 0
        for byte in letters:
            word = (word << 8) | int(byte)
        return word

    def _word_for_model(self, model: str) -> int:
        if model == "integer":
            return self._integer_word()
        if model == "float":
            return self._float_word()
        if model == "pointer":
            return self._pointer_word()
        if model == "text":
            return self._text_word()
        # mixed
        choice = int(self._rng.integers(0, 4))
        return self._word_for_model(["integer", "float", "pointer", "text"][choice])

    def _line_words(self) -> List[int]:
        model = self.profile.value_model
        # Value models are defined at 64-bit granularity; narrower trace
        # words keep the low-order bytes.
        mask = (1 << self.word_bits) - 1
        return [self._word_for_model(model) & mask for _ in range(self.words_per_line)]

    # ------------------------------------------------------------- generate
    def generate(self, num_writebacks: int) -> Trace:
        """Produce a trace with ``num_writebacks`` line writebacks."""
        require(num_writebacks >= 0, "num_writebacks must be non-negative")
        trace = Trace(
            name=self.profile.name,
            line_bits=self.line_bits,
            word_bits=self.word_bits,
            metadata={
                "suite": self.profile.suite,
                "writebacks_per_kilo_instruction": self.profile.writebacks_per_kilo_instruction,
                "working_set_lines": self.working_set,
                "seed": self.seed,
            },
        )
        addresses = self._draw_addresses(num_writebacks) if num_writebacks else []
        for address in addresses:
            trace.append(WritebackRecord(address=int(address), words=tuple(self._line_words())))
        return trace


def generate_trace(
    benchmark: str,
    num_writebacks: int,
    memory_lines: int = 4096,
    line_bits: int = 512,
    word_bits: int = 64,
    seed: int = 0,
) -> Trace:
    """One-call convenience wrapper around :class:`SyntheticTraceGenerator`."""
    generator = SyntheticTraceGenerator(
        benchmark,
        memory_lines=memory_lines,
        line_bits=line_bits,
        word_bits=word_bits,
        seed=seed,
    )
    return generator.generate(num_writebacks)
