"""Content-addressed on-disk store for campaign task results.

Each completed task is written to ``<root>/objects/<h2>/<hash>.json``
where ``hash`` is the task's content address
(:attr:`repro.campaign.spec.Task.task_hash`).  The payload records the
hash, the task's kind and parameters, and its result rows, so a store
is self-describing and can be aggregated or audited without the spec
that produced it.

Writes are atomic (temp file + ``os.replace`` in the same directory), so
a campaign killed mid-write never leaves a half-written object behind;
re-running the campaign simply resumes from the objects that made it to
disk.  Corrupt or mismatched objects are treated as cache misses and
recomputed, never served — and *quarantined*: the bad file is renamed to
``<hash>.corrupt`` in place (counted by ``store.quarantined`` and marked
with a ``store.quarantine`` trace event), so it stops shadowing the slot
its recomputed replacement will occupy and stays on disk for a
post-mortem instead of being silently overwritten.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

import repro.obs as obs
from repro.campaign.spec import Task

__all__ = ["ResultStore"]

_STORE_SCHEMA = 1

_OBS_HITS = obs.counter("store.hits", "store lookups served from a stored object")
_OBS_MISSES = obs.counter("store.misses", "store lookups with no stored object")
_OBS_CORRUPT = obs.counter(
    "store.corrupt", "stored objects rejected as truncated or inconsistent"
)
_OBS_PUTS = obs.counter("store.puts", "task results persisted to the store")
_OBS_PROBES = obs.counter(
    "store.probes", "stat-based existence probes (no rows served, no hit/miss)"
)
_OBS_QUARANTINED = obs.counter(
    "store.quarantined", "corrupt stored objects renamed aside to <hash>.corrupt"
)


class ResultStore:
    """Filesystem-backed map from task hash to result rows."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self._objects = self.root / "objects"

    def _path(self, task_hash: str) -> Path:
        return self._objects / task_hash[:2] / f"{task_hash}.json"

    # ------------------------------------------------------------- queries
    def __contains__(self, task: Task) -> bool:
        """Existence probe via a single ``stat`` — no parse, no hit/miss.

        Membership used to answer through :meth:`get`, paying full JSON
        deserialisation and bumping ``store.hits`` for a probe that
        serves no rows.  The fast path keeps the hit/miss counters
        meaning "rows served" (``store.probes`` counts these instead).
        A present-but-corrupt object reports ``True`` here; :meth:`get`
        still treats it as a miss and recomputes.
        """
        _OBS_PROBES.inc()
        return self._path(task.task_hash).is_file()

    def get(self, task: Task) -> Optional[List[Dict[str, Any]]]:
        """Stored rows for ``task``, or ``None`` on a miss."""
        return self.get_by_hash(task.task_hash)

    @obs.timed("store.get_s", "seconds spent looking up stored task results")
    def get_by_hash(self, task_hash: str) -> Optional[List[Dict[str, Any]]]:
        """Stored rows for a task hash, or ``None`` on a miss.

        Unreadable or inconsistent objects (truncated JSON, a payload
        whose recorded hash disagrees with its file name) count as
        misses so one bad object degrades to a recompute, not a crash.
        The two cases are told apart in telemetry (``store.misses`` vs
        ``store.corrupt``) because a corrupt object means lost compute,
        not just a cold cache.  Every corrupt object is quarantined —
        renamed to ``<hash>.corrupt`` next to its slot — so the
        recomputed result can land cleanly and the evidence survives.
        """
        path = self._path(task_hash)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            _OBS_MISSES.inc()
            return None
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            self._quarantine(path)
            return None
        if not isinstance(payload, dict) or payload.get("task_hash") != task_hash:
            self._quarantine(path)
            return None
        rows = payload.get("rows")
        if not isinstance(rows, list) or not all(isinstance(row, dict) for row in rows):
            self._quarantine(path)
            return None
        _OBS_HITS.inc()
        return rows

    @staticmethod
    def _quarantine(path: Path) -> None:
        """Move a corrupt object aside as ``<hash>.corrupt`` (best effort).

        The rename is atomic within the shard directory; a filesystem
        that refuses it (read-only store, raced deletion) degrades to
        the old leave-in-place behaviour rather than failing the lookup.
        """
        _OBS_CORRUPT.inc()
        try:
            os.replace(path, path.with_suffix(".corrupt"))
        except OSError:
            return
        _OBS_QUARANTINED.inc()
        now = obs.monotonic()
        obs.emit_span("store.quarantine", now, now, object=path.stem)

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_hashes())

    def iter_hashes(self) -> Iterator[str]:
        """All task hashes currently stored."""
        if not self._objects.is_dir():
            return
        for shard in sorted(self._objects.iterdir()):
            if not shard.is_dir():
                continue
            for entry in sorted(shard.glob("*.json")):
                yield entry.stem

    # ------------------------------------------------------------- updates
    @obs.timed("store.put_s", "seconds spent persisting task results")
    def put(self, task: Task, rows: List[Dict[str, Any]]) -> Path:
        """Atomically persist the rows of one completed task."""
        _OBS_PUTS.inc()
        path = self._path(task.task_hash)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {
                "schema": _STORE_SCHEMA,
                "task_hash": task.task_hash,
                "kind": task.kind,
                "params": task.params,
                "rows": rows,
            },
            indent=2,
            default=float,
        )
        handle = tempfile.NamedTemporaryFile(
            mode="w",
            encoding="utf-8",
            dir=path.parent,
            prefix=f".{task.task_hash[:10]}-",
            suffix=".tmp",
            delete=False,
        )
        try:
            with handle:
                handle.write(payload)
            os.replace(handle.name, path)
        # repro: allow[API001] reason=the orphaned temp file must be unlinked on any failure, including KeyboardInterrupt/SystemExit, before re-raising unchanged
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        return path

    def discard(self, task: Task) -> bool:
        """Remove one stored result; returns whether anything was deleted."""
        path = self._path(task.task_hash)
        try:
            path.unlink()
            return True
        except OSError:
            return False

    def corrupt_object(self, task_hash: str) -> bool:
        """Chaos-testing hook: truncate one stored object to garbage.

        Used by the campaign engine's :class:`~repro.faults.chaos.ChaosPlan`
        injection to exercise the quarantine/recompute path end to end;
        returns whether an object was present to mangle.  Never called
        outside chaos runs.
        """
        path = self._path(task_hash)
        if not path.is_file():
            return False
        path.write_text('{"schema": 1, "task_hash": "', encoding="utf-8")
        return True
