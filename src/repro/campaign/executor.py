"""Task executors: in-process serial and batched ``multiprocessing`` pools.

Both executors implement the same protocol — ``run(tasks, on_result,
on_failure=None)`` calls ``on_result(task, rows, telemetry)`` once per
completed task — and both produce bit-identical results for the same
task list, because every task carries its own seed and shares no state
with its siblings.  The engine (:mod:`repro.campaign.engine`) re-orders
completions back into submission order, so callers never observe
scheduling.

The parallel path is *batched*: tasks shard into :class:`TaskBatch`
units — contiguous slices of the submission order, sized
``ceil(n_tasks / (BATCHES_PER_WORKER * jobs))`` — and each batch is one
pool round-trip.  A warm :class:`concurrent.futures.ProcessPoolExecutor`
stays alive for the whole run; the worker loops
:func:`repro.campaign.tasks.run_task` over its batch so the per-task
process round-trips that made fig-sized sweeps *slower* under ``--jobs``
(0.84x at 4 workers before this rework) disappear into one dispatch,
one queue transit, and one result transfer per batch.

Bulk results ride shared memory instead of the pool's pickle pipe: when
a batch's pickled rows exceed :data:`SHM_MIN_BYTES` the worker copies
the payload into a :mod:`multiprocessing.shared_memory` segment and
sends only the descriptor; the coordinator reattaches, copies the rows
out, and unlinks the segment.  Both sides guarantee the unlink on their
error paths, so a crashed worker or an interrupted coordinator never
leaks ``/dev/shm`` entries.  Small batches fall back to plain pickle.

**Resilience.**  Both executors support bounded retry with exponential
backoff, per-task wall-clock timeouts, and graceful degradation:

* a task that raises a :class:`~repro.errors.ReproError` (or exceeds
  ``task_timeout_s``) is recorded as a *failure* inside its batch — the
  rest of the batch still completes and is delivered;
* failed tasks are re-queued (alone, as a fresh batch) up to
  ``retries`` times, after ``backoff_s * 2**attempt`` seconds of
  seeded-jitter backoff;
* a worker process that dies (broken pool) costs only the batches that
  were in flight: the pool is rebuilt and those batches re-queued at
  the next attempt, surfacing as :class:`~repro.errors.WorkerCrashError`
  only once their retry budget is spent;
* with an ``on_failure`` callback the run *degrades* instead of
  raising: exhausted tasks become :class:`TaskFailure` records and the
  sweep completes.  Without one, the first exhausted failure re-raises
  (the pre-resilience behaviour).

Retries, backoff, and timeouts are pure scheduling — a task's rows are
a function of its parameters alone, so a row produced on attempt 3 is
bit-identical to one produced on attempt 0.  The optional
:class:`~repro.faults.chaos.ChaosPlan` injects deterministic worker
crashes, result-transport failures, and slow tasks for testing these
paths; see :mod:`repro.faults.chaos`.

The :class:`TaskTelemetry` handed to ``on_result`` is pure measurement —
it never feeds back into rows or seeds.  Batch-level costs (dispatch,
queue-wait, result transfer) are amortised evenly across the batch's
members while compute is stamped per task in the worker, so the four
phases still tile each task's reported wall time exactly and batch walls
sum to the true batch interval.  The cross-process timestamp arithmetic
is sound because every stamp comes from
:func:`repro.obs.clock.monotonic` (``CLOCK_MONOTONIC`` is host-wide).

:class:`SerialExecutor` runs everything in the calling process and is
what tests and ``--jobs 1`` use; :class:`ProcessExecutor` fans batches
out over the pool.  The ``fork`` start method is preferred when the
platform offers it (workers inherit already-registered task kinds);
under ``spawn`` the workers re-import the builtin task modules via the
pool initializer, so builtin kinds work everywhere and custom kinds need
only live in an importable module.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import pickle
import signal
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

import repro.obs as obs
from repro.campaign.spec import Task
from repro.campaign.tasks import _ensure_builtins, run_task
from repro.errors import ConfigurationError, ReproError, SimulationError, WorkerCrashError
from repro.obs import metrics_snapshot, monotonic, reset_metrics
from repro.utils.rng import make_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.chaos import ChaosPlan

__all__ = [
    "BATCHES_PER_WORKER",
    "SHM_MIN_BYTES",
    "ExecutorStats",
    "ProcessExecutor",
    "SerialExecutor",
    "TaskBatch",
    "TaskFailure",
    "TaskTelemetry",
    "make_executor",
]

#: Oversubscription factor: tasks shard into ~this many batches per
#: worker, so stragglers rebalance while round-trips stay amortised.
BATCHES_PER_WORKER = 4

#: Pickled-rows size (bytes) above which a batch's results travel via a
#: shared-memory segment instead of the pool's pickle pipe.
SHM_MIN_BYTES = 64 * 1024

#: Upper bound on one backoff pause, whatever the attempt count.
_BACKOFF_CAP_S = 5.0

_OBS_RETRIES = obs.counter("executor.retries", "failed batches re-queued for another attempt")
_OBS_TIMEOUTS = obs.counter("executor.timeouts", "tasks that exceeded their wall-clock timeout")
_OBS_DEGRADED = obs.counter(
    "executor.degraded", "tasks surrendered as failure records after exhausting retries"
)
_OBS_WORKER_CRASHES = obs.counter(
    "executor.worker_crashes", "pool rebuilds after a worker process died"
)


@dataclass(frozen=True)
class TaskTelemetry:
    """Where one executed task's wall time went, plus its worker metrics.

    All timestamps are host-wide monotonic seconds.  The four phases tile
    the interval ``[submitted_s, received_s]`` exactly:

    * ``dispatch_s`` — the coordinator's ``submit`` call (serialising the
      batch into the pool's work queue), amortised over the batch;
    * ``queue_wait_s`` — this task's share of the wait until the worker
      began the batch, plus the worker-side gap before this task;
    * ``compute_s`` — ``run_task`` itself, stamped per task in the worker;
    * ``transfer_s`` — this task's share of result packing + queue/shared
      -memory transit + the coordinator's completion-loop latency.

    For batched execution the batch-level phases are divided evenly over
    the batch's members and each task's ``[submitted_s, received_s]``
    interval is synthesised around its worker compute stamps, so per-task
    walls still tile exactly and the batch's walls sum to the true
    submit-to-receipt interval.  ``metrics`` is the worker registry's
    per-task snapshot (empty for the serial executor, whose increments
    land in the coordinator's registry directly).  ``batch_index`` /
    ``batch_size`` identify the batch the task rode in (serial tasks are
    their own size-1 batch).
    """

    submitted_s: float
    received_s: float
    dispatch_s: float
    queue_wait_s: float
    compute_s: float
    transfer_s: float
    metrics: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    batch_index: int = 0
    batch_size: int = 1

    @property
    def wall_s(self) -> float:
        """Submission-to-receipt wall time of the task."""
        return self.received_s - self.submitted_s


@dataclass(frozen=True)
class TaskFailure:
    """One task surrendered after its retry budget ran out.

    ``kind`` is ``"error"`` (the task raised a :class:`ReproError`),
    ``"timeout"`` (it exceeded the per-task wall-clock budget), or
    ``"crash"`` (its worker process died).  ``attempts`` counts every
    execution attempt, including the final failed one.  Failures are
    never persisted to the result store, so a later run re-executes
    exactly the failed tasks.
    """

    task: Task
    kind: str
    message: str
    attempts: int

    def describe(self) -> str:
        """One-line form for progress output and failure tables."""
        plural = "s" if self.attempts != 1 else ""
        return (
            f"{self.task.describe()} failed ({self.kind} after "
            f"{self.attempts} attempt{plural}): {self.message}"
        )


@dataclass
class ExecutorStats:
    """Resilience accounting for one ``run()`` call (measurement only)."""

    retried: int = 0
    timeouts: int = 0
    degraded: int = 0
    worker_crashes: int = 0


OnResult = Callable[[Task, List[Dict[str, Any]], TaskTelemetry], None]
OnFailure = Callable[[TaskFailure], None]


@dataclass(frozen=True)
class TaskBatch:
    """One pool round-trip: a contiguous slice of the submission order."""

    index: int
    tasks: Tuple[Task, ...]

    def __len__(self) -> int:
        return len(self.tasks)


class _TaskTimeout(Exception):
    """Internal: a task ran past its wall-clock budget (never escapes)."""


def _alarm_handler(signum: int, frame: Any) -> None:
    raise _TaskTimeout()


def _run_task_guarded(
    task: Task, task_timeout_s: Optional[float], chaos: Optional["ChaosPlan"]
) -> List[Dict[str, Any]]:
    """``run_task`` under an optional SIGALRM wall-clock budget.

    The interval timer only works from a main thread on a POSIX host;
    elsewhere the timeout silently degrades to "no budget" rather than
    failing the task.  Chaos slow-downs sleep *inside* the alarm window
    so an injected slow task is indistinguishable from a genuinely slow
    one.  Raises :class:`_TaskTimeout` on expiry.
    """
    delay = chaos.slow_delay(task.task_hash) if chaos is not None else 0.0
    armed = (
        task_timeout_s is not None
        and task_timeout_s > 0.0
        and hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )
    if not armed:
        if delay > 0.0:
            time.sleep(delay)
        return run_task(task)
    previous = signal.signal(signal.SIGALRM, _alarm_handler)
    assert task_timeout_s is not None  # narrowed by ``armed``
    signal.setitimer(signal.ITIMER_REAL, task_timeout_s)
    try:
        if delay > 0.0:
            time.sleep(delay)
        return run_task(task)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _backoff_delay(backoff_s: float, attempt: int, rng: Any) -> float:
    """Exponential backoff with deterministic jitter (timing only).

    The jitter draw comes from a seeded generator so chaos tests pace
    identically run to run, but the value never touches task results —
    it only spaces out re-submissions.
    """
    if backoff_s <= 0.0:
        return 0.0
    base = min(backoff_s * (2.0**attempt), _BACKOFF_CAP_S)
    return float(base * (1.0 + 0.25 * rng.random()))


class SerialExecutor:
    """Execute tasks one after another in the calling process.

    Supports the same resilience knobs as :class:`ProcessExecutor`
    (bounded retry with backoff, per-task timeouts, degradation via
    ``on_failure``, chaos slow-downs) minus the crash injection — there
    is no worker process to kill.  The defaults reproduce the historical
    behaviour: no retries, no timeout, first failure raises.
    """

    jobs = 1

    def __init__(
        self,
        retries: int = 0,
        task_timeout_s: Optional[float] = None,
        backoff_s: float = 0.05,
        chaos: Optional["ChaosPlan"] = None,
    ):
        if retries < 0:
            raise ConfigurationError("retries must be >= 0")
        if task_timeout_s is not None and task_timeout_s <= 0.0:
            raise ConfigurationError("task_timeout_s must be positive (or None)")
        if backoff_s < 0.0:
            raise ConfigurationError("backoff_s must be >= 0")
        self.retries = retries
        self.task_timeout_s = task_timeout_s
        self.backoff_s = backoff_s
        self.chaos = chaos

    def run(
        self,
        tasks: Sequence[Task],
        on_result: OnResult,
        on_failure: Optional[OnFailure] = None,
    ) -> ExecutorStats:
        stats = ExecutorStats()
        backoff_rng = make_rng(self.chaos.seed if self.chaos is not None else 0, "backoff")
        for index, task in enumerate(tasks):
            for attempt in range(self.retries + 1):
                begin = monotonic()
                try:
                    rows = _run_task_guarded(task, self.task_timeout_s, self.chaos)
                except (ReproError, _TaskTimeout) as error:
                    timed_out = isinstance(error, _TaskTimeout)
                    if timed_out:
                        stats.timeouts += 1
                        _OBS_TIMEOUTS.inc()
                        assert self.task_timeout_s is not None  # alarm implies budget
                        message = f"task exceeded its {self.task_timeout_s:.3f}s budget"
                    else:
                        message = str(error)
                    if attempt < self.retries:
                        stats.retried += 1
                        _OBS_RETRIES.inc()
                        pause = _backoff_delay(self.backoff_s, attempt, backoff_rng)
                        now = monotonic()
                        obs.emit_span(
                            "campaign.retry",
                            now,
                            now,
                            task=task.describe(),
                            attempt=attempt + 1,
                            delay_s=pause,
                            reason="timeout" if timed_out else "error",
                        )
                        if pause > 0.0:
                            time.sleep(pause)
                        continue
                    failure = TaskFailure(
                        task=task,
                        kind="timeout" if timed_out else "error",
                        message=message,
                        attempts=attempt + 1,
                    )
                    if on_failure is not None:
                        stats.degraded += 1
                        _OBS_DEGRADED.inc()
                        on_failure(failure)
                        break
                    if timed_out:
                        raise SimulationError(failure.describe()) from None
                    raise
                end = monotonic()
                on_result(
                    task,
                    rows,
                    TaskTelemetry(
                        submitted_s=begin,
                        received_s=end,
                        dispatch_s=0.0,
                        queue_wait_s=0.0,
                        compute_s=end - begin,
                        transfer_s=0.0,
                        batch_index=index,
                        batch_size=1,
                    ),
                )
                break
        return stats


def _worker_init() -> None:
    """Pool initializer: make the builtin task kinds resolvable."""
    _ensure_builtins()


@dataclass(frozen=True)
class _ShmRows:
    """Descriptor of a shared-memory segment holding pickled batch rows.

    Only the descriptor crosses the process boundary; the coordinator
    reattaches by name, copies the payload out, and unlinks.  Ownership
    transfers with the descriptor — the worker unregisters the segment
    from its resource tracker when it packs one (see :func:`_pack_rows`),
    so exactly one side is responsible for the unlink.
    """

    name: str
    size: int

    def load(self) -> List[List[Dict[str, Any]]]:
        """Attach, unpickle the rows, and unconditionally unlink."""
        segment = shared_memory.SharedMemory(name=self.name)
        try:
            payload = pickle.loads(bytes(segment.buf[: self.size]))
        finally:
            # The unlink lives in the finally so a truncated or
            # unpicklable payload still releases the segment.
            segment.close()
            segment.unlink()
        if not isinstance(payload, list):  # pragma: no cover - defensive
            raise ConfigurationError("shared-memory rows payload is not a list")
        return payload

    def discard(self) -> None:
        """Release the segment without reading it (abort-path cleanup)."""
        try:
            segment = shared_memory.SharedMemory(name=self.name)
        except OSError:
            return  # already unlinked
        segment.close()
        try:
            segment.unlink()
        except OSError:  # pragma: no cover - raced with another unlink
            pass


#: Either inline rows (small batches) or a shared-memory descriptor.
_RowsPayload = Union[List[List[Dict[str, Any]]], _ShmRows]

#: Per-task worker measurement: compute start/finish stamps plus the
#: worker registry's per-task metric snapshot.
_TaskRun = Tuple[float, float, Dict[str, Dict[str, Any]]]

#: One failed task inside a batch: (position, kind, message).
_TaskFault = Tuple[int, str, str]

#: What one worker batch invocation sends back.
_BatchResult = Tuple[int, _RowsPayload, List[_TaskRun], List[_TaskFault]]


def _untrack_segment(segment: shared_memory.SharedMemory) -> None:
    """Detach a segment from this process's resource tracker.

    The descriptor hands ownership to the coordinator, which unlinks
    after copying the rows out.  Without this, the worker-side tracker
    (a separate one per process under ``spawn``) would see the segment
    as leaked at pool shutdown and spam warnings while re-unlinking.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(
            getattr(segment, "_name", segment.name), "shared_memory"
        )
    # repro: allow[API001] reason=resource_tracker internals vary across CPython minors; tracker bookkeeping must never fail a batch that already computed
    except Exception:  # pragma: no cover - tracker internals unavailable
        pass


def _pack_rows(
    rows_per_task: List[List[Dict[str, Any]]], shm_threshold: int
) -> _RowsPayload:
    """Choose the transport for a batch's rows (worker side).

    Small payloads return as-is and ride the pool's pickle pipe; bulk
    payloads are pickled once into a fresh shared-memory segment whose
    descriptor alone crosses the boundary.  Creation and copy-in are
    guarded so any failure unlinks the segment before re-raising — a
    crashing worker never leaves a stale ``/dev/shm`` entry behind.
    """
    blob = pickle.dumps(rows_per_task, protocol=pickle.HIGHEST_PROTOCOL)
    if len(blob) < shm_threshold:
        return rows_per_task
    segment = shared_memory.SharedMemory(create=True, size=len(blob))
    # Guaranteed-unlink error path: any failure between create and
    # hand-off (including KeyboardInterrupt) releases the segment before
    # the exception propagates, so a crashed worker cannot leak it.
    handed_off = False
    try:
        segment.buf[: len(blob)] = blob
        _untrack_segment(segment)
        handed_off = True
    finally:
        if not handed_off:
            segment.close()
            segment.unlink()
    segment.close()
    return _ShmRows(name=segment.name, size=len(blob))


def _execute_batch(
    batch: TaskBatch,
    shm_threshold: int,
    attempt: int = 0,
    task_timeout_s: Optional[float] = None,
    chaos: Optional["ChaosPlan"] = None,
) -> _BatchResult:
    """Top-level worker entry point (must be picklable).

    Loops ``run_task`` over the batch so its tasks share one process
    round-trip.  The worker's metrics registry is reset before each task
    so every returned snapshot is that task's delta — fork-started
    workers inherit the coordinator's counter values, which must not be
    re-merged — and compute is stamped per task so batch telemetry can
    amortise only the true batch-level overheads.

    A task that raises a :class:`ReproError` or exceeds
    ``task_timeout_s`` becomes a ``(position, kind, message)`` fault
    entry (with an empty rows placeholder, so positions stay aligned);
    the remaining tasks in the batch still execute.  Injected chaos
    crashes fire *between* tasks — a real crash can land anywhere, but
    firing at a task boundary keeps the shm pack/hand-off paths out of
    the blast radius, which is exactly the guarantee ``_pack_rows``
    already provides for in-task failures.
    """
    rows_per_task: List[List[Dict[str, Any]]] = []
    runs: List[_TaskRun] = []
    faults: List[_TaskFault] = []
    crash_at = -1
    if chaos is not None and chaos.should_crash(batch.index, attempt):
        crash_at = chaos.crash_position(batch.index, attempt, len(batch.tasks))
    for position, task in enumerate(batch.tasks):
        if position == crash_at:
            os._exit(13)  # simulated hard worker death (chaos injection)
        reset_metrics()
        started_s = monotonic()
        try:
            rows: List[Dict[str, Any]] = _run_task_guarded(task, task_timeout_s, chaos)
        except _TaskTimeout:
            assert task_timeout_s is not None  # the alarm only arms with a budget
            faults.append(
                (position, "timeout", f"task exceeded its {task_timeout_s:.3f}s budget")
            )
            rows = []
        except ReproError as error:
            faults.append((position, "error", str(error)))
            rows = []
        finished_s = monotonic()
        rows_per_task.append(rows)
        runs.append((started_s, finished_s, metrics_snapshot()))
    return batch.index, _pack_rows(rows_per_task, shm_threshold), runs, faults


class ProcessExecutor:
    """Execute tasks in batches on a warm pool of ``jobs`` workers.

    Parameters
    ----------
    jobs:
        Worker process count (>= 1).
    max_in_flight:
        How many *batches* may be submitted to the pool at once; bounding
        it keeps completion callbacks (store writes, progress) flowing
        during very large sweeps instead of after full submission.
        ``None`` (the default) means ``4 * jobs``; explicit values must
        be positive.
    batch_size:
        Tasks per batch.  ``None`` derives
        ``ceil(n_tasks / (BATCHES_PER_WORKER * jobs))`` at run time;
        explicit values must be positive (``1`` reproduces the old
        one-round-trip-per-task behaviour).
    shm_threshold:
        Pickled-rows size in bytes at which a batch's results switch
        from the pool's pickle pipe to a shared-memory segment.
    start_method:
        Optional :mod:`multiprocessing` start method override (``"fork"``
        or ``"spawn"``); ``None`` prefers ``fork`` where available.
    retries:
        How many times a failed task (or a crash-lost batch) may be
        re-queued before it is surrendered.  ``0`` (the default) keeps
        the historical fail-fast behaviour.
    task_timeout_s:
        Per-task wall-clock budget enforced in the worker via an
        interval timer; ``None`` disables it.
    backoff_s:
        Base of the exponential re-queue backoff (seconds); attempt
        ``n`` waits ``backoff_s * 2**n`` plus deterministic jitter.
    chaos:
        Optional :class:`~repro.faults.chaos.ChaosPlan` injecting
        worker crashes, transport failures, and slow tasks (testing).
    """

    def __init__(
        self,
        jobs: int,
        max_in_flight: Optional[int] = None,
        batch_size: Optional[int] = None,
        shm_threshold: int = SHM_MIN_BYTES,
        start_method: Optional[str] = None,
        retries: int = 0,
        task_timeout_s: Optional[float] = None,
        backoff_s: float = 0.05,
        chaos: Optional["ChaosPlan"] = None,
    ):
        if jobs < 1:
            raise ConfigurationError("jobs must be >= 1")
        if max_in_flight is not None and max_in_flight < 1:
            raise ConfigurationError(
                "max_in_flight must be >= 1 (or None for the 4*jobs default)"
            )
        if batch_size is not None and batch_size < 1:
            raise ConfigurationError(
                "batch_size must be >= 1 (or None to derive from the task count)"
            )
        if shm_threshold < 0:
            raise ConfigurationError("shm_threshold must be >= 0")
        if retries < 0:
            raise ConfigurationError("retries must be >= 0")
        if task_timeout_s is not None and task_timeout_s <= 0.0:
            raise ConfigurationError("task_timeout_s must be positive (or None)")
        if backoff_s < 0.0:
            raise ConfigurationError("backoff_s must be >= 0")
        self.jobs = jobs
        self.max_in_flight = 4 * jobs if max_in_flight is None else max_in_flight
        self.batch_size = batch_size
        self.shm_threshold = shm_threshold
        self.start_method = start_method
        self.retries = retries
        self.task_timeout_s = task_timeout_s
        self.backoff_s = backoff_s
        self.chaos = chaos

    def _context(self) -> Any:
        methods = multiprocessing.get_all_start_methods()
        if self.start_method is not None:
            if self.start_method not in methods:
                raise ConfigurationError(
                    f"start method {self.start_method!r} is unavailable here; "
                    f"this platform offers: {', '.join(methods)}"
                )
            return multiprocessing.get_context(self.start_method)
        return multiprocessing.get_context("fork" if "fork" in methods else "spawn")

    def shard(self, tasks: Sequence[Task]) -> List[TaskBatch]:
        """Slice the submission order into worker-sized batches."""
        if not tasks:
            return []
        size = self.batch_size
        if size is None:
            size = max(1, math.ceil(len(tasks) / (BATCHES_PER_WORKER * self.jobs)))
        return [
            TaskBatch(index=index, tasks=tuple(tasks[offset: offset + size]))
            for index, offset in enumerate(range(0, len(tasks), size))
        ]

    def _make_pool(self, batches: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=min(self.jobs, max(1, batches)),
            mp_context=self._context(),
            initializer=_worker_init,
        )

    def run(
        self,
        tasks: Sequence[Task],
        on_result: OnResult,
        on_failure: Optional[OnFailure] = None,
    ) -> ExecutorStats:
        stats = ExecutorStats()
        batches = self.shard(list(tasks))
        if not batches:
            return stats
        backoff_rng = make_rng(self.chaos.seed if self.chaos is not None else 0, "backoff")
        # Batches awaiting submission / backoff-delayed re-queues; every
        # entry is paired with its attempt count so retry budgets follow
        # a batch through pool rebuilds.
        ready: Deque[Tuple[TaskBatch, int]] = deque((batch, 0) for batch in batches)
        delayed: List[Tuple[float, TaskBatch, int]] = []
        in_flight: Dict["Future[_BatchResult]", Tuple[TaskBatch, int]] = {}
        stamps: Dict["Future[_BatchResult]", Tuple[float, float]] = {}
        delivered = 0
        pool = self._make_pool(len(batches))
        try:
            while ready or delayed or in_flight:
                try:
                    now = monotonic()
                    if delayed:
                        due = [entry for entry in delayed if entry[0] <= now]
                        delayed = [entry for entry in delayed if entry[0] > now]
                        ready.extend((batch, attempt) for _, batch, attempt in due)
                    while ready and len(in_flight) < self.max_in_flight:
                        batch, attempt = ready.popleft()
                        submitted_s = monotonic()
                        future = pool.submit(
                            _execute_batch,
                            batch,
                            self.shm_threshold,
                            attempt,
                            self.task_timeout_s,
                            self.chaos,
                        )
                        stamps[future] = (submitted_s, monotonic())
                        in_flight[future] = (batch, attempt)
                    if not in_flight:
                        # Only backoff-delayed batches remain: pause until
                        # the earliest is due, then loop to release it.
                        pause = min(entry[0] for entry in delayed) - monotonic()
                        if pause > 0.0:
                            time.sleep(pause)
                        continue
                    timeout = None
                    if delayed:
                        wake = min(entry[0] for entry in delayed)
                        timeout = max(0.0, wake - monotonic())
                    done, _ = wait(
                        list(in_flight), timeout=timeout, return_when=FIRST_COMPLETED
                    )
                    for future in done:
                        batch, attempt = in_flight[future]
                        # The future stays in the in-flight map until its
                        # result is consumed, so a broken-pool error here
                        # re-queues this batch along with the others.
                        _, payload, runs, faults = future.result()
                        del in_flight[future]
                        submitted_s, dispatched_s = stamps.pop(future)
                        if self.chaos is not None and self.chaos.should_fail_shm(
                            batch.index, attempt
                        ):
                            if isinstance(payload, _ShmRows):
                                payload.discard()
                            self._requeue(
                                batch,
                                attempt,
                                "error",
                                "injected result-transport failure",
                                delayed,
                                stats,
                                on_failure,
                                backoff_rng,
                            )
                            continue
                        rows_per_task = (
                            payload.load() if isinstance(payload, _ShmRows) else payload
                        )
                        received_s = monotonic()
                        delivered += _deliver_batch(
                            batch,
                            rows_per_task,
                            runs,
                            submitted_s,
                            dispatched_s,
                            received_s,
                            on_result,
                            skip={position for position, _, _ in faults},
                        )
                        if faults:
                            timeouts = sum(1 for _, kind, _ in faults if kind == "timeout")
                            stats.timeouts += timeouts
                            if timeouts:
                                _OBS_TIMEOUTS.inc(timeouts)
                            retry_batch = TaskBatch(
                                index=batch.index,
                                tasks=tuple(
                                    batch.tasks[position] for position, _, _ in faults
                                ),
                            )
                            self._requeue(
                                retry_batch,
                                attempt,
                                faults[0][1],
                                faults[0][2],
                                delayed,
                                stats,
                                on_failure,
                                backoff_rng,
                                faults=faults,
                                source=batch,
                            )
                except BrokenProcessPool:
                    pool = self._recover_crash(
                        pool,
                        in_flight,
                        stamps,
                        delayed,
                        stats,
                        on_failure,
                        delivered,
                        backoff_rng,
                    )
        # repro: allow[API001] reason=deterministic teardown on any failure (worker crashes outside the repro.errors taxonomy, KeyboardInterrupt): cancel queued batches, stop the pool, drain stamps, release shm segments, then re-raise unchanged
        except BaseException:
            self._abort(pool, in_flight, stamps)
            raise
        pool.shutdown(wait=True)
        return stats

    def _requeue(
        self,
        batch: TaskBatch,
        attempt: int,
        kind: str,
        message: str,
        delayed: List[Tuple[float, TaskBatch, int]],
        stats: ExecutorStats,
        on_failure: Optional[OnFailure],
        backoff_rng: Any,
        faults: Optional[List[_TaskFault]] = None,
        source: Optional[TaskBatch] = None,
    ) -> None:
        """Schedule a failed batch for another attempt — or surrender it.

        Within budget, the batch re-queues after an exponential-backoff
        pause (a ``campaign.retry`` trace event marks it).  Out of
        budget, each task becomes a :class:`TaskFailure` handed to
        ``on_failure``; without a handler the first failure re-raises as
        the pre-resilience behaviour did.
        """
        if attempt < self.retries:
            stats.retried += 1
            _OBS_RETRIES.inc()
            pause = _backoff_delay(self.backoff_s, attempt, backoff_rng)
            now = monotonic()
            obs.emit_span(
                "campaign.retry",
                now,
                now,
                batch=batch.index,
                tasks=len(batch.tasks),
                attempt=attempt + 1,
                delay_s=pause,
                reason=kind,
            )
            delayed.append((now + pause, batch, attempt + 1))
            return
        per_task = (
            faults
            if faults is not None
            else [(position, kind, message) for position in range(len(batch.tasks))]
        )
        failures = [
            TaskFailure(
                task=(source or batch).tasks[position],
                kind=fault_kind,
                message=fault_message,
                attempts=attempt + 1,
            )
            for position, fault_kind, fault_message in per_task
        ]
        if on_failure is not None:
            for failure in failures:
                stats.degraded += 1
                _OBS_DEGRADED.inc()
                on_failure(failure)
            return
        first = failures[0]
        if first.kind == "error":
            # Preserve the historical contract: the worker's ReproError
            # message propagates verbatim to the caller.
            raise SimulationError(first.message)
        raise SimulationError(first.describe())

    def _recover_crash(
        self,
        pool: ProcessPoolExecutor,
        in_flight: Dict["Future[_BatchResult]", Tuple[TaskBatch, int]],
        stamps: Dict["Future[_BatchResult]", Tuple[float, float]],
        delayed: List[Tuple[float, TaskBatch, int]],
        stats: ExecutorStats,
        on_failure: Optional[OnFailure],
        delivered: int,
        backoff_rng: Any,
    ) -> ProcessPoolExecutor:
        """Rebuild the pool after a worker died; re-queue the lost batches.

        Every in-flight batch is charged one attempt (the pool cannot
        say which worker held which batch), shm payloads of batches that
        completed but were never consumed are released, and a fresh pool
        replaces the broken one.  A batch whose budget is spent raises
        :class:`WorkerCrashError` — or degrades into per-task ``"crash"``
        failures when ``on_failure`` is set.
        """
        stats.worker_crashes += 1
        _OBS_WORKER_CRASHES.inc()
        lost = list(in_flight.values())
        for future in list(in_flight):
            if not future.done() or future.cancelled():
                continue
            try:
                result = future.result()
            # repro: allow[API001] reason=crash-recovery sweep over sibling futures; their own errors (whatever the type) are superseded by the pool rebuild
            except BaseException:
                continue
            payload = result[1]
            if isinstance(payload, _ShmRows):
                payload.discard()
        in_flight.clear()
        stamps.clear()
        pool.shutdown(wait=False, cancel_futures=True)
        for batch, attempt in lost:
            if attempt >= self.retries and on_failure is None:
                raise WorkerCrashError(
                    f"worker process died running batch {batch.index} "
                    f"(attempt {attempt + 1} of {self.retries + 1}); "
                    f"{delivered} tasks had completed and are persisted",
                    batch_index=batch.index,
                    completed=delivered,
                )
        for batch, attempt in lost:
            self._requeue(
                batch,
                attempt,
                "crash",
                "worker process died mid-batch",
                delayed,
                stats,
                on_failure,
                backoff_rng,
            )
        return self._make_pool(max(1, len(lost)))

    @staticmethod
    def _abort(
        pool: ProcessPoolExecutor,
        in_flight: Dict["Future[_BatchResult]", Tuple[TaskBatch, int]],
        stamps: Dict["Future[_BatchResult]", Tuple[float, float]],
    ) -> None:
        """Deterministic teardown after a failure mid-sweep.

        Cancels every queued batch, waits for running ones to finish (a
        worker cannot be interrupted mid-task), releases the shared
        -memory segments of batches that completed but were never
        consumed, and drains the stamp map — so a crashed sweep leaves
        no abandoned futures, no stale ``/dev/shm`` entries, and a store
        whose already-persisted tasks resume cleanly on the next run.
        """
        pool.shutdown(wait=True, cancel_futures=True)
        for future in list(in_flight):
            if not future.done() or future.cancelled():
                continue
            try:
                result = future.result()
            # repro: allow[API001] reason=abort-path sweep over sibling futures; their own exceptions (whatever the type) are not the error being propagated
            except BaseException:
                continue
            payload = result[1]
            if isinstance(payload, _ShmRows):
                payload.discard()
        in_flight.clear()
        stamps.clear()


def _deliver_batch(
    batch: TaskBatch,
    rows_per_task: List[List[Dict[str, Any]]],
    runs: List[_TaskRun],
    submitted_s: float,
    dispatched_s: float,
    received_s: float,
    on_result: OnResult,
    skip: Optional[Set[int]] = None,
) -> int:
    """Emit per-task results with phases that tile each task's wall.

    Batch-level costs are amortised evenly: ``dispatch`` (submit call),
    the wait until the worker began the first task, and the post-compute
    transfer (result packing + transit + completion-loop latency) are
    each divided by the batch size.  Worker-side gaps between consecutive
    tasks (metric snapshotting, loop overhead) land in the following
    task's queue-wait.  Each task's ``[submitted_s, received_s]`` is
    synthesised around its own compute stamps so the four phases tile it
    exactly and the batch's walls telescope to the true batch interval.
    Positions in ``skip`` (failed tasks awaiting retry) are excluded from
    delivery but still advance the timeline; returns the delivered count.
    """
    if len(rows_per_task) != len(batch.tasks) or len(runs) != len(batch.tasks):
        raise ConfigurationError(
            f"batch {batch.index} returned {len(rows_per_task)} row lists / "
            f"{len(runs)} runs for {len(batch.tasks)} tasks"
        )
    skipped = skip or set()
    count = len(batch.tasks)
    dispatch_share = (dispatched_s - submitted_s) / count
    queue_share = (runs[0][0] - dispatched_s) / count
    transfer_share = (received_s - runs[-1][1]) / count
    previous_finish = runs[0][0]
    delivered = 0
    for position, (task, (started_s, finished_s, snapshot), rows) in enumerate(
        zip(batch.tasks, runs, rows_per_task)
    ):
        queue_wait_s = queue_share + (started_s - previous_finish)
        previous_finish = finished_s
        if position in skipped:
            continue
        delivered += 1
        on_result(
            task,
            rows,
            TaskTelemetry(
                submitted_s=started_s - queue_wait_s - dispatch_share,
                received_s=finished_s + transfer_share,
                dispatch_s=dispatch_share,
                queue_wait_s=queue_wait_s,
                compute_s=finished_s - started_s,
                transfer_s=transfer_share,
                metrics=snapshot,
                batch_index=batch.index,
                batch_size=count,
            ),
        )
    return delivered


def make_executor(
    jobs: int,
    batch_size: Optional[int] = None,
    retries: int = 0,
    task_timeout_s: Optional[float] = None,
    backoff_s: float = 0.05,
    chaos: Optional["ChaosPlan"] = None,
) -> Union[SerialExecutor, ProcessExecutor]:
    """Executor for a worker count: serial at 1, a batched pool above."""
    if jobs < 1:
        raise ConfigurationError("jobs must be >= 1")
    if jobs == 1:
        return SerialExecutor(
            retries=retries,
            task_timeout_s=task_timeout_s,
            backoff_s=backoff_s,
            chaos=chaos,
        )
    return ProcessExecutor(
        jobs,
        batch_size=batch_size,
        retries=retries,
        task_timeout_s=task_timeout_s,
        backoff_s=backoff_s,
        chaos=chaos,
    )
