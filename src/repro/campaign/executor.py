"""Task executors: in-process serial and batched ``multiprocessing`` pools.

Both executors implement the same protocol — ``run(tasks, on_result)``
calls ``on_result(task, rows, telemetry)`` once per task — and both
produce bit-identical results for the same task list, because every task
carries its own seed and shares no state with its siblings.  The engine
(:mod:`repro.campaign.engine`) re-orders completions back into
submission order, so callers never observe scheduling.

The parallel path is *batched*: tasks shard into :class:`TaskBatch`
units — contiguous slices of the submission order, sized
``ceil(n_tasks / (BATCHES_PER_WORKER * jobs))`` — and each batch is one
pool round-trip.  A warm :class:`concurrent.futures.ProcessPoolExecutor`
stays alive for the whole run; the worker loops
:func:`repro.campaign.tasks.run_task` over its batch so the per-task
process round-trips that made fig-sized sweeps *slower* under ``--jobs``
(0.84x at 4 workers before this rework) disappear into one dispatch,
one queue transit, and one result transfer per batch.

Bulk results ride shared memory instead of the pool's pickle pipe: when
a batch's pickled rows exceed :data:`SHM_MIN_BYTES` the worker copies
the payload into a :mod:`multiprocessing.shared_memory` segment and
sends only the descriptor; the coordinator reattaches, copies the rows
out, and unlinks the segment.  Both sides guarantee the unlink on their
error paths, so a crashed worker or an interrupted coordinator never
leaks ``/dev/shm`` entries.  Small batches fall back to plain pickle.

The :class:`TaskTelemetry` handed to ``on_result`` is pure measurement —
it never feeds back into rows or seeds.  Batch-level costs (dispatch,
queue-wait, result transfer) are amortised evenly across the batch's
members while compute is stamped per task in the worker, so the four
phases still tile each task's reported wall time exactly and batch walls
sum to the true batch interval.  The cross-process timestamp arithmetic
is sound because every stamp comes from
:func:`repro.obs.clock.monotonic` (``CLOCK_MONOTONIC`` is host-wide).

:class:`SerialExecutor` runs everything in the calling process and is
what tests and ``--jobs 1`` use; :class:`ProcessExecutor` fans batches
out over the pool.  The ``fork`` start method is preferred when the
platform offers it (workers inherit already-registered task kinds);
under ``spawn`` the workers re-import the builtin task modules via the
pool initializer, so builtin kinds work everywhere and custom kinds need
only live in an importable module.
"""

from __future__ import annotations

import math
import multiprocessing
import pickle
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.campaign.spec import Task
from repro.campaign.tasks import _ensure_builtins, run_task
from repro.errors import ConfigurationError
from repro.obs import metrics_snapshot, monotonic, reset_metrics

__all__ = [
    "BATCHES_PER_WORKER",
    "SHM_MIN_BYTES",
    "ProcessExecutor",
    "SerialExecutor",
    "TaskBatch",
    "TaskTelemetry",
    "make_executor",
]

#: Oversubscription factor: tasks shard into ~this many batches per
#: worker, so stragglers rebalance while round-trips stay amortised.
BATCHES_PER_WORKER = 4

#: Pickled-rows size (bytes) above which a batch's results travel via a
#: shared-memory segment instead of the pool's pickle pipe.
SHM_MIN_BYTES = 64 * 1024


@dataclass(frozen=True)
class TaskTelemetry:
    """Where one executed task's wall time went, plus its worker metrics.

    All timestamps are host-wide monotonic seconds.  The four phases tile
    the interval ``[submitted_s, received_s]`` exactly:

    * ``dispatch_s`` — the coordinator's ``submit`` call (serialising the
      batch into the pool's work queue), amortised over the batch;
    * ``queue_wait_s`` — this task's share of the wait until the worker
      began the batch, plus the worker-side gap before this task;
    * ``compute_s`` — ``run_task`` itself, stamped per task in the worker;
    * ``transfer_s`` — this task's share of result packing + queue/shared
      -memory transit + the coordinator's completion-loop latency.

    For batched execution the batch-level phases are divided evenly over
    the batch's members and each task's ``[submitted_s, received_s]``
    interval is synthesised around its worker compute stamps, so per-task
    walls still tile exactly and the batch's walls sum to the true
    submit-to-receipt interval.  ``metrics`` is the worker registry's
    per-task snapshot (empty for the serial executor, whose increments
    land in the coordinator's registry directly).  ``batch_index`` /
    ``batch_size`` identify the batch the task rode in (serial tasks are
    their own size-1 batch).
    """

    submitted_s: float
    received_s: float
    dispatch_s: float
    queue_wait_s: float
    compute_s: float
    transfer_s: float
    metrics: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    batch_index: int = 0
    batch_size: int = 1

    @property
    def wall_s(self) -> float:
        """Submission-to-receipt wall time of the task."""
        return self.received_s - self.submitted_s


OnResult = Callable[[Task, List[Dict[str, Any]], TaskTelemetry], None]


@dataclass(frozen=True)
class TaskBatch:
    """One pool round-trip: a contiguous slice of the submission order."""

    index: int
    tasks: Tuple[Task, ...]

    def __len__(self) -> int:
        return len(self.tasks)


class SerialExecutor:
    """Execute tasks one after another in the calling process."""

    jobs = 1

    def run(self, tasks: Sequence[Task], on_result: OnResult) -> None:
        for index, task in enumerate(tasks):
            begin = monotonic()
            rows = run_task(task)
            end = monotonic()
            on_result(
                task,
                rows,
                TaskTelemetry(
                    submitted_s=begin,
                    received_s=end,
                    dispatch_s=0.0,
                    queue_wait_s=0.0,
                    compute_s=end - begin,
                    transfer_s=0.0,
                    batch_index=index,
                    batch_size=1,
                ),
            )


def _worker_init() -> None:
    """Pool initializer: make the builtin task kinds resolvable."""
    _ensure_builtins()


@dataclass(frozen=True)
class _ShmRows:
    """Descriptor of a shared-memory segment holding pickled batch rows.

    Only the descriptor crosses the process boundary; the coordinator
    reattaches by name, copies the payload out, and unlinks.  Ownership
    transfers with the descriptor — the worker unregisters the segment
    from its resource tracker when it packs one (see :func:`_pack_rows`),
    so exactly one side is responsible for the unlink.
    """

    name: str
    size: int

    def load(self) -> List[List[Dict[str, Any]]]:
        """Attach, unpickle the rows, and unconditionally unlink."""
        segment = shared_memory.SharedMemory(name=self.name)
        try:
            payload = pickle.loads(bytes(segment.buf[: self.size]))
        finally:
            # The unlink lives in the finally so a truncated or
            # unpicklable payload still releases the segment.
            segment.close()
            segment.unlink()
        if not isinstance(payload, list):  # pragma: no cover - defensive
            raise ConfigurationError("shared-memory rows payload is not a list")
        return payload

    def discard(self) -> None:
        """Release the segment without reading it (abort-path cleanup)."""
        try:
            segment = shared_memory.SharedMemory(name=self.name)
        except OSError:
            return  # already unlinked
        segment.close()
        try:
            segment.unlink()
        except OSError:  # pragma: no cover - raced with another unlink
            pass


#: Either inline rows (small batches) or a shared-memory descriptor.
_RowsPayload = Union[List[List[Dict[str, Any]]], _ShmRows]

#: Per-task worker measurement: compute start/finish stamps plus the
#: worker registry's per-task metric snapshot.
_TaskRun = Tuple[float, float, Dict[str, Dict[str, Any]]]

#: What one worker batch invocation sends back.
_BatchResult = Tuple[int, _RowsPayload, List[_TaskRun]]


def _untrack_segment(segment: shared_memory.SharedMemory) -> None:
    """Detach a segment from this process's resource tracker.

    The descriptor hands ownership to the coordinator, which unlinks
    after copying the rows out.  Without this, the worker-side tracker
    (a separate one per process under ``spawn``) would see the segment
    as leaked at pool shutdown and spam warnings while re-unlinking.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(
            getattr(segment, "_name", segment.name), "shared_memory"
        )
    # repro: allow[API001] reason=resource_tracker internals vary across CPython minors; tracker bookkeeping must never fail a batch that already computed
    except Exception:  # pragma: no cover - tracker internals unavailable
        pass


def _pack_rows(
    rows_per_task: List[List[Dict[str, Any]]], shm_threshold: int
) -> _RowsPayload:
    """Choose the transport for a batch's rows (worker side).

    Small payloads return as-is and ride the pool's pickle pipe; bulk
    payloads are pickled once into a fresh shared-memory segment whose
    descriptor alone crosses the boundary.  Creation and copy-in are
    guarded so any failure unlinks the segment before re-raising — a
    crashing worker never leaves a stale ``/dev/shm`` entry behind.
    """
    blob = pickle.dumps(rows_per_task, protocol=pickle.HIGHEST_PROTOCOL)
    if len(blob) < shm_threshold:
        return rows_per_task
    segment = shared_memory.SharedMemory(create=True, size=len(blob))
    # Guaranteed-unlink error path: any failure between create and
    # hand-off (including KeyboardInterrupt) releases the segment before
    # the exception propagates, so a crashed worker cannot leak it.
    handed_off = False
    try:
        segment.buf[: len(blob)] = blob
        _untrack_segment(segment)
        handed_off = True
    finally:
        if not handed_off:
            segment.close()
            segment.unlink()
    segment.close()
    return _ShmRows(name=segment.name, size=len(blob))


def _execute_batch(batch: TaskBatch, shm_threshold: int) -> _BatchResult:
    """Top-level worker entry point (must be picklable).

    Loops ``run_task`` over the batch so its tasks share one process
    round-trip.  The worker's metrics registry is reset before each task
    so every returned snapshot is that task's delta — fork-started
    workers inherit the coordinator's counter values, which must not be
    re-merged — and compute is stamped per task so batch telemetry can
    amortise only the true batch-level overheads.
    """
    rows_per_task: List[List[Dict[str, Any]]] = []
    runs: List[_TaskRun] = []
    for task in batch.tasks:
        reset_metrics()
        started_s = monotonic()
        rows = run_task(task)
        finished_s = monotonic()
        rows_per_task.append(rows)
        runs.append((started_s, finished_s, metrics_snapshot()))
    return batch.index, _pack_rows(rows_per_task, shm_threshold), runs


class ProcessExecutor:
    """Execute tasks in batches on a warm pool of ``jobs`` workers.

    Parameters
    ----------
    jobs:
        Worker process count (>= 1).
    max_in_flight:
        How many *batches* may be submitted to the pool at once; bounding
        it keeps completion callbacks (store writes, progress) flowing
        during very large sweeps instead of after full submission.
        ``None`` (the default) means ``4 * jobs``; explicit values must
        be positive.
    batch_size:
        Tasks per batch.  ``None`` derives
        ``ceil(n_tasks / (BATCHES_PER_WORKER * jobs))`` at run time;
        explicit values must be positive (``1`` reproduces the old
        one-round-trip-per-task behaviour).
    shm_threshold:
        Pickled-rows size in bytes at which a batch's results switch
        from the pool's pickle pipe to a shared-memory segment.
    start_method:
        Optional :mod:`multiprocessing` start method override (``"fork"``
        or ``"spawn"``); ``None`` prefers ``fork`` where available.
    """

    def __init__(
        self,
        jobs: int,
        max_in_flight: Optional[int] = None,
        batch_size: Optional[int] = None,
        shm_threshold: int = SHM_MIN_BYTES,
        start_method: Optional[str] = None,
    ):
        if jobs < 1:
            raise ConfigurationError("jobs must be >= 1")
        if max_in_flight is not None and max_in_flight < 1:
            raise ConfigurationError(
                "max_in_flight must be >= 1 (or None for the 4*jobs default)"
            )
        if batch_size is not None and batch_size < 1:
            raise ConfigurationError(
                "batch_size must be >= 1 (or None to derive from the task count)"
            )
        if shm_threshold < 0:
            raise ConfigurationError("shm_threshold must be >= 0")
        self.jobs = jobs
        self.max_in_flight = 4 * jobs if max_in_flight is None else max_in_flight
        self.batch_size = batch_size
        self.shm_threshold = shm_threshold
        self.start_method = start_method

    def _context(self) -> Any:
        methods = multiprocessing.get_all_start_methods()
        if self.start_method is not None:
            if self.start_method not in methods:
                raise ConfigurationError(
                    f"start method {self.start_method!r} is unavailable here; "
                    f"this platform offers: {', '.join(methods)}"
                )
            return multiprocessing.get_context(self.start_method)
        return multiprocessing.get_context("fork" if "fork" in methods else "spawn")

    def shard(self, tasks: Sequence[Task]) -> List[TaskBatch]:
        """Slice the submission order into worker-sized batches."""
        if not tasks:
            return []
        size = self.batch_size
        if size is None:
            size = max(1, math.ceil(len(tasks) / (BATCHES_PER_WORKER * self.jobs)))
        return [
            TaskBatch(index=index, tasks=tuple(tasks[offset: offset + size]))
            for index, offset in enumerate(range(0, len(tasks), size))
        ]

    def run(self, tasks: Sequence[Task], on_result: OnResult) -> None:
        batches = self.shard(list(tasks))
        if not batches:
            return
        with ProcessPoolExecutor(
            max_workers=min(self.jobs, len(batches)),
            mp_context=self._context(),
            initializer=_worker_init,
        ) as pool:
            in_flight: Dict[Future[_BatchResult], TaskBatch] = {}
            stamps: Dict[Future[_BatchResult], Tuple[float, float]] = {}
            cursor = 0
            try:
                while cursor < len(batches) or in_flight:
                    while cursor < len(batches) and len(in_flight) < self.max_in_flight:
                        submitted_s = monotonic()
                        future = pool.submit(
                            _execute_batch, batches[cursor], self.shm_threshold
                        )
                        stamps[future] = (submitted_s, monotonic())
                        in_flight[future] = batches[cursor]
                        cursor += 1
                    done, _ = wait(list(in_flight), return_when=FIRST_COMPLETED)
                    for future in done:
                        batch = in_flight.pop(future)
                        _, payload, runs = future.result()
                        rows_per_task = (
                            payload.load() if isinstance(payload, _ShmRows) else payload
                        )
                        received_s = monotonic()
                        submitted_s, dispatched_s = stamps.pop(future)
                        _deliver_batch(
                            batch,
                            rows_per_task,
                            runs,
                            submitted_s,
                            dispatched_s,
                            received_s,
                            on_result,
                        )
            # repro: allow[API001] reason=deterministic teardown on any failure (worker crashes outside the repro.errors taxonomy, KeyboardInterrupt): cancel queued batches, stop the pool, drain stamps, release shm segments, then re-raise unchanged
            except BaseException:
                self._abort(pool, in_flight, stamps)
                raise

    @staticmethod
    def _abort(
        pool: ProcessPoolExecutor,
        in_flight: Dict["Future[_BatchResult]", TaskBatch],
        stamps: Dict["Future[_BatchResult]", Tuple[float, float]],
    ) -> None:
        """Deterministic teardown after a failure mid-sweep.

        Cancels every queued batch, waits for running ones to finish (a
        worker cannot be interrupted mid-task), releases the shared
        -memory segments of batches that completed but were never
        consumed, and drains the stamp map — so a crashed sweep leaves
        no abandoned futures, no stale ``/dev/shm`` entries, and a store
        whose already-persisted tasks resume cleanly on the next run.
        """
        pool.shutdown(wait=True, cancel_futures=True)
        for future in list(in_flight):
            if not future.done() or future.cancelled():
                continue
            try:
                _, payload, _ = future.result()
            # repro: allow[API001] reason=abort-path sweep over sibling futures; their own exceptions (whatever the type) are not the error being propagated
            except BaseException:
                continue
            if isinstance(payload, _ShmRows):
                payload.discard()
        in_flight.clear()
        stamps.clear()


def _deliver_batch(
    batch: TaskBatch,
    rows_per_task: List[List[Dict[str, Any]]],
    runs: List[_TaskRun],
    submitted_s: float,
    dispatched_s: float,
    received_s: float,
    on_result: OnResult,
) -> None:
    """Emit per-task results with phases that tile each task's wall.

    Batch-level costs are amortised evenly: ``dispatch`` (submit call),
    the wait until the worker began the first task, and the post-compute
    transfer (result packing + transit + completion-loop latency) are
    each divided by the batch size.  Worker-side gaps between consecutive
    tasks (metric snapshotting, loop overhead) land in the following
    task's queue-wait.  Each task's ``[submitted_s, received_s]`` is
    synthesised around its own compute stamps so the four phases tile it
    exactly and the batch's walls telescope to the true batch interval.
    """
    if len(rows_per_task) != len(batch.tasks) or len(runs) != len(batch.tasks):
        raise ConfigurationError(
            f"batch {batch.index} returned {len(rows_per_task)} row lists / "
            f"{len(runs)} runs for {len(batch.tasks)} tasks"
        )
    count = len(batch.tasks)
    dispatch_share = (dispatched_s - submitted_s) / count
    queue_share = (runs[0][0] - dispatched_s) / count
    transfer_share = (received_s - runs[-1][1]) / count
    previous_finish = runs[0][0]
    for task, (started_s, finished_s, snapshot), rows in zip(
        batch.tasks, runs, rows_per_task
    ):
        queue_wait_s = queue_share + (started_s - previous_finish)
        previous_finish = finished_s
        on_result(
            task,
            rows,
            TaskTelemetry(
                submitted_s=started_s - queue_wait_s - dispatch_share,
                received_s=finished_s + transfer_share,
                dispatch_s=dispatch_share,
                queue_wait_s=queue_wait_s,
                compute_s=finished_s - started_s,
                transfer_s=transfer_share,
                metrics=snapshot,
                batch_index=batch.index,
                batch_size=count,
            ),
        )


def make_executor(
    jobs: int, batch_size: Optional[int] = None
) -> Union[SerialExecutor, ProcessExecutor]:
    """Executor for a worker count: serial at 1, a batched pool above."""
    if jobs < 1:
        raise ConfigurationError("jobs must be >= 1")
    if jobs == 1:
        return SerialExecutor()
    return ProcessExecutor(jobs, batch_size=batch_size)
