"""Task executors: in-process serial and ``multiprocessing`` pools.

Both executors implement the same protocol — ``run(tasks, on_result)``
calls ``on_result(task, rows, telemetry)`` once per task, in
**completion** order — and both produce bit-identical results for the
same task list, because every task carries its own seed and shares no
state with its siblings.  The engine (:mod:`repro.campaign.engine`)
re-orders completions back into submission order, so callers never
observe scheduling.

The :class:`TaskTelemetry` handed to ``on_result`` is pure measurement —
it never feeds back into rows or seeds.  It splits each task's wall time
into the four phases the campaign-scaling work needs to see
(queue-wait / dispatch / compute / result-transfer) and carries the
worker-side metrics snapshot, so hot-path counters incremented inside a
worker process reach the coordinator's registry.  The cross-process
timestamp arithmetic is sound because every stamp comes from
:func:`repro.obs.clock.monotonic` (``CLOCK_MONOTONIC`` is host-wide).

:class:`SerialExecutor` runs everything in the calling process and is
what tests and ``--jobs 1`` use; :class:`ProcessExecutor` fans tasks out
over a :class:`concurrent.futures.ProcessPoolExecutor`.  The ``fork``
start method is preferred when the platform offers it (workers inherit
already-registered task kinds); under ``spawn`` the workers re-import
the builtin task modules via the pool initializer, so builtin kinds work
everywhere and custom kinds need only live in an importable module.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence, Tuple, Union

from repro.campaign.spec import Task
from repro.campaign.tasks import _ensure_builtins, run_task
from repro.errors import ConfigurationError
from repro.obs import metrics_snapshot, monotonic, reset_metrics

__all__ = ["SerialExecutor", "ProcessExecutor", "TaskTelemetry", "make_executor"]


@dataclass(frozen=True)
class TaskTelemetry:
    """Where one executed task's wall time went, plus its worker metrics.

    All timestamps are host-wide monotonic seconds.  The four phases tile
    the interval ``[submitted_s, received_s]`` exactly:

    * ``dispatch_s`` — the coordinator's ``submit`` call (serialising the
      task into the pool's work queue);
    * ``queue_wait_s`` — from dispatch completion until a worker picked
      the task up;
    * ``compute_s`` — ``run_task`` itself, measured in the worker;
    * ``transfer_s`` — from worker completion until the coordinator
      held the unpickled rows (result pickling + queue transit + the
      coordinator's completion-loop latency).

    ``metrics`` is the worker registry's per-task snapshot (empty for the
    serial executor, whose increments land in the coordinator's registry
    directly).
    """

    submitted_s: float
    received_s: float
    dispatch_s: float
    queue_wait_s: float
    compute_s: float
    transfer_s: float
    metrics: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    @property
    def wall_s(self) -> float:
        """Submission-to-receipt wall time of the task."""
        return self.received_s - self.submitted_s


OnResult = Callable[[Task, List[Dict[str, Any]], TaskTelemetry], None]


class SerialExecutor:
    """Execute tasks one after another in the calling process."""

    jobs = 1

    def run(self, tasks: Sequence[Task], on_result: OnResult) -> None:
        for task in tasks:
            begin = monotonic()
            rows = run_task(task)
            end = monotonic()
            on_result(
                task,
                rows,
                TaskTelemetry(
                    submitted_s=begin,
                    received_s=end,
                    dispatch_s=0.0,
                    queue_wait_s=0.0,
                    compute_s=end - begin,
                    transfer_s=0.0,
                ),
            )


def _worker_init() -> None:
    """Pool initializer: make the builtin task kinds resolvable."""
    _ensure_builtins()


#: What one worker invocation sends back: the task, its rows, the
#: worker-side start/finish stamps, and the worker registry's snapshot.
_WorkerResult = Tuple[Task, List[Dict[str, Any]], float, float, Dict[str, Dict[str, Any]]]


def _execute(task: Task) -> _WorkerResult:
    """Top-level worker entry point (must be picklable).

    Resets the worker's metrics registry before running the task so the
    returned snapshot is this task's delta — fork-started workers inherit
    the coordinator's counter values, which must not be re-merged.
    """
    started_s = monotonic()
    reset_metrics()
    rows = run_task(task)
    snapshot = metrics_snapshot()
    finished_s = monotonic()
    return task, rows, started_s, finished_s, snapshot


class ProcessExecutor:
    """Execute tasks on a pool of ``jobs`` worker processes."""

    def __init__(self, jobs: int, max_in_flight: int = 0):
        if jobs < 1:
            raise ConfigurationError("jobs must be >= 1")
        self.jobs = jobs
        #: How many tasks are submitted to the pool at once; bounding it
        #: keeps completion callbacks (store writes, progress) flowing
        #: during very large sweeps instead of after full submission.
        self.max_in_flight = max_in_flight or 4 * jobs

    @staticmethod
    def _context():
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context("fork" if "fork" in methods else "spawn")

    def run(self, tasks: Sequence[Task], on_result: OnResult) -> None:
        pending = list(tasks)
        if not pending:
            return
        with ProcessPoolExecutor(
            max_workers=min(self.jobs, len(pending)),
            mp_context=self._context(),
            initializer=_worker_init,
        ) as pool:
            in_flight: "set[Future[_WorkerResult]]" = set()
            stamps: "Dict[Future[_WorkerResult], Tuple[float, float]]" = {}
            cursor = 0
            try:
                while cursor < len(pending) or in_flight:
                    while cursor < len(pending) and len(in_flight) < self.max_in_flight:
                        submitted_s = monotonic()
                        future = pool.submit(_execute, pending[cursor])
                        stamps[future] = (submitted_s, monotonic())
                        in_flight.add(future)
                        cursor += 1
                    done, in_flight = wait(in_flight, return_when=FIRST_COMPLETED)
                    for future in done:
                        task, rows, started_s, finished_s, snapshot = future.result()
                        received_s = monotonic()
                        submitted_s, dispatched_s = stamps.pop(future)
                        on_result(
                            task,
                            rows,
                            TaskTelemetry(
                                submitted_s=submitted_s,
                                received_s=received_s,
                                dispatch_s=dispatched_s - submitted_s,
                                queue_wait_s=started_s - dispatched_s,
                                compute_s=finished_s - started_s,
                                transfer_s=received_s - finished_s,
                                metrics=snapshot,
                            ),
                        )
            # repro: allow[API001] reason=cancel every in-flight future on any failure (including worker crashes outside the repro.errors taxonomy), then re-raise unchanged
            except Exception:
                for future in in_flight:
                    future.cancel()
                raise


def make_executor(jobs: int) -> Union[SerialExecutor, ProcessExecutor]:
    """Executor for a worker count: serial at 1, a process pool above."""
    if jobs < 1:
        raise ConfigurationError("jobs must be >= 1")
    return SerialExecutor() if jobs == 1 else ProcessExecutor(jobs)
