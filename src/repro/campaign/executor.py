"""Task executors: in-process serial and ``multiprocessing`` pools.

Both executors implement the same protocol — ``run(tasks, on_result)``
calls ``on_result(task, rows)`` once per task, in **completion** order —
and both produce bit-identical results for the same task list, because
every task carries its own seed and shares no state with its siblings.
The engine (:mod:`repro.campaign.engine`) re-orders completions back
into submission order, so callers never observe scheduling.

:class:`SerialExecutor` runs everything in the calling process and is
what tests and ``--jobs 1`` use; :class:`ProcessExecutor` fans tasks out
over a :class:`concurrent.futures.ProcessPoolExecutor`.  The ``fork``
start method is preferred when the platform offers it (workers inherit
already-registered task kinds); under ``spawn`` the workers re-import
the builtin task modules via the pool initializer, so builtin kinds work
everywhere and custom kinds need only live in an importable module.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Callable, Dict, List, Sequence, Tuple, Union

from repro.campaign.spec import Task
from repro.campaign.tasks import _ensure_builtins, run_task
from repro.errors import ConfigurationError

__all__ = ["SerialExecutor", "ProcessExecutor", "make_executor"]

OnResult = Callable[[Task, List[Dict[str, Any]]], None]


class SerialExecutor:
    """Execute tasks one after another in the calling process."""

    jobs = 1

    def run(self, tasks: Sequence[Task], on_result: OnResult) -> None:
        for task in tasks:
            on_result(task, run_task(task))


def _worker_init() -> None:
    """Pool initializer: make the builtin task kinds resolvable."""
    _ensure_builtins()


def _execute(task: Task) -> Tuple[Task, List[Dict[str, Any]]]:
    """Top-level worker entry point (must be picklable)."""
    return task, run_task(task)


class ProcessExecutor:
    """Execute tasks on a pool of ``jobs`` worker processes."""

    def __init__(self, jobs: int, max_in_flight: int = 0):
        if jobs < 1:
            raise ConfigurationError("jobs must be >= 1")
        self.jobs = jobs
        #: How many tasks are submitted to the pool at once; bounding it
        #: keeps completion callbacks (store writes, progress) flowing
        #: during very large sweeps instead of after full submission.
        self.max_in_flight = max_in_flight or 4 * jobs

    @staticmethod
    def _context():
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context("fork" if "fork" in methods else "spawn")

    def run(self, tasks: Sequence[Task], on_result: OnResult) -> None:
        pending = list(tasks)
        if not pending:
            return
        with ProcessPoolExecutor(
            max_workers=min(self.jobs, len(pending)),
            mp_context=self._context(),
            initializer=_worker_init,
        ) as pool:
            in_flight = set()
            cursor = 0
            try:
                while cursor < len(pending) or in_flight:
                    while cursor < len(pending) and len(in_flight) < self.max_in_flight:
                        in_flight.add(pool.submit(_execute, pending[cursor]))
                        cursor += 1
                    done, in_flight = wait(in_flight, return_when=FIRST_COMPLETED)
                    for future in done:
                        task, rows = future.result()
                        on_result(task, rows)
            # repro: allow[API001] reason=cancel every in-flight future on any failure (including worker crashes outside the repro.errors taxonomy), then re-raise unchanged
            except Exception:
                for future in in_flight:
                    future.cancel()
                raise


def make_executor(jobs: int) -> Union[SerialExecutor, ProcessExecutor]:
    """Executor for a worker count: serial at 1, a process pool above."""
    if jobs < 1:
        raise ConfigurationError("jobs must be >= 1")
    return SerialExecutor() if jobs == 1 else ProcessExecutor(jobs)
