"""Declarative sweep specifications and content-addressed tasks.

A campaign is a set of :class:`Task` objects, each one an independent,
deterministic unit of work: a *kind* naming a registered task function
(:mod:`repro.campaign.tasks`) plus a JSON-serialisable parameter mapping.
Because the parameters carry the seed and every simulator in this
repository derives all of its randomness from that seed, a task's result
is a pure function of its content — which is why tasks are addressed by
the SHA-256 hash of their canonical JSON form and why results can be
cached, resumed, and executed on any number of workers without changing
a single bit of the output.

:class:`SweepSpec` is the declarative front end: a base parameter set
plus named grid axes (over :class:`~repro.sim.harness.TechniqueSpec`
fields, benchmark traces, seeds, …) that expand into the full
cross-product of tasks in a deterministic order.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Sequence, Tuple, Union

from repro.errors import ConfigurationError
from repro.utils.validation import json_payload

__all__ = ["Task", "SweepSpec", "canonical_json"]

#: Bumped whenever the meaning of task parameters changes incompatibly,
#: so stale result stores invalidate themselves instead of serving rows
#: computed under the old semantics.  Version 2: lifetime-cell rows carry
#: a ``censored`` flag (hitting ``max_line_writes`` is no longer silently
#: reported as a failure time).
TASK_SCHEMA_VERSION = 2


def _canonical_value(value: Any, path: str) -> Any:
    """Normalise one parameter value to plain JSON-able Python types."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, (list, tuple)):
        return [_canonical_value(item, f"{path}[]") for item in value]
    if isinstance(value, Mapping):
        out = {}
        for key in value:
            if not isinstance(key, str):
                raise ConfigurationError(f"task parameter {path!r} has a non-string key {key!r}")
            out[key] = _canonical_value(value[key], f"{path}.{key}")
        return out
    # numpy scalars sneak in easily from experiment configs; accept them.
    # ``.item()`` raises ValueError on size != 1 arrays and TypeError when
    # the attribute is not numpy's scalar extractor; both mean "not a
    # scalar after all" and fall through to the unserialisable error.
    for attribute in ("item",):
        if hasattr(value, attribute):
            try:
                return _canonical_value(value.item(), path)
            except (TypeError, ValueError):  # pragma: no cover - defensive
                break
    raise ConfigurationError(
        f"task parameter {path!r} has unserialisable type {type(value).__name__}"
    )


def canonical_json(payload: Any) -> str:
    """Render ``payload`` as canonical JSON (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True, eq=False)
class Task:
    """One hashable unit of campaign work.

    Attributes
    ----------
    kind:
        Name of a registered task function (see
        :func:`repro.campaign.tasks.register_task`).
    params:
        JSON-serialisable keyword parameters the task function receives.
        Normalised on construction (tuples become lists, numpy scalars
        become Python scalars) so equal content always hashes equally.
    """

    kind: str
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.kind or not isinstance(self.kind, str):
            raise ConfigurationError("task kind must be a non-empty string")
        normalised = _canonical_value(dict(self.params), "params")
        object.__setattr__(self, "params", normalised)
        canonical = canonical_json(
            {"kind": self.kind, "params": self.params, "version": TASK_SCHEMA_VERSION}
        )
        object.__setattr__(self, "_canonical", canonical)
        digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
        object.__setattr__(self, "_hash", digest)

    @property
    def canonical(self) -> str:
        """Canonical JSON form the task hash is computed over."""
        return self._canonical  # type: ignore[attr-defined]

    @property
    def task_hash(self) -> str:
        """Hex SHA-256 of the canonical form — the task's content address."""
        return self._hash  # type: ignore[attr-defined]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Task):
            return NotImplemented
        return self.task_hash == other.task_hash

    def __hash__(self) -> int:
        return hash(self.task_hash)

    def describe(self) -> str:
        """Short human-readable label for progress reporting."""
        hints = [
            str(self.params[key])
            for key in ("benchmark", "label", "series", "technique", "rep", "seed")
            if key in self.params
        ]
        suffix = f" ({', '.join(hints)})" if hints else ""
        return f"{self.kind}{suffix} [{self.task_hash[:10]}]"


@dataclass(frozen=True)
class SweepSpec:
    """A declarative grid of tasks of one kind.

    ``base`` holds the parameters shared by every task; ``grid`` maps
    parameter names to the values each axis sweeps over (the expansion is
    the cross-product, last axis varying fastest); ``seeds`` is shorthand
    for a trailing ``seed`` axis.  Axis order is the insertion order of
    ``grid``, so expansion order — and therefore row order after
    aggregation — is deterministic and independent of execution order.
    """

    kind: str
    base: Mapping[str, Any] = field(default_factory=dict)
    grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    seeds: Sequence[int] = ()

    def axes(self) -> List[Tuple[str, List[Any]]]:
        """The sweep axes (name, values) in expansion order."""
        axes = [(name, list(values)) for name, values in self.grid.items()]
        if self.seeds:
            axes.append(("seed", [int(seed) for seed in self.seeds]))
        return axes

    def expand(self) -> List[Task]:
        """Expand the grid into the full cross-product of tasks."""
        axes = self.axes()
        for name, values in axes:
            if name in self.base:
                raise ConfigurationError(
                    f"sweep axis {name!r} collides with a base parameter of the same name"
                )
            if not values:
                raise ConfigurationError(f"sweep axis {name!r} has no values")
        names = [name for name, _ in axes]
        tasks: List[Task] = []
        seen = set()
        for combo in itertools.product(*(values for _, values in axes)):
            params = dict(self.base)
            params.update(zip(names, combo))
            task = Task(kind=self.kind, params=params)
            if task.task_hash not in seen:
                seen.add(task.task_hash)
                tasks.append(task)
        return tasks

    def __len__(self) -> int:
        return len(self.expand())

    # ----------------------------------------------------------------- I/O
    def to_json(self, path: Union[str, Path, None] = None) -> str:
        """Serialise the spec (optionally also writing it to ``path``)."""
        payload = json.dumps(
            {
                "kind": self.kind,
                "base": _canonical_value(dict(self.base), "base"),
                "grid": {
                    name: _canonical_value(list(values), f"grid.{name}")
                    for name, values in self.grid.items()
                },
                "seeds": [int(seed) for seed in self.seeds],
            },
            indent=2,
        )
        if path is not None:
            Path(path).write_text(payload, encoding="utf-8")
        return payload

    @classmethod
    def from_json(cls, source: Union[str, Path]) -> "SweepSpec":
        """Load a spec from a JSON string or a path to a JSON file."""
        payload = json_payload(source, ConfigurationError, "sweep spec")
        if not isinstance(payload, dict) or "kind" not in payload:
            raise ConfigurationError("sweep spec JSON must be an object with a 'kind' key")
        return cls(
            kind=payload["kind"],
            base=payload.get("base", {}),
            grid=payload.get("grid", {}),
            seeds=tuple(payload.get("seeds", ())),
        )
