"""Campaign engine: declarative sweeps, parallel execution, cached resume.

The paper's headline results are cross-products — encoder technique ×
cost function × cell technology × benchmark trace × seed.  This package
turns such a cross-product into a set of content-addressed, individually
seeded :class:`~repro.campaign.spec.Task` objects and runs them to
completion on any number of worker processes, persisting every finished
task in a :class:`~repro.campaign.store.ResultStore` so repeated and
interrupted runs pick up exactly where they left off.

Determinism contract: a task's rows are a pure function of its ``kind``
and ``params`` (which include the seed), so a campaign's output is
bit-identical at ``jobs=1`` and ``jobs=N`` and across resumes.

Entry points:

* :func:`run_campaign` — expand, execute, resume, and aggregate;
* :func:`register_task` — plug in a new task kind;
* ``python -m repro.campaign`` — the sweep CLI with progress reporting.
"""

from repro.campaign.engine import (
    CampaignProgress,
    CampaignResult,
    CampaignTelemetry,
    RunPolicy,
    last_campaign_telemetry,
    reset_run_policy,
    run_campaign,
    set_run_policy,
)
from repro.campaign.executor import (
    ExecutorStats,
    ProcessExecutor,
    SerialExecutor,
    TaskFailure,
    TaskTelemetry,
    make_executor,
)
from repro.campaign.spec import SweepSpec, Task
from repro.campaign.store import ResultStore
from repro.campaign.tasks import (
    TaskKind,
    available_task_kinds,
    get_task_kind,
    register_task,
    run_task,
    unregister_task,
)

__all__ = [
    "CampaignProgress",
    "CampaignResult",
    "CampaignTelemetry",
    "ExecutorStats",
    "ProcessExecutor",
    "ResultStore",
    "RunPolicy",
    "SerialExecutor",
    "SweepSpec",
    "Task",
    "TaskFailure",
    "TaskKind",
    "TaskTelemetry",
    "available_task_kinds",
    "get_task_kind",
    "last_campaign_telemetry",
    "make_executor",
    "register_task",
    "reset_run_policy",
    "run_campaign",
    "run_task",
    "set_run_policy",
    "unregister_task",
]
