"""Decorator-driven registry of campaign task kinds.

A *task kind* is a named pure function ``params -> rows``: it receives
the task's parameter mapping and returns a list of JSON-serialisable row
dictionaries.  Task functions must derive every bit of randomness from
the parameters (conventionally a ``seed`` entry fed through
:func:`repro.utils.rng.derive_seed`), which is what makes campaign
results independent of worker count and scheduling order.

Builtin kinds — one cell of each benchmark-sweep figure — live next to
the simulators they wrap (:mod:`repro.sim.energy_sim`,
:mod:`repro.sim.saw_sim`, :mod:`repro.sim.lifetime_sim`,
:mod:`repro.experiments.fig13_ipc`) and are imported lazily on first
resolution, mirroring :mod:`repro.coding.registry`.  Third-party kinds
register the same way::

    from repro.campaign import register_task

    @register_task("my-study-cell", description="one cell of my study")
    def my_cell(params):
        ...
        return [{"metric": value}]

For multi-process execution the registering module must be importable in
the worker (a plain module-level decorator suffices; kinds defined in
``__main__`` only work with the ``fork`` start method).
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Tuple

import repro.obs as obs
from repro.campaign.spec import Task, _canonical_value
from repro.errors import ConfigurationError, SimulationError

__all__ = [
    "TaskFunction",
    "TaskKind",
    "available_task_kinds",
    "get_task_kind",
    "register_task",
    "run_task",
    "unregister_task",
]

#: Signature of a task-kind function: one params mapping in, row dicts out.
TaskFunction = Callable[[Dict[str, Any]], List[Dict[str, Any]]]

#: Modules whose import registers the builtin task kinds.
_BUILTIN_MODULES: Tuple[str, ...] = (
    "repro.sim.energy_sim",
    "repro.sim.saw_sim",
    "repro.sim.lifetime_sim",
    "repro.experiments.fig01_coding_analysis",
    "repro.experiments.fig13_ipc",
)

_builtins_loaded = False

# Bumped once per task-kind execution, in whichever process ran it; the
# batched executor snapshots the worker registry per task, so the
# coordinator's merged total still equals the executed-task count.
_OBS_TASKS = obs.counter("campaign.tasks_run", "campaign task-kind executions")


@dataclass(frozen=True)
class TaskKind:
    """One registered task kind: a name plus its ``params -> rows`` function."""

    name: str
    function: Callable[[Dict[str, Any]], List[Dict[str, Any]]]
    description: str = ""


_KINDS: Dict[str, TaskKind] = {}


def register_task(
    name: str, *, description: str = ""
) -> Callable[[TaskFunction], TaskFunction]:
    """Function decorator registering a campaign task kind."""

    def decorator(function: TaskFunction) -> TaskFunction:
        key = name.lower()
        if key in _KINDS:
            raise ConfigurationError(f"task kind {name!r} is already registered")
        _KINDS[key] = TaskKind(name=key, function=function, description=description)
        return function

    return decorator


def unregister_task(name: str) -> None:
    """Remove a task kind (for tests and plugin replacement)."""
    key = name.lower()
    if key not in _KINDS:
        raise ConfigurationError(f"unknown task kind {name!r}")
    del _KINDS[key]


def _ensure_builtins() -> None:
    global _builtins_loaded
    if _builtins_loaded:
        return
    for module in _BUILTIN_MODULES:
        importlib.import_module(module)
    _builtins_loaded = True


def available_task_kinds() -> List[TaskKind]:
    """All registered task kinds, sorted by name."""
    _ensure_builtins()
    return [_KINDS[name] for name in sorted(_KINDS)]


def get_task_kind(name: str) -> TaskKind:
    """Resolve a (case-insensitive) task-kind name."""
    _ensure_builtins()
    kind = _KINDS.get(name.lower())
    if kind is None:
        names = ", ".join(k.name for k in available_task_kinds())
        raise ConfigurationError(f"unknown task kind {name!r}; available: {names}")
    return kind


def run_task(task: Task) -> List[Dict[str, Any]]:
    """Execute one task and validate its rows are JSON-serialisable."""
    _OBS_TASKS.inc()
    kind = get_task_kind(task.kind)
    rows = kind.function(dict(task.params))
    if not isinstance(rows, list) or not all(isinstance(row, dict) for row in rows):
        raise SimulationError(
            f"task kind {task.kind!r} must return a list of row dicts, got {type(rows).__name__}"
        )
    return [_canonical_value(row, "row") for row in rows]
