"""``python -m repro.campaign`` — run sweeps with workers, caching, resume.

Two ways to name the work:

* a **named sweep** — one of the campaign-backed figures: the benchmark
  sweeps (``fig9``, ``fig10``, ``fig11``, ``fig12``, ``fig13``) and the
  coset-count studies (``fig1``, ``fig2``, ``fig7``, ``fig8``), expanded
  exactly as the experiment registry expands them, printed as the
  figure's result table::

      python -m repro.campaign fig9 --jobs 4 --store .campaign-store
      python -m repro.campaign fig10 --benchmarks lbm mcf --writebacks 60
      python -m repro.campaign fig7 --jobs 2 --coset-counts 32 64 --num-writes 100

* a **spec file** — a JSON :class:`~repro.campaign.spec.SweepSpec`
  (``kind`` + ``base`` + ``grid`` + ``seeds``) for ad-hoc grids over any
  registered task kind::

      python -m repro.campaign --spec sweep.json --jobs 4 --json rows.json

Progress goes to stderr (one line per completed task, cache hits
marked); the final summary line —
``campaign finished: N tasks, E executed, C from cache`` — goes to
stdout so scripts and CI can assert on cache behaviour.  Interrupting a
run loses nothing: with ``--store`` every finished task is already on
disk and the next invocation resumes from it.
"""

from __future__ import annotations

import argparse
import inspect
import sys
from pathlib import Path
from typing import List, Optional

import repro.obs as obs
from repro.campaign.engine import (
    CampaignProgress,
    RunPolicy,
    last_campaign_telemetry,
    reset_run_policy,
    run_campaign,
    set_run_policy,
)
from repro.campaign.spec import SweepSpec
from repro.campaign.tasks import available_task_kinds
from repro.errors import ReproError
from repro.sim.results import ResultTable

__all__ = ["main"]

#: Named sweeps the CLI exposes — the campaign-backed figure experiments.
NAMED_SWEEPS = ("fig1", "fig2", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13")


def _progress_printer(quiet: bool):
    if quiet:
        return None

    def printer(event: CampaignProgress) -> None:
        print(event.format(), file=sys.stderr)

    return printer


def _named_sweep_table(args: argparse.Namespace, progress) -> ResultTable:
    """Run one of the figure sweeps via its experiment entry point."""
    from repro.experiments.registry import get_experiment

    if args.sweep.lower() not in NAMED_SWEEPS:
        raise ReproError(
            f"unknown sweep {args.sweep!r}; campaign sweeps: {', '.join(NAMED_SWEEPS)} "
            "(other experiments run via python -m repro.experiments.runner)"
        )
    entry = get_experiment(args.sweep)
    parameters = inspect.signature(entry).parameters
    kwargs = {
        "jobs": args.jobs,
        "store_dir": None if args.no_store else args.store,
        "progress": progress,
    }
    option_map = {
        "benchmarks": args.benchmarks,
        "num_cosets": args.num_cosets,
        "coset_counts": args.coset_counts,
        "writebacks_per_benchmark": args.writebacks,
        "num_writes": args.num_writes,
        "rows": args.rows,
        "seed": args.seed,
        "repetitions": args.repetitions,
        "fault_model": args.fault_model,
    }
    for name, value in option_map.items():
        if value is None:
            continue
        if name not in parameters:
            raise ReproError(f"sweep {args.sweep!r} does not take a --{name.replace('_', '-')}")
        kwargs[name] = value
    return entry(**kwargs)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro.campaign``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Run experiment sweeps in parallel with cached resume",
    )
    parser.add_argument(
        "sweep",
        nargs="?",
        help=f"named sweep ({', '.join(NAMED_SWEEPS)}) — or use --spec for an ad-hoc grid",
    )
    parser.add_argument("--spec", type=Path, default=None, help="JSON SweepSpec file to run")
    parser.add_argument("--jobs", type=int, default=1, metavar="N", help="worker processes")
    parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        metavar="N",
        help="tasks per worker batch for --spec runs (default: derived so "
        "every worker gets several batches); rows are identical at any value",
    )
    parser.add_argument(
        "--store",
        type=Path,
        default=Path(".campaign-store"),
        help="result store directory (default: .campaign-store)",
    )
    parser.add_argument(
        "--no-store", action="store_true", help="run without caching results on disk"
    )
    parser.add_argument(
        "--no-resume",
        action="store_true",
        help="ignore (and overwrite) stored results: re-execute every task",
    )
    parser.add_argument("--json", type=Path, default=None, help="write the result table as JSON")
    parser.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="PATH",
        help="append JSONL span-trace events to PATH (render with "
        "'python -m repro.obs report PATH'); results are unaffected",
    )
    parser.add_argument("--quiet", action="store_true", help="suppress per-task progress lines")
    parser.add_argument(
        "--list-kinds", action="store_true", help="list registered task kinds and exit"
    )
    # Named-sweep knobs (each is rejected if the sweep does not take it).
    parser.add_argument("--benchmarks", nargs="+", default=None, help="benchmark subset")
    parser.add_argument("--num-cosets", type=int, default=None, help="coset candidate count")
    parser.add_argument(
        "--coset-counts",
        nargs="+",
        type=int,
        default=None,
        help="coset-count axis (fig1/fig2/fig7/fig8/fig12)",
    )
    parser.add_argument(
        "--writebacks", type=int, default=None, help="writebacks per benchmark trace"
    )
    parser.add_argument(
        "--num-writes",
        type=int,
        default=None,
        help="random line writes per cell (fig2/fig7/fig8)",
    )
    parser.add_argument("--rows", type=int, default=None, help="memory rows")
    parser.add_argument("--seed", type=int, default=None, help="campaign seed")
    parser.add_argument(
        "--repetitions", type=int, default=None, help="repetitions (lifetime sweeps)"
    )
    parser.add_argument(
        "--fault-model",
        default=None,
        metavar="NAME",
        help="repro.faults model for the sweep (fig2/fig11/fig12; "
        "see repro.faults.available_fault_models)",
    )
    # Resilience knobs (see repro.campaign.engine.RunPolicy).  Any of
    # them arms graceful degradation: tasks that exhaust their retry
    # budget become structured failure rows instead of aborting the run.
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="re-queue failed or crash-lost tasks up to N times "
        "(exponential backoff); default 0 keeps fail-fast behaviour",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-task wall-clock budget in seconds (timed-out tasks "
        "retry, then degrade to failure rows)",
    )
    parser.add_argument(
        "--backoff",
        type=float,
        default=None,
        metavar="S",
        help="base of the exponential retry backoff (default 0.05s)",
    )
    parser.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        metavar="N",
        help="arm deterministic chaos injection (worker crashes etc.) "
        "with this seed — testing only, rows are unaffected",
    )
    parser.add_argument(
        "--chaos-crash-rate",
        type=float,
        default=None,
        metavar="P",
        help="per-batch worker-crash probability for --chaos-seed runs "
        "(default 0.25)",
    )
    args = parser.parse_args(argv)

    if args.list_kinds:
        print("registered task kinds:")
        for kind in available_task_kinds():
            print(f"  {kind.name:20s} {kind.description}")
        return 0

    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.batch_size is not None and args.batch_size < 1:
        parser.error("--batch-size must be >= 1")
    if (args.sweep is None) == (args.spec is None):
        parser.error("name exactly one sweep: a positional name or --spec FILE")
    if args.retries is not None and args.retries < 0:
        parser.error("--retries must be >= 0")
    if args.task_timeout is not None and args.task_timeout <= 0:
        parser.error("--task-timeout must be positive")
    if args.backoff is not None and args.backoff < 0:
        parser.error("--backoff must be >= 0")
    if args.chaos_crash_rate is not None and args.chaos_seed is None:
        parser.error("--chaos-crash-rate requires --chaos-seed")

    # Any resilience flag arms the degraded-run policy: retries/timeouts
    # apply and exhausted tasks become failure rows instead of aborting.
    resilience_active = any(
        value is not None
        for value in (args.retries, args.task_timeout, args.backoff, args.chaos_seed)
    )
    if resilience_active:
        try:
            chaos = None
            if args.chaos_seed is not None:
                from repro.faults.chaos import ChaosPlan

                chaos = ChaosPlan(
                    seed=args.chaos_seed,
                    crash_rate=(
                        0.25 if args.chaos_crash_rate is None else args.chaos_crash_rate
                    ),
                )
            set_run_policy(
                RunPolicy(
                    retries=args.retries or 0,
                    task_timeout_s=args.task_timeout,
                    backoff_s=0.05 if args.backoff is None else args.backoff,
                    degrade=True,
                    chaos=chaos,
                )
            )
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2

    stats = {"done": 0, "cached": 0, "total": 0}
    printer = _progress_printer(args.quiet)

    def progress(event: CampaignProgress) -> None:
        stats["done"] = event.done
        stats["total"] = event.total
        if event.from_cache:
            stats["cached"] += 1
        if printer is not None:
            printer(event)

    if args.trace is not None:
        args.trace.parent.mkdir(parents=True, exist_ok=True)
        obs.enable_tracing(str(args.trace))

    try:
        if args.spec is not None:
            spec = SweepSpec.from_json(args.spec)
            result = run_campaign(
                spec,
                store=None if args.no_store else args.store,
                jobs=args.jobs,
                resume=not args.no_resume,
                progress=progress,
                batch_size=args.batch_size,
            )
            # Prefix each row with the sweep-axis values of its task so
            # rows stay distinguishable (e.g. across a seeds axis) even
            # when the task kind does not echo the axis into its rows.
            axis_names = [name for name, _ in spec.axes()]
            rows = []
            for task in result.tasks:
                # Failed tasks (degraded runs) have no rows to merge.
                for row in result.rows_by_hash.get(task.task_hash, []):
                    merged = {
                        name: task.params[name] for name in axis_names if name not in row
                    }
                    merged.update(row)
                    rows.append(merged)
            columns = list(rows[0]) if rows else []
            table = ResultTable(
                title=f"campaign {spec.kind} ({len(result.tasks)} tasks)", columns=columns
            ).extend(rows)
        else:
            if args.no_resume:
                parser.error("--no-resume applies only to --spec runs (figures always resume)")
            if args.batch_size is not None:
                parser.error(
                    "--batch-size applies only to --spec runs (figure sweeps "
                    "use the derived batching)"
                )
            table = _named_sweep_table(args, progress)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        if resilience_active:
            reset_run_policy()

    print(table.format())
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        table.to_json(args.json)
    executed = stats["total"] - stats["cached"]
    # Telemetry is timing-dependent, so everything below goes to stderr:
    # stdout stays bit-identical between fresh and cached runs (CI diffs
    # it), carrying only the table and the deterministic summary line.
    telemetry = last_campaign_telemetry()
    if telemetry is not None and not args.quiet:
        print(f"campaign telemetry: {telemetry.summary()}", file=sys.stderr)
    if args.trace is not None:
        print(f"trace written to {args.trace}", file=sys.stderr)
    print(
        f"campaign finished: {stats['total']} tasks, "
        f"{executed} executed, {stats['cached']} from cache"
    )
    # Printed only when resilience flags are armed, so plain runs keep a
    # byte-identical stdout (CI diffs fresh vs cached invocations); the
    # counts themselves are scheduling-dependent, like the stderr
    # telemetry, which is why CI asserts on the label, not the numbers.
    if resilience_active and telemetry is not None:
        print(f"campaign resilience: {telemetry.resilience_summary()}")
    return 0
