"""Campaign orchestration: cache lookup, execution, resume, aggregation.

:func:`run_campaign` is the single entry point the experiments, the CLI,
and the benchmarks share.  It expands a :class:`~repro.campaign.spec.SweepSpec`
(or takes an explicit task list), serves whatever the
:class:`~repro.campaign.store.ResultStore` already holds, executes the
remainder on a :mod:`repro.campaign.executor` (persisting each result as
it completes, so an interrupted campaign resumes for free), and returns
the rows re-ordered into task-submission order — making the output a
pure function of the task list, independent of worker count, scheduling,
and how many runs it took to finish the sweep.

Every run also produces a :class:`CampaignTelemetry`: the per-phase time
breakdown (queue-wait / dispatch / compute / result-transfer) summed over
the executed tasks, plus the worker-side metric snapshots merged into the
coordinator's :mod:`repro.obs` registry.  Telemetry is pure measurement —
rows are bit-identical with tracing on or off, at any ``jobs`` — and when
span tracing is enabled the engine emits one ``campaign.task`` span per
task (phase attributes attached) under a ``campaign.run`` root, which is
what ``python -m repro.obs report`` rolls up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterable, List, Optional, Sequence, Union

import repro.obs as obs
from repro.campaign.executor import TaskFailure, TaskTelemetry, make_executor
from repro.campaign.spec import SweepSpec, Task
from repro.campaign.store import ResultStore
from repro.errors import ConfigurationError, SimulationError

if TYPE_CHECKING:  # pragma: no cover - the runtime import would be circular
    from repro.faults.chaos import ChaosPlan
    from repro.sim.results import ResultTable

__all__ = [
    "CampaignProgress",
    "CampaignResult",
    "CampaignTelemetry",
    "RunPolicy",
    "TaskFailure",
    "last_campaign_telemetry",
    "reset_run_policy",
    "run_campaign",
    "set_run_policy",
]


@dataclass(frozen=True)
class RunPolicy:
    """Resilience knobs one :func:`run_campaign` call runs under.

    The process-wide default (see :func:`set_run_policy`) lets the CLI
    arm retries/timeouts for the figure sweeps without threading new
    keyword arguments through every experiment entry point; explicit
    ``run_campaign`` keywords override it field by field.

    * ``retries`` — re-queue attempts per failed task / crash-lost batch;
    * ``task_timeout_s`` — per-task wall-clock budget (``None`` = off);
    * ``backoff_s`` — base of the exponential re-queue backoff;
    * ``degrade`` — when ``True``, tasks that exhaust their budget become
      structured :class:`TaskFailure` rows on the result instead of
      aborting the sweep;
    * ``chaos`` — optional :class:`~repro.faults.chaos.ChaosPlan`
      injecting worker crashes / transport failures / slow tasks /
      store-object corruption (testing only; results stay bit-identical
      because every task's rows are a pure function of its parameters).
    """

    retries: int = 0
    task_timeout_s: Optional[float] = None
    backoff_s: float = 0.05
    degrade: bool = False
    chaos: Optional["ChaosPlan"] = None

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ConfigurationError("retries must be >= 0")
        if self.task_timeout_s is not None and self.task_timeout_s <= 0.0:
            raise ConfigurationError("task_timeout_s must be positive (or None)")
        if self.backoff_s < 0.0:
            raise ConfigurationError("backoff_s must be >= 0")


#: Process-wide default policy; plain historical behaviour unless the
#: CLI (or a test) installs something else via :func:`set_run_policy`.
_run_policy = RunPolicy()


def set_run_policy(policy: RunPolicy) -> RunPolicy:
    """Install the default :class:`RunPolicy`; returns the previous one."""
    global _run_policy
    previous = _run_policy
    _run_policy = policy
    return previous


def reset_run_policy() -> None:
    """Restore the plain (no-retry, no-timeout, fail-fast) default policy."""
    global _run_policy
    _run_policy = RunPolicy()


@dataclass(frozen=True)
class CampaignProgress:
    """One progress event: a task just completed (or was served from cache)."""

    done: int
    total: int
    task: Task
    from_cache: bool
    #: Submission-to-receipt wall time of this task (store-lookup time for
    #: cache hits).  Measurement only — never part of the result rows.
    wall_s: float = 0.0
    #: The task exhausted its retry budget and was surrendered (degraded
    #: runs only — fail-fast runs abort instead of reporting this).
    failed: bool = False

    def format(self) -> str:
        """Render as the one-line form the CLI prints."""
        width = len(str(self.total))
        origin = "failed" if self.failed else ("cached" if self.from_cache else "ran")
        wall = (
            f"{self.wall_s * 1e3:.1f}ms" if self.wall_s < 1.0 else f"{self.wall_s:.2f}s"
        )
        return (
            f"[{self.done:{width}d}/{self.total}] {origin:6s} "
            f"{self.task.describe()} ({wall})"
        )


ProgressCallback = Callable[[CampaignProgress], None]


@dataclass
class CampaignTelemetry:
    """Aggregate run telemetry: where the campaign's wall time went.

    All fields are measurements (host-monotonic seconds / merged metric
    snapshots); nothing here influences task results.  The four phase
    sums cover executed tasks only — cache hits never enter a worker.
    """

    #: Wall time of the whole :func:`run_campaign` call.
    wall_s: float = 0.0
    #: Summed submission-to-receipt wall time of the executed tasks.
    task_wall_s: float = 0.0
    #: Summed store-lookup time of the tasks served from cache.
    cache_wall_s: float = 0.0
    queue_wait_s: float = 0.0
    dispatch_s: float = 0.0
    compute_s: float = 0.0
    transfer_s: float = 0.0
    #: Distinct executor batches the executed tasks rode in (equals the
    #: executed-task count at ``jobs=1``, where every task is its own
    #: size-1 batch).
    batches: int = 0
    #: Worker-side metric snapshots merged across all executed tasks
    #: (empty at ``jobs=1``, where increments land in the coordinator's
    #: process registry directly).
    metrics: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Resilience accounting (see :class:`RunPolicy`): re-queued batches,
    #: per-task timeout expiries, tasks surrendered as failures, and pool
    #: rebuilds after a worker death.  All zero on a clean run.
    retried: int = 0
    timeouts: int = 0
    degraded: int = 0
    worker_crashes: int = 0

    @property
    def overhead_fraction(self) -> float:
        """Fraction of executed-task wall time spent outside compute."""
        if self.task_wall_s <= 0.0:
            return 0.0
        return (self.queue_wait_s + self.dispatch_s + self.transfer_s) / self.task_wall_s

    def absorb(self, task_telemetry: TaskTelemetry) -> None:
        """Fold one executed task's telemetry into the run totals."""
        self.task_wall_s += task_telemetry.wall_s
        self.queue_wait_s += task_telemetry.queue_wait_s
        self.dispatch_s += task_telemetry.dispatch_s
        self.compute_s += task_telemetry.compute_s
        self.transfer_s += task_telemetry.transfer_s

    def summary(self) -> str:
        """One-line phase breakdown for the CLI's stderr summary."""
        batches = f" in {self.batches} batches" if self.batches else ""
        return (
            f"phases over {self.task_wall_s:.3f}s of executed-task wall time{batches}: "
            f"queue-wait {self.queue_wait_s:.3f}s, dispatch {self.dispatch_s:.3f}s, "
            f"compute {self.compute_s:.3f}s, transfer {self.transfer_s:.3f}s "
            f"(executor overhead {self.overhead_fraction * 100.0:.1f}%)"
        )

    def resilience_summary(self) -> str:
        """Deterministic one-line retry/timeout/degradation account."""
        return (
            f"{self.retried} retried, {self.timeouts} timed out, "
            f"{self.degraded} degraded, {self.worker_crashes} worker crashes"
        )


@dataclass
class CampaignResult:
    """Completed campaign: per-task rows plus execution accounting."""

    tasks: Sequence[Task]
    rows_by_hash: Dict[str, List[Dict[str, Any]]]
    executed: int
    cached: int
    telemetry: CampaignTelemetry = field(default_factory=CampaignTelemetry)
    #: Tasks surrendered after exhausting their retry budget (degraded
    #: runs only).  Their hashes are absent from ``rows_by_hash`` and
    #: never persisted, so a rerun re-executes exactly these tasks.
    failures: List[TaskFailure] = field(default_factory=list)

    @property
    def total(self) -> int:
        """Number of distinct tasks in the campaign."""
        return len(self.rows_by_hash)

    def rows(self) -> List[Dict[str, Any]]:
        """All result rows flattened in task-submission order.

        Failed tasks (degraded runs) contribute no rows — consult
        :attr:`failures` / :meth:`failure_rows` for their record.
        """
        out: List[Dict[str, Any]] = []
        for task in self.tasks:
            out.extend(self.rows_by_hash.get(task.task_hash, []))
        return out

    def failure_rows(self) -> List[Dict[str, Any]]:
        """Structured failure records in task-submission order."""
        by_hash = {failure.task.task_hash: failure for failure in self.failures}
        out = []
        for task in self.tasks:
            failure = by_hash.get(task.task_hash)
            if failure is None:
                continue
            out.append(
                {
                    "task": failure.task.describe(),
                    "task_hash": failure.task.task_hash,
                    "kind": failure.kind,
                    "attempts": failure.attempts,
                    "message": failure.message,
                }
            )
        return out

    def rows_for(self, task: Task) -> List[Dict[str, Any]]:
        """The rows one task produced."""
        try:
            return self.rows_by_hash[task.task_hash]
        except KeyError:
            raise SimulationError(f"task {task.describe()} is not part of this campaign")

    def to_table(self, title: str, columns: Sequence[str], notes: str = "") -> "ResultTable":
        """Collect the flattened rows into a :class:`ResultTable`."""
        # Imported lazily: the sim package registers campaign task kinds,
        # so a module-level import here would be circular.
        from repro.sim.results import ResultTable

        table = ResultTable(title=title, columns=list(columns), notes=notes)
        table.extend(self.rows())
        return table


# The telemetry of the most recent run_campaign call in this process.
# Kept so callers one level removed from the CampaignResult (the figure
# entry points return ResultTables) can still report the run breakdown.
_last_telemetry: Optional[CampaignTelemetry] = None


def last_campaign_telemetry() -> Optional[CampaignTelemetry]:
    """Telemetry of this process's most recent campaign run, if any."""
    return _last_telemetry


def _set_last_telemetry(telemetry: CampaignTelemetry) -> None:
    """Record the just-finished run's telemetry (coordinator process only)."""
    global _last_telemetry
    _last_telemetry = telemetry


def run_campaign(
    work: Union[SweepSpec, Iterable[Task]],
    store: Union[ResultStore, str, Path, None] = None,
    jobs: int = 1,
    resume: bool = True,
    progress: Optional[ProgressCallback] = None,
    batch_size: Optional[int] = None,
    retries: Optional[int] = None,
    task_timeout_s: Optional[float] = None,
    backoff_s: Optional[float] = None,
    degrade: Optional[bool] = None,
    chaos: Optional["ChaosPlan"] = None,
) -> CampaignResult:
    """Run a sweep to completion and return its rows in deterministic order.

    Parameters
    ----------
    work:
        A :class:`SweepSpec` (expanded in grid order) or an explicit task
        iterable.  Duplicate tasks execute once, but their rows appear
        once per occurrence in :meth:`CampaignResult.rows`.
    store:
        Optional :class:`ResultStore` (or a directory path for one).
        Completed tasks are persisted as they finish; on the next run
        they are served from disk instead of re-executed.
    jobs:
        Worker processes; ``1`` runs serially in-process.  The result is
        bit-identical for every value because each task derives all of
        its randomness from its own parameters.
    resume:
        When ``False``, stored results are ignored (and overwritten):
        every task re-executes.
    progress:
        Optional callback invoked once per task completion, cache hits
        included, with a :class:`CampaignProgress` event.
    batch_size:
        Tasks per executor batch when ``jobs > 1``; ``None`` (the
        default) derives a size that gives every worker several batches.
        Purely a scheduling knob — rows are bit-identical at any value.
    retries / task_timeout_s / backoff_s / degrade / chaos:
        Resilience knobs; each defaults to the process-wide
        :class:`RunPolicy` (see :func:`set_run_policy`) when ``None``.
        With ``degrade`` on, tasks that exhaust their retry budget land
        in :attr:`CampaignResult.failures` instead of aborting the run —
        and because failures are never persisted, a later run heals them
        from the store.  All of these are scheduling-only: the rows of
        every task that completes are bit-identical whatever the knobs.
    """
    policy = _run_policy
    retries = policy.retries if retries is None else retries
    task_timeout_s = policy.task_timeout_s if task_timeout_s is None else task_timeout_s
    backoff_s = policy.backoff_s if backoff_s is None else backoff_s
    degrade = policy.degrade if degrade is None else degrade
    chaos = policy.chaos if chaos is None else chaos
    if isinstance(work, SweepSpec):
        tasks = work.expand()
    else:
        tasks = list(work)
    unique: List[Task] = []
    seen = set()
    for task in tasks:
        if not isinstance(task, Task):
            raise SimulationError(f"campaign work must be Task objects, got {type(task).__name__}")
        if task.task_hash not in seen:
            seen.add(task.task_hash)
            unique.append(task)

    if store is not None and not isinstance(store, ResultStore):
        store = ResultStore(store)

    telemetry = CampaignTelemetry()
    run_begin = obs.monotonic()
    with obs.span("campaign.run", tasks=len(unique), jobs=jobs) as run_span:
        rows_by_hash: Dict[str, List[Dict[str, Any]]] = {}
        pending: List[Task] = []
        cache_walls: Dict[str, float] = {}
        for task in unique:
            if store is not None and resume:
                lookup_begin = obs.monotonic()
                cached_rows = store.get(task)
                cache_walls[task.task_hash] = obs.monotonic() - lookup_begin
            else:
                cached_rows = None
            if cached_rows is not None:
                rows_by_hash[task.task_hash] = cached_rows
            else:
                pending.append(task)
        cached = len(unique) - len(pending)

        done = 0
        total = len(unique)

        def emit(task: Task, from_cache: bool, wall_s: float, failed: bool = False) -> None:
            nonlocal done
            done += 1
            if progress is not None:
                progress(
                    CampaignProgress(
                        done=done,
                        total=total,
                        task=task,
                        from_cache=from_cache,
                        wall_s=wall_s,
                        failed=failed,
                    )
                )

        for task in unique:
            if task.task_hash in rows_by_hash:
                wall_s = cache_walls.get(task.task_hash, 0.0)
                telemetry.cache_wall_s += wall_s
                now = obs.monotonic()
                obs.emit_span(
                    "campaign.task",
                    now - wall_s,
                    now,
                    task=task.describe(),
                    cached=True,
                )
                emit(task, from_cache=True, wall_s=wall_s)

        batch_indices: "set[int]" = set()

        def on_result(
            task: Task, rows: List[Dict[str, Any]], task_telemetry: TaskTelemetry
        ) -> None:
            # Streaming results path: completed batches land here while
            # other batches are still computing in the pool, so the
            # store write and progress emission below overlap worker
            # compute instead of serialising after the sweep.
            rows_by_hash[task.task_hash] = rows
            if store is not None:
                store.put(task, rows)
                if chaos is not None and chaos.should_corrupt(task.task_hash):
                    # Chaos injection: mangle the just-persisted object.
                    # This run's rows are already in memory, so the sweep
                    # is unaffected; the *next* run quarantines the
                    # object and recomputes — the healing path under test.
                    store.corrupt_object(task.task_hash)
            telemetry.absorb(task_telemetry)
            batch_indices.add(task_telemetry.batch_index)
            telemetry.batches = len(batch_indices)
            if task_telemetry.metrics:
                obs.merge_metrics(task_telemetry.metrics)
                _merge_into(telemetry.metrics, task_telemetry.metrics)
            obs.emit_span(
                "campaign.task",
                task_telemetry.submitted_s,
                task_telemetry.received_s,
                task=task.describe(),
                cached=False,
                queue_wait_s=task_telemetry.queue_wait_s,
                dispatch_s=task_telemetry.dispatch_s,
                compute_s=task_telemetry.compute_s,
                transfer_s=task_telemetry.transfer_s,
                batch=task_telemetry.batch_index,
                batch_size=task_telemetry.batch_size,
            )
            emit(task, from_cache=False, wall_s=task_telemetry.wall_s)

        failures: List[TaskFailure] = []

        def on_failure(failure: TaskFailure) -> None:
            # Graceful degradation: the task exhausted its retry budget.
            # Record it (never persist it — the next run re-executes it
            # from the store's point of view) and keep the sweep going.
            failures.append(failure)
            now = obs.monotonic()
            obs.emit_span(
                "campaign.degraded",
                now,
                now,
                task=failure.task.describe(),
                kind=failure.kind,
                attempts=failure.attempts,
                message=failure.message,
            )
            emit(failure.task, from_cache=False, wall_s=0.0, failed=True)

        if pending:
            executor = make_executor(
                jobs,
                batch_size=batch_size,
                retries=retries,
                task_timeout_s=task_timeout_s,
                backoff_s=backoff_s,
                chaos=chaos,
            )
            stats = executor.run(pending, on_result, on_failure if degrade else None)
            telemetry.retried = stats.retried
            telemetry.timeouts = stats.timeouts
            telemetry.degraded = stats.degraded
            telemetry.worker_crashes = stats.worker_crashes
        run_span.set(
            executed=len(pending) - len(failures),
            cached=cached,
            batches=telemetry.batches,
            failed=len(failures),
        )

    telemetry.wall_s = obs.monotonic() - run_begin
    _set_last_telemetry(telemetry)
    return CampaignResult(
        tasks=tuple(tasks),
        rows_by_hash=rows_by_hash,
        executed=len(pending) - len(failures),
        cached=cached,
        telemetry=telemetry,
        failures=failures,
    )


def _merge_into(
    accumulated: Dict[str, Dict[str, Any]], snapshot: Dict[str, Dict[str, Any]]
) -> None:
    """Accumulate one worker snapshot into the campaign's merged metrics."""
    registry = obs.MetricsRegistry()
    registry.merge(accumulated)
    registry.merge(snapshot)
    accumulated.clear()
    accumulated.update(registry.snapshot())
