"""Campaign orchestration: cache lookup, execution, resume, aggregation.

:func:`run_campaign` is the single entry point the experiments, the CLI,
and the benchmarks share.  It expands a :class:`~repro.campaign.spec.SweepSpec`
(or takes an explicit task list), serves whatever the
:class:`~repro.campaign.store.ResultStore` already holds, executes the
remainder on a :mod:`repro.campaign.executor` (persisting each result as
it completes, so an interrupted campaign resumes for free), and returns
the rows re-ordered into task-submission order — making the output a
pure function of the task list, independent of worker count, scheduling,
and how many runs it took to finish the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterable, List, Optional, Sequence, Union

from repro.campaign.executor import make_executor
from repro.campaign.spec import SweepSpec, Task
from repro.campaign.store import ResultStore
from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - the runtime import would be circular
    from repro.sim.results import ResultTable

__all__ = ["CampaignProgress", "CampaignResult", "run_campaign"]


@dataclass(frozen=True)
class CampaignProgress:
    """One progress event: a task just completed (or was served from cache)."""

    done: int
    total: int
    task: Task
    from_cache: bool

    def format(self) -> str:
        """Render as the one-line form the CLI prints."""
        width = len(str(self.total))
        origin = "cached" if self.from_cache else "ran"
        return f"[{self.done:{width}d}/{self.total}] {origin:6s} {self.task.describe()}"


ProgressCallback = Callable[[CampaignProgress], None]


@dataclass
class CampaignResult:
    """Completed campaign: per-task rows plus execution accounting."""

    tasks: Sequence[Task]
    rows_by_hash: Dict[str, List[Dict[str, Any]]]
    executed: int
    cached: int

    @property
    def total(self) -> int:
        """Number of distinct tasks in the campaign."""
        return len(self.rows_by_hash)

    def rows(self) -> List[Dict[str, Any]]:
        """All result rows flattened in task-submission order."""
        out: List[Dict[str, Any]] = []
        for task in self.tasks:
            out.extend(self.rows_by_hash[task.task_hash])
        return out

    def rows_for(self, task: Task) -> List[Dict[str, Any]]:
        """The rows one task produced."""
        try:
            return self.rows_by_hash[task.task_hash]
        except KeyError:
            raise SimulationError(f"task {task.describe()} is not part of this campaign")

    def to_table(self, title: str, columns: Sequence[str], notes: str = "") -> "ResultTable":
        """Collect the flattened rows into a :class:`ResultTable`."""
        # Imported lazily: the sim package registers campaign task kinds,
        # so a module-level import here would be circular.
        from repro.sim.results import ResultTable

        table = ResultTable(title=title, columns=list(columns), notes=notes)
        table.extend(self.rows())
        return table


def run_campaign(
    work: Union[SweepSpec, Iterable[Task]],
    store: Union[ResultStore, str, Path, None] = None,
    jobs: int = 1,
    resume: bool = True,
    progress: Optional[ProgressCallback] = None,
) -> CampaignResult:
    """Run a sweep to completion and return its rows in deterministic order.

    Parameters
    ----------
    work:
        A :class:`SweepSpec` (expanded in grid order) or an explicit task
        iterable.  Duplicate tasks execute once, but their rows appear
        once per occurrence in :meth:`CampaignResult.rows`.
    store:
        Optional :class:`ResultStore` (or a directory path for one).
        Completed tasks are persisted as they finish; on the next run
        they are served from disk instead of re-executed.
    jobs:
        Worker processes; ``1`` runs serially in-process.  The result is
        bit-identical for every value because each task derives all of
        its randomness from its own parameters.
    resume:
        When ``False``, stored results are ignored (and overwritten):
        every task re-executes.
    progress:
        Optional callback invoked once per task completion, cache hits
        included, with a :class:`CampaignProgress` event.
    """
    if isinstance(work, SweepSpec):
        tasks = work.expand()
    else:
        tasks = list(work)
    unique: List[Task] = []
    seen = set()
    for task in tasks:
        if not isinstance(task, Task):
            raise SimulationError(f"campaign work must be Task objects, got {type(task).__name__}")
        if task.task_hash not in seen:
            seen.add(task.task_hash)
            unique.append(task)

    if store is not None and not isinstance(store, ResultStore):
        store = ResultStore(store)

    rows_by_hash: Dict[str, List[Dict[str, Any]]] = {}
    pending: List[Task] = []
    for task in unique:
        cached_rows = store.get(task) if (store is not None and resume) else None
        if cached_rows is not None:
            rows_by_hash[task.task_hash] = cached_rows
        else:
            pending.append(task)
    cached = len(unique) - len(pending)

    done = 0
    total = len(unique)

    def emit(task: Task, from_cache: bool) -> None:
        nonlocal done
        done += 1
        if progress is not None:
            progress(CampaignProgress(done=done, total=total, task=task, from_cache=from_cache))

    for task in unique:
        if task.task_hash in rows_by_hash:
            emit(task, from_cache=True)

    def on_result(task: Task, rows: List[Dict[str, Any]]) -> None:
        rows_by_hash[task.task_hash] = rows
        if store is not None:
            store.put(task, rows)
        emit(task, from_cache=False)

    if pending:
        make_executor(jobs).run(pending, on_result)

    return CampaignResult(
        tasks=tuple(tasks), rows_by_hash=rows_by_hash, executed=len(pending), cached=cached
    )
