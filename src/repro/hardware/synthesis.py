"""Analytic area / energy / delay model of the coset encoders (Fig. 6).

The model is a substitution for the Cadence 45 nm synthesis flow used by
the paper (see DESIGN.md).  It builds each design out of the same
structural ingredients the RTL would contain and charges per-element
constants calibrated to land in the ranges the paper reports:

* a ROM holding the coset candidates (RCC: ``N x n`` bits) or the coset
  kernels (VCC-stored: ``r x m`` bits), or a small generator block
  (VCC with Algorithm 2);
* the XOR/XNOR evaluation fabric — RCC evaluates ``N`` full-width
  candidates, VCC evaluates ``2 r`` kernel-width alternatives per
  partition (``2 r p m = 2 r n_enc`` bit evaluations in total);
* per-candidate cost (population-count) trees;
* the comparator tree that selects the winning candidate.

Absolute numbers are indicative only; the quantities the experiments
assert — RCC growing steeply with N while VCC stays nearly flat, VCC-32
costing more than VCC-64, stored and generated kernels being nearly
identical, and encode delays of a couple of nanoseconds against an 84 ns
array access — follow from the structure, not from the calibration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List

from repro.errors import ConfigurationError

__all__ = ["DesignPoint", "HardwareEstimate", "estimate_design", "fig6_sweep"]

# Calibration constants (45 nm-ish, delay-optimised synthesis).
_ROM_BIT_AREA_UM2 = 1.1          # ROM cell + decode share
_EVAL_BIT_AREA_UM2 = 6.0         # XOR + popcount-tree share per evaluated bit
_COMPARATOR_AREA_UM2 = 140.0     # one cost comparator stage
_GENERATOR_AREA_UM2 = 4.0e3      # Algorithm 2 mask/XOR network
_BASE_AREA_UM2 = 9.0e3           # registers, control, bus interface

_EVAL_BIT_ENERGY_PJ = 0.55       # energy per evaluated candidate bit
_ROM_BIT_ENERGY_PJ = 0.02        # read energy per ROM bit
_COMPARATOR_ENERGY_PJ = 0.8
_BASE_ENERGY_PJ = 12.0

_XOR_DELAY_PS = 260.0            # input latch + XOR stage
_POPCOUNT_STAGE_PS = 85.0        # per adder-tree level
_COMPARE_STAGE_PS = 210.0        # per comparator-tree level
_MIN_SELECT_PS = 120.0           # XOR/XNOR min selection (VCC only)
_PARTITION_SUM_STAGE_PS = 90.0   # per adder level when summing partition costs


@dataclass(frozen=True)
class DesignPoint:
    """One encoder design evaluated by the Fig. 6 sweep.

    Attributes
    ----------
    style:
        ``"rcc"`` or ``"vcc"``.
    word_bits:
        Encoder data-block width n (64 or 32 in the paper).
    num_cosets:
        Equivalent coset-candidate count N.
    stored_kernels:
        For VCC, whether kernels come from a ROM (True) or the Algorithm 2
        generator (False).  Ignored for RCC, which always stores its
        candidates.
    partitions:
        VCC partition count p (kernel count is ``N / 2**p``).
    """

    style: str
    word_bits: int = 64
    num_cosets: int = 256
    stored_kernels: bool = True
    partitions: int = 4

    def __post_init__(self) -> None:
        if self.style not in ("rcc", "vcc"):
            raise ConfigurationError("style must be 'rcc' or 'vcc'")
        if self.word_bits <= 0 or self.num_cosets < 2:
            raise ConfigurationError("word_bits must be positive and num_cosets >= 2")
        if self.partitions <= 0:
            raise ConfigurationError("partitions must be positive")

    @property
    def label(self) -> str:
        """Series label matching the paper's Fig. 6 legend."""
        if self.style == "rcc":
            return "RCC"
        suffix = "-Stored" if self.stored_kernels else ""
        return f"VCC-{self.word_bits}{suffix}"

    @property
    def num_kernels(self) -> int:
        """VCC kernel count r = N / 2^p (1 for RCC, which has no kernels)."""
        if self.style == "rcc":
            return self.num_cosets
        return max(1, self.num_cosets // (1 << self.partitions))

    @property
    def kernel_bits(self) -> int:
        """VCC kernel width m (the encoded region split into p partitions)."""
        encoded_bits = self.word_bits // 2 if self.style == "vcc" else self.word_bits
        return max(1, encoded_bits // self.partitions)


@dataclass(frozen=True)
class HardwareEstimate:
    """Synthesised-encoder estimate for one design point."""

    design: DesignPoint
    area_um2: float
    energy_pj: float
    delay_ps: float

    @property
    def delay_ns(self) -> float:
        """Encode delay in nanoseconds (convenience for the timing model)."""
        return self.delay_ps / 1000.0


def _blocks_per_cacheline(word_bits: int) -> int:
    """How many encoder blocks a 512-bit line needs (penalises n = 32)."""
    return max(1, 512 // word_bits) // 8 + 1 if word_bits < 64 else 1


def estimate_design(design: DesignPoint) -> HardwareEstimate:
    """Estimate area, per-encode energy, and encode delay for ``design``."""
    n = design.word_bits
    num_cosets = design.num_cosets

    if design.style == "rcc":
        rom_bits = num_cosets * n
        evaluated_bits = num_cosets * n
        comparators = num_cosets - 1
        area = (
            _BASE_AREA_UM2 * 8.0
            + rom_bits * _ROM_BIT_AREA_UM2
            + evaluated_bits * _EVAL_BIT_AREA_UM2 * 0.35
            + comparators * _COMPARATOR_AREA_UM2
        )
        energy = (
            _BASE_ENERGY_PJ * 4.0
            + rom_bits * _ROM_BIT_ENERGY_PJ
            + evaluated_bits * _EVAL_BIT_ENERGY_PJ
            + comparators * _COMPARATOR_ENERGY_PJ
        )
        delay = (
            _XOR_DELAY_PS
            + _POPCOUNT_STAGE_PS * math.ceil(math.log2(n))
            + _COMPARE_STAGE_PS * math.ceil(math.log2(num_cosets))
        )
        return HardwareEstimate(design=design, area_um2=area, energy_pj=energy, delay_ps=delay)

    # VCC: r kernels of m bits, evaluated as XOR and XNOR over p partitions.
    r = design.num_kernels
    m = design.kernel_bits
    p = design.partitions
    blocks = _blocks_per_cacheline(n)
    rom_bits = r * m if design.stored_kernels else 0
    evaluated_bits = 2 * r * m * p
    comparators = max(1, r - 1) + p
    area = (
        _BASE_AREA_UM2
        + (0.0 if design.stored_kernels else _GENERATOR_AREA_UM2)
        + rom_bits * _ROM_BIT_AREA_UM2
        + evaluated_bits * _EVAL_BIT_AREA_UM2
        + comparators * _COMPARATOR_AREA_UM2
    ) * (1.0 + 0.35 * (blocks - 1))
    energy = (
        _BASE_ENERGY_PJ
        + rom_bits * _ROM_BIT_ENERGY_PJ
        + (2.0 if not design.stored_kernels else 0.0)
        + evaluated_bits * _EVAL_BIT_ENERGY_PJ * 0.5
        + comparators * _COMPARATOR_ENERGY_PJ
    ) * blocks
    delay = (
        _XOR_DELAY_PS
        + _POPCOUNT_STAGE_PS * math.ceil(math.log2(max(m, 2)))
        + _MIN_SELECT_PS
        + _PARTITION_SUM_STAGE_PS * math.ceil(math.log2(max(p, 2)))
        + _COMPARE_STAGE_PS * math.ceil(math.log2(max(r, 2)))
    ) * (1.0 + 0.15 * (blocks - 1))
    return HardwareEstimate(design=design, area_um2=area, energy_pj=energy, delay_ps=delay)


def fig6_sweep(coset_counts: Iterable[int] = (32, 64, 128, 256)) -> List[HardwareEstimate]:
    """Regenerate the Fig. 6 sweep: RCC, VCC-64/32, stored and generated."""
    estimates: List[HardwareEstimate] = []
    for num_cosets in coset_counts:
        estimates.append(estimate_design(DesignPoint(style="rcc", num_cosets=num_cosets)))
        for word_bits in (64, 32):
            for stored in (False, True):
                estimates.append(
                    estimate_design(
                        DesignPoint(
                            style="vcc",
                            word_bits=word_bits,
                            num_cosets=num_cosets,
                            stored_kernels=stored,
                        )
                    )
                )
    return estimates
