"""Encoder hardware model (area / energy / delay, Fig. 6).

The paper synthesises its encoder designs to a 45 nm ASIC flow; this
repository replaces that flow with an analytic gate-count model
(:mod:`repro.hardware.synthesis`) that preserves the structural trends the
figure demonstrates: RCC's cost grows with the number of full-length coset
candidates it must store and evaluate, whereas VCC's cost grows only with
the (16x smaller) kernel count.
"""

from repro.hardware.synthesis import (
    DesignPoint,
    HardwareEstimate,
    estimate_design,
    fig6_sweep,
)

__all__ = ["DesignPoint", "HardwareEstimate", "estimate_design", "fig6_sweep"]
