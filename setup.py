"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so editable installs work in offline environments whose pip cannot build a
PEP-517 wheel (no ``wheel`` package available):

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
