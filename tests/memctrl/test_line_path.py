"""Controller tests specific to the line-granularity write/read path."""

import numpy as np
import pytest

from repro.coding.base import Encoder
from repro.coding.cost import BitChangeCost, saw_then_energy
from repro.coding.registry import make_encoder
from repro.memctrl.config import ControllerConfig
from repro.memctrl.controller import MemoryController
from repro.pcm.array import PCMArray
from repro.pcm.cell import CellTechnology
from repro.pcm.faultmap import FaultMap


def _build(encoder, rows=8, encrypt=False, fault_map=None):
    array = PCMArray(rows=rows, row_bits=512, technology=encoder.technology,
                     fault_map=fault_map, seed=11, word_bits=64)
    return MemoryController(
        array=array,
        encoder=encoder,
        config=ControllerConfig(encrypt=encrypt),
    )


class _ScalarOnlyEncoder(Encoder):
    """Implements only the word-level interface (third-party style)."""

    name = "scalar-only"

    @property
    def aux_bits(self) -> int:
        return 1

    def encode(self, data, context):
        inverted = data ^ ((1 << self.word_bits) - 1)
        return self._select_best([data, inverted], [0, 1], context)

    def decode(self, codeword, aux):
        return codeword ^ (((1 << self.word_bits) - 1) if aux else 0)


class TestLinePath:
    def test_scalar_only_encoder_works_through_controller(self, rng):
        encoder = _ScalarOnlyEncoder(64, CellTechnology.MLC, BitChangeCost())
        controller = _build(encoder, encrypt=True)
        words = [int(v) for v in rng.integers(0, 1 << 62, size=8)]
        controller.write_line(3, words)
        assert controller.read_line(3) == words

    def test_aux_store_is_dense_array(self, rng):
        controller = _build(make_encoder("rcc", num_cosets=16, seed=1))
        assert controller._aux_store.shape == (8, 8)
        words = [int(v) for v in rng.integers(0, 1 << 62, size=8)]
        controller.write_line(2, words)
        row = controller.row_for_address(2)
        assert controller._aux_store[row].max() < (1 << controller.encoder.aux_bits)
        assert controller.read_line(2) == words

    def test_write_matches_word_encoder_results(self, rng):
        # The controller's single encode_line call must store exactly what
        # per-word encodes against the same row contents would produce.
        encoder = make_encoder("vcc-stored", num_cosets=64,
                               cost_function=saw_then_energy(), seed=2)
        fault_map = FaultMap(rows=8, cells_per_row=256, fault_rate=0.02, seed=3)
        controller = _build(encoder, fault_map=fault_map)
        words = [int(v) for v in rng.integers(0, 1 << 62, size=8)]
        row = controller.row_for_address(5)
        old_row = controller.array.read_row(row)
        stuck = controller.array.stuck_info(row)
        controller.write_line(5, words)
        from repro.coding.base import WordContext

        for index, word in enumerate(words):
            start = index * 32
            context = WordContext(
                old_cells=old_row[start:start + 32],
                stuck_mask=stuck[start:start + 32],
                bits_per_cell=2,
            )
            expected = encoder.encode(word, context)
            assert controller._aux_store[row][index] == expected.aux

    def test_wide_aux_encoder_round_trips(self, rng):
        # Regression: an encoder with >= 64 aux bits per word (128-bit FNW
        # with bit-granular partitions) must not overflow the aux store.
        from repro.coding.fnw import FNWEncoder
        from repro.coding.cost import BitChangeCost

        encoder = FNWEncoder(word_bits=128, partitions=64,
                             technology=CellTechnology.MLC,
                             cost_function=BitChangeCost())
        assert encoder.aux_bits == 64
        array = PCMArray(rows=4, row_bits=512, seed=11, word_bits=128)
        controller = MemoryController(
            array=array, encoder=encoder,
            config=ControllerConfig(word_bits=128, encrypt=False),
        )
        words = [int(a) << 64 | int(b)
                 for a, b in zip(rng.integers(0, 1 << 62, size=4),
                                 rng.integers(0, 1 << 62, size=4))]
        controller.write_line(1, words)
        assert controller.read_line(1) == words

    def test_saw_bits_per_word_accounting(self, rng):
        fault_map = FaultMap(rows=8, cells_per_row=256, fault_rate=0.05, seed=7)
        controller = _build(
            make_encoder("unencoded"), fault_map=fault_map
        )
        words = [int(v) for v in rng.integers(0, 1 << 62, size=8)]
        result = controller.write_line(1, words)
        assert len(result.saw_bits_per_word) == 8
        assert sum(result.saw_bits_per_word) >= result.saw_cells
